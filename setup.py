"""Shim for editable installs in offline environments lacking the wheel package."""

from setuptools import setup

setup()
