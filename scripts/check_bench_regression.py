#!/usr/bin/env python3
"""Gate a BENCH_<name>.json run against a committed baseline.

Usage::

    python scripts/check_bench_regression.py CURRENT.json BASELINE.json \
        [--metric verify_seconds] [--calibrate full] [--threshold 0.20] \
        [--floor 0.25]

Both files carry the ``bench_json`` schema (``schema_version: 1``,
``results: [{name, value, unit, labels}, ...]``).  Rows of ``--metric``
are matched by their ``variant`` label.

CI machines differ in raw speed, so absolute numbers are not
comparable run-to-run.  The ``--calibrate`` variant (default ``full``)
anchors the comparison: every baseline number is scaled by
``current[full] / baseline[full]`` before the threshold test.  The
calibration variant itself is exempt (it *is* the machine-speed
estimate); every other variant fails the gate when::

    current > scaled_baseline * (1 + threshold)
    and (current - scaled_baseline) > floor          # noise floor, s

Exit codes: 0 ok, 1 regression(s), 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_metric(path: str, metric: str) -> dict[str, float]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if doc.get("schema_version") != 1:
        print(f"error: {path}: unexpected schema_version"
              f" {doc.get('schema_version')!r}", file=sys.stderr)
        raise SystemExit(2)
    out: dict[str, float] = {}
    for row in doc.get("results", ()):
        if row.get("name") != metric:
            continue
        variant = (row.get("labels") or {}).get("variant")
        if variant is not None:
            out[variant] = float(row["value"])
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH json from this run")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--metric", default="verify_seconds")
    parser.add_argument("--calibrate", default="full",
                        help="variant used as the machine-speed anchor")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed relative regression (default 0.20)")
    parser.add_argument("--floor", type=float, default=0.25,
                        help="absolute noise floor in metric units; smaller"
                             " deltas never fail (default 0.25)")
    args = parser.parse_args(argv)

    current = load_metric(args.current, args.metric)
    baseline = load_metric(args.baseline, args.metric)
    if args.calibrate not in current or args.calibrate not in baseline:
        print(f"error: calibration variant {args.calibrate!r} missing"
              f" (current: {sorted(current)}, baseline: {sorted(baseline)})",
              file=sys.stderr)
        return 2

    scale = current[args.calibrate] / baseline[args.calibrate]
    print(f"machine-speed calibration ({args.calibrate}):"
          f" {baseline[args.calibrate]:.3f} -> {current[args.calibrate]:.3f}"
          f" (x{scale:.2f})")

    failures = []
    for variant in sorted(baseline):
        if variant == args.calibrate:
            continue
        if variant not in current:
            failures.append(f"{variant}: missing from current run")
            continue
        allowed = baseline[variant] * scale
        got = current[variant]
        delta = got - allowed
        rel = delta / allowed if allowed else float("inf")
        verdict = "ok"
        if rel > args.threshold and delta > args.floor:
            verdict = "REGRESSION"
            failures.append(
                f"{variant}: {got:.3f} vs allowed {allowed:.3f}"
                f" (+{rel * 100:.0f}%)"
            )
        print(f"  {variant:<18} current={got:7.3f}"
              f" baseline(scaled)={allowed:7.3f} ({rel:+7.1%}) {verdict}")

    for variant in sorted(set(current) - set(baseline)):
        print(f"  {variant:<18} current={current[variant]:7.3f}"
              " (new variant, not gated)")

    if failures:
        print("\nbenchmark regressions vs committed baseline:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
