#!/usr/bin/env python3
"""Buffer models with varying precision (§3).

The same Buffy program can be analyzed under different buffer models
without changing a line of it:

* a *count-only* query (how many packets from each input reached the
  output?) is decided identically by the cheap counter model and the
  precise list model — but the counter encoding is smaller;
* an *order-sensitive* query (is a flow-1 packet queued behind a
  flow-0 packet?) is only expressible under the list model — the
  paper's [1,1,2,2] vs [1,2,1,2] example.

Run:  python examples/buffer_precision.py
"""

from repro import EncodeConfig, SmtBackend, Status
from repro.analysis.queries import ordering_fifo
from repro.netmodels.schedulers import round_robin
from repro.smt.terms import mk_and, mk_int, mk_le

HORIZON = 4


def count_query(backend: SmtBackend):
    """Both inputs get >= 2 packets through to the output."""
    return mk_and(
        mk_le(mk_int(2), backend.deq_count("ibs[0]")),
        mk_le(mk_int(2), backend.deq_count("ibs[1]")),
    )


def main() -> None:
    program = round_robin(2)

    print("=== count-only query under both precision levels ===")
    answers = {}
    for model in ("list", "counter"):
        config = EncodeConfig(
            buffer_model=model, buffer_capacity=6, arrivals_per_step=2
        )
        backend = SmtBackend(program, steps=HORIZON, config=config)
        result = backend.find_trace(count_query(backend))
        stats = result.solver_stats
        answers[model] = result.status
        print(f"  {model:8s}: {result.status.value:10s}"
              f" vars={stats.cnf_vars:6d} clauses={stats.cnf_clauses:6d}"
              f" time={result.elapsed_seconds:.2f}s")
        assert result.status is Status.SATISFIED
    # Count-only queries are decided identically at either precision.
    assert answers["list"] is answers["counter"]

    print("=== order-sensitive query needs the list model ===")
    config = EncodeConfig(buffer_model="list", buffer_capacity=6,
                          arrivals_per_step=2)
    backend = SmtBackend(program, steps=HORIZON, config=config)
    query = ordering_fifo(backend, "ob", first_flow=1, second_flow=0)
    result = backend.find_trace(query)
    print(f"  list model answers the ordering query: {result.status.value}")
    assert result.status is Status.SATISFIED

    config = EncodeConfig(buffer_model="counter", buffer_capacity=6,
                          arrivals_per_step=2)
    backend = SmtBackend(program, steps=HORIZON, config=config)
    try:
        ordering_fifo(backend, "ob", first_flow=1, second_flow=0)
        raise AssertionError("counter model should reject ordering queries")
    except ValueError as exc:
        print(f"  counter model (as expected): {exc}")


if __name__ == "__main__":
    main()
