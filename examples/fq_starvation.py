#!/usr/bin/env python3
"""Case study §6.1: the FQ-CoDel starvation bug, end to end.

The paper's motivating example: a fair-queuing scheduler that
prioritizes new flows deactivates a new-queue the moment it runs empty,
so a flow transmitting "at just the right rate" re-enters new_queues
forever and starves old_queues (RFC 8290 §4.2 warns about this).

This script reproduces the full analysis pipeline:

1. *simulate* the bug on the adversarial workload,
2. *synthesize* an adversarial trace automatically (SMT back end),
3. *replay* the synthesized trace through the interpreter (validation),
4. *synthesize the workload conditions* (FPerf back end),
5. *verify the fix*: the RFC-repaired scheduler admits no such trace.

Run:  python examples/fq_starvation.py
"""

from repro import EncodeConfig, Interpreter, Packet, SmtBackend, Status
from repro.analysis.queries import starvation
from repro.analysis.traces import replay
from repro.backends.fperf import FPerfBackend
from repro.netmodels.schedulers import fq_buggy, fq_fixed

HORIZON = 6
CONFIG = EncodeConfig(buffer_capacity=6, arrivals_per_step=2)


def simulate() -> None:
    print("=== 1. simulate the RFC's adversarial workload ===")
    workload = [{"ibs[0]": [Packet(flow=0)] * 6}] + [
        {"ibs[1]": [Packet(flow=1)]} for _ in range(9)
    ]
    for make, label in ((fq_buggy, "buggy"), (fq_fixed, "fixed")):
        interp = Interpreter(make(2))
        interp.run(workload)
        flows = [p.flow for p in interp.buffer("ob").packets()]
        print(f"  {label}: flow0 served {flows.count(0)}/10,"
              f" flow1 served {flows.count(1)}/10")


def synthesize_trace() -> None:
    print("=== 2. synthesize an adversarial trace (SMT) ===")
    backend = SmtBackend(fq_buggy(2), steps=HORIZON, config=CONFIG)
    query = starvation(
        backend, "ibs[0]",
        max_service=1,
        competitors_min_service={"ibs[1]": HORIZON - 2},
    )
    result = backend.find_trace(query)
    assert result.status is Status.SATISFIED, "the bug must be discoverable"
    print(result.counterexample.describe())

    print("=== 3. replay the trace through the interpreter ===")
    report = replay(fq_buggy(2), result.counterexample, backend=backend)
    print(f"  symbolic and concrete semantics agree: {report.consistent}")
    assert report.consistent


def synthesize_workload() -> None:
    print("=== 4. synthesize the workload conditions (FPerf back end) ===")
    fperf = FPerfBackend(fq_buggy(2), steps=HORIZON, config=CONFIG)
    query = starvation(fperf.backend, "ibs[0]", max_service=1)
    result = fperf.synthesize_by_generalization(query)
    assert result.ok
    print(f"  solver calls: {result.stats.solver_calls}")
    print(f"  W = {result.workload}")


def verify_fix() -> None:
    print("=== 5. the RFC fix excludes starvation ===")
    backend = SmtBackend(fq_fixed(2), steps=HORIZON, config=CONFIG)
    query = starvation(
        backend, "ibs[0]",
        max_service=1,
        competitors_min_service={"ibs[1]": HORIZON - 2},
    )
    result = backend.find_trace(query)
    print(f"  starvation query on fixed scheduler: {result.status.value}")
    assert result.status is Status.UNSATISFIABLE


def main() -> None:
    simulate()
    synthesize_trace()
    synthesize_workload()
    verify_fix()
    print("all steps passed")


if __name__ == "__main__":
    main()
