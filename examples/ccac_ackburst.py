#!/usr/bin/env python3
"""Case study §6.2: CCAC's AIMD ack-burst loss scenario.

CCAC models an Internet path as a non-deterministic token-bucket
server followed by a fixed delay.  Following the paper, the model is
three Buffy programs composed by connecting buffers (Figure 7):
AIMD -> path server -> delay -> back to AIMD as acks.

The analysis asks: can the path server's admissible non-determinism
(stalling service, then releasing a burst of acks) make AIMD dump a
window of packets that overflows the bottleneck buffer?  The loss
query is satisfied — with a decoded trace showing the refill schedule
— reproducing CCAC's finding.

Run:  python examples/ccac_ackburst.py
"""

from repro import NetworkBackend, Packet, Status
from repro.netmodels.ccac.models import ccac_network, ccac_symbolic_network
from repro.smt.terms import mk_and, mk_int, mk_le, mk_or

HORIZON = 8
PATH_CAPACITY = 3


def simulate() -> None:
    print("=== composed simulation (steady state, no loss) ===")
    net = ccac_network(delay_steps=1)
    for _ in range(12):
        net.step({"aimd": {"cin0": [Packet(flow=0)] * 4}})
    aimd = net.interpreter("aimd")
    path = net.interpreter("path")
    print(f"  cwnd={aimd.globals['cwnd']}"
          f" inflight={aimd.globals['inflight']}"
          f" served={path.globals['m_served']}"
          f" drops={path.buffer('pin0').stats.dropped_packets}")


def find_ack_burst_loss() -> None:
    print("=== symbolic: ack burst leading to loss ===")
    programs, connections, configs = ccac_symbolic_network(
        delay_steps=1, path_capacity=PATH_CAPACITY
    )
    backend = NetworkBackend(
        programs, connections, steps=HORIZON, configs=configs
    )

    # The ack-burst condition (§6.2: "we use havoc and assume statements
    # to create the ack burst condition"): some step delivers >= 3 acks
    # to the CCA at once.
    burst_terms = []
    for t in range(1, HORIZON):
        prev = backend.enq_count("aimd", "cin1", t - 1)
        now = backend.enq_count("aimd", "cin1", t)
        burst_terms.append(mk_le(prev + mk_int(3), now))
    ack_burst = mk_or(*burst_terms)

    # The query: a packet loss occurs at the bottleneck.
    lost = mk_le(mk_int(1), backend.drop_count("path", "pin0"))

    result = backend.find_trace(mk_and(ack_burst, lost))
    print(f"  ack-burst + loss: {result.status.value}"
          f" ({result.elapsed_seconds:.1f}s,"
          f" {result.solver_stats.cnf_clauses} clauses)")
    assert result.status is Status.SATISFIED
    trace = result.counterexample
    print(trace.describe())
    refills = [
        value for key, value in sorted(trace.havocs.items())
        if key[0] == "path"
    ]
    print(f"  synthesized path-server refill schedule: {refills}")
    print("  (a stall followed by a burst — the CCAC scenario)")


def main() -> None:
    simulate()
    find_ack_burst_loss()
    print("all steps passed")


if __name__ == "__main__":
    main()
