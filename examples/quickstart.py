#!/usr/bin/env python3
"""Quickstart: model a scheduler in Buffy, simulate it, verify it.

Covers the full workflow in ~60 lines:

1. write a Buffy program (a two-queue strict-priority scheduler),
2. parse + type-check it,
3. simulate it on a concrete workload with the reference interpreter,
4. ask the SMT back end a performance question and decode the answer.

Run:  python examples/quickstart.py
"""

from repro import EncodeConfig, Interpreter, Packet, SmtBackend, Status
from repro import check_program, parse_program
from repro.smt.terms import mk_int, mk_le

SRC = """\
prio(in buffer[2] ibs, out buffer ob){
  // Serve the highest-priority non-empty queue, one packet per step.
  local bool dequeued;
  dequeued = false;
  for (i in 0..2) do {
    if (!dequeued & backlog-p(ibs[i]) > 0) {
      move-p(ibs[i], ob, 1);
      dequeued = true;
    }
  }
}
"""


def main() -> None:
    program = check_program(parse_program(SRC))
    print(f"parsed and checked {program.name!r}")

    # ---- simulate: queue 0 gets a burst, queue 1 trickles -------------------
    interp = Interpreter(program)
    workload = [
        {"ibs[0]": [Packet(flow=0)] * 3, "ibs[1]": [Packet(flow=1)]},
        {"ibs[1]": [Packet(flow=1)]},
        {},
        {},
        {},
    ]
    interp.run(workload)
    out_flows = [p.flow for p in interp.buffer("ob").packets()]
    print(f"simulated 5 steps; output order by flow: {out_flows}")
    assert out_flows[:3] == [0, 0, 0], "priority queue must drain first"

    # ---- verify: can the low-priority queue ever be served while the
    # high-priority queue is continuously backlogged? --------------------------
    backend = SmtBackend(
        program, horizon=5,
        config=EncodeConfig(buffer_capacity=5, arrivals_per_step=2),
    )
    always_backlogged = [
        mk_le(mk_int(1), backend.backlog("ibs[0]", t)) for t in range(5)
    ]
    q1_served = mk_le(mk_int(1), backend.deq_count("ibs[1]"))
    result = backend.find_trace(q1_served, extra_assumptions=always_backlogged)
    print(f"'low-priority served while high backlogged' is {result.status.value}")
    assert result.status is Status.UNSATISFIABLE, "strict priority violated!"

    # And the converse is easy to witness:
    result = backend.find_trace(q1_served)
    assert result.status is Status.SATISFIED
    print("witness when the constraint is dropped:")
    print(result.counterexample.describe())


if __name__ == "__main__":
    main()
