#!/usr/bin/env python3
"""Quickstart: model a scheduler in Buffy, simulate it, verify it.

Covers the full workflow in ~60 lines:

1. write a Buffy program (a two-queue strict-priority scheduler),
2. parse + type-check it,
3. simulate it on a concrete workload with the reference interpreter,
4. ask performance questions through the one-call ``repro.analyze()``
   facade and branch on its uniform :class:`repro.Verdict`.

Run:  python examples/quickstart.py
"""

import repro
from repro import EncodeConfig, Interpreter, Packet, Verdict
from repro import check_program, parse_program
from repro.smt.terms import mk_and, mk_int, mk_le

SRC = """\
prio(in buffer[2] ibs, out buffer ob){
  // Serve the highest-priority non-empty queue, one packet per step.
  local bool dequeued;
  dequeued = false;
  for (i in 0..2) do {
    if (!dequeued & backlog-p(ibs[i]) > 0) {
      move-p(ibs[i], ob, 1);
      dequeued = true;
    }
  }
}
"""


def main() -> None:
    program = check_program(parse_program(SRC))
    print(f"parsed and checked {program.name!r}")

    # ---- simulate: queue 0 gets a burst, queue 1 trickles -------------------
    interp = Interpreter(program)
    workload = [
        {"ibs[0]": [Packet(flow=0)] * 3, "ibs[1]": [Packet(flow=1)]},
        {"ibs[1]": [Packet(flow=1)]},
        {},
        {},
        {},
    ]
    interp.run(workload)
    out_flows = [p.flow for p in interp.buffer("ob").packets()]
    print(f"simulated 5 steps; output order by flow: {out_flows}")
    assert out_flows[:3] == [0, 0, 0], "priority queue must drain first"

    # ---- verify: can the low-priority queue ever be served while the
    # high-priority queue is continuously backlogged? --------------------------
    config = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)

    def starved_but_served(bk):
        always_backlogged = [
            mk_le(mk_int(1), bk.backlog("ibs[0]", t)) for t in range(5)
        ]
        q1_served = mk_le(mk_int(1), bk.deq_count("ibs[1]"))
        return mk_and(q1_served, *always_backlogged)

    outcome = repro.analyze(program, starved_but_served,
                            steps=5, config=config)
    print(f"'low-priority served while high backlogged': {outcome.verdict.value}")
    # VIOLATED here means "no such trace exists" — strict priority holds.
    assert outcome.verdict is Verdict.VIOLATED, "strict priority violated!"

    # And the converse is easy to witness:
    outcome = repro.analyze(
        program, lambda bk: mk_le(mk_int(1), bk.deq_count("ibs[1]")),
        steps=5, config=config,
    )
    assert outcome.verdict is Verdict.PROVED and outcome.witness is not None
    print("witness when the constraint is dropped:")
    print(outcome.witness.describe())


if __name__ == "__main__":
    main()
