#!/usr/bin/env python3
"""Synthesizing interface specifications with Houdini (§5 future work).

The paper's §5 plan — "use the Houdini algorithm with Dafny to
iteratively refine guesses of interface specifications" — implemented
end to end:

1. a grammar proposes candidate invariant conjuncts over a scheduler's
   persistent state (conservation laws, sign facts, capacity bounds,
   pointer ranges, and some deliberately false ones);
2. the Houdini loop prunes candidates until the conjunction is
   inductive;
3. the synthesized specification then powers *modular* verification —
   the horizon-independent regime that escapes Figure 6's blow-up —
   without the user writing a single annotation.

Run:  python examples/invariant_synthesis.py
"""

from repro import DafnyBackend, EncodeConfig
from repro.backends.houdini import HoudiniSynthesizer
from repro.netmodels.schedulers import round_robin
from repro.smt.terms import mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=3, arrivals_per_step=1)


def main() -> None:
    program = round_robin(2)

    print("=== 1. synthesize the interface specification ===")
    houdini = HoudiniSynthesizer(program, config=CONFIG)
    result = houdini.synthesize()
    print(f"  {result.iterations} Houdini iterations,"
          f" {result.solver_calls} solver calls,"
          f" {result.elapsed_seconds:.1f}s")
    print(f"  synthesized {len(result.invariant)} conjuncts:")
    for name in result.names():
        print(f"    - {name}")
    rejected = [name for name, why in result.dropped]
    print(f"  rejected {len(rejected)} candidates, e.g."
          f" {rejected[:3]}")
    assert "conserve[ob]" in result.names()
    assert "nxt_le_1" in result.names(), "the RR pointer bound is found"

    print("=== 2. use it for modular verification ===")
    dafny = DafnyBackend(program, config=CONFIG)

    def bounded_backlog(view):
        return mk_le(view.backlog_p("ibs[0]"), mk_int(3))

    report = dafny.verify_modular(
        result.as_invariant(),
        queries=[("bounded_backlog", bounded_backlog)],
    )
    print(f"  modular verification with the synthesized spec:"
          f" ok={report.ok} in {report.elapsed_seconds:.2f}s")
    print(f"  VCs: {[vc.name for vc in report.vcs]}")
    assert report.ok
    print("all steps passed")


if __name__ == "__main__":
    main()
