#!/usr/bin/env python3
"""One front-end program, four back ends (§4).

Buffy's pitch is solver-agnosticism: model once, analyze with whatever
engine fits the task.  This script takes the round-robin scheduler
through every back end in the reproduction:

1. SMT back end      — trace synthesis / bounded verification;
2. FPerf back end    — workload-condition synthesis;
3. Dafny back end    — annotation checking, monolithic vs modular;
4. Model checker     — BMC, then an unbounded k-induction proof;
plus the SMT-LIB exporter, so an external solver could double-check.

Run:  python examples/multi_backend.py
"""

import repro
from repro import (
    DafnyBackend,
    EncodeConfig,
    FPerfBackend,
    ModelChecker,
    SmtBackend,
    Status,
    Verdict,
)
from repro.backends.mc import MCStatus, to_chc
from repro.netmodels.schedulers import round_robin
from repro.smt.smtlib import to_smtlib
from repro.smt.terms import mk_and, mk_int, mk_le

HORIZON = 4
CONFIG = EncodeConfig(buffer_capacity=4, arrivals_per_step=2)


def conservation(view):
    """deq + backlog == enq for every buffer (an inductive invariant)."""
    return mk_and(*[
        (view.deq_p(label) + view.backlog_p(label)).eq(view.enq_p(label))
        for label in view.buffer_labels()
    ])


def main() -> None:
    program = round_robin(2)

    print("=== 0. the analyze() facade: one call, one verdict type ===")
    # Every back end below can also be driven through repro.analyze(),
    # which returns a uniform AnalysisOutcome (verdict/witness/report).
    for backend in ("smt", "dafny", "mc", "houdini"):
        query = conservation if backend in ("dafny", "mc") else None
        outcome = repro.analyze(program, query, backend=backend,
                                steps=3, config=CONFIG)
        print(f"  analyze(..., backend={backend!r}):"
              f" {outcome.verdict.value} (exit {outcome.exit_code})")
        assert outcome.verdict is Verdict.PROVED

    print("=== 1. SMT back end: bounded trace synthesis ===")
    smt = SmtBackend(program, steps=HORIZON, config=CONFIG)
    both_served = mk_and(
        mk_le(mk_int(1), smt.deq_count("ibs[0]")),
        mk_le(mk_int(1), smt.deq_count("ibs[1]")),
    )
    result = smt.find_trace(both_served)
    print(f"  both queues served within {HORIZON} steps:"
          f" {result.status.value}")
    assert result.status is Status.SATISFIED

    print("=== 2. FPerf back end: workload synthesis ===")
    fperf = FPerfBackend(program, steps=HORIZON, config=CONFIG)
    target = mk_le(mk_int(2), fperf.backend.deq_count("ibs[0]"))
    synth = fperf.synthesize_by_generalization(target)
    assert synth.ok
    print(f"  conditions guaranteeing >=2 dequeues for queue 0:")
    print(f"    {synth.workload}")

    print("=== 3. Dafny back end: monolithic vs modular ===")
    dafny = DafnyBackend(program, config=CONFIG)
    mono = dafny.verify_monolithic(
        HORIZON, queries=[("conservation", conservation)]
    )
    print(f"  monolithic (T={HORIZON}): ok={mono.ok}"
          f" in {mono.elapsed_seconds:.2f}s")
    modular = dafny.verify_modular(
        conservation, queries=[("conservation", conservation)]
    )
    print(f"  modular (T-independent): ok={modular.ok}"
          f" in {modular.elapsed_seconds:.2f}s,"
          f" VCs: {[vc.name for vc in modular.vcs]}")
    assert mono.ok and modular.ok

    print("=== 4. model checker: BMC + k-induction ===")
    mc = ModelChecker(program, config=CONFIG)
    bmc = mc.bmc(conservation, k=3)
    print(f"  BMC(3): {bmc.status.value}")
    kind = mc.k_induction(conservation, k=1)
    print(f"  k-induction: {kind.status.value} "
          f"(conservation holds at EVERY horizon)")
    assert kind.status is MCStatus.PROVED

    print("=== 5. SMT-LIB / CHC export for external solvers ===")
    script = to_smtlib(smt.machine.assumptions[:3], logic="QF_LIA")
    print(f"  SMT-LIB script: {len(script.splitlines())} lines"
          f" (pipe to z3/cvc5 to cross-check)")
    chc = to_chc(program, conservation, config=CONFIG)
    print(f"  CHC (HORN) script: {len(chc.splitlines())} lines"
          f" (pipe to z3's Spacer)")


if __name__ == "__main__":
    main()
