"""Case study §6.1 — FQ scheduler starvation (the FPerf use case).

Paper workflow reproduced end to end:

* the query is the starvation metric over the dequeue-count monitor
  (``assert(cdeq[T-1] >= T/2)`` fails ⇔ a starvation trace exists);
* the SMT back end *synthesizes the adversarial input traffic* for the
  buggy scheduler — the trace matches the RFC 8290 description (victim
  bursts once, competitor paces one packet per step);
* the FPerf back end generalizes the trace into *workload conditions*;
* the RFC-fixed scheduler provably admits no such trace (unsat).

Expected shape: buggy = satisfiable, fixed = unsatisfiable, and the
synthesized workload paces the competitor at exactly one packet/step.
"""

from repro.analysis.queries import starvation
from repro.analysis.traces import replay
from repro.backends.fperf import FPerfBackend
from repro.backends.smt_backend import SmtBackend, Status
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy, fq_fixed

from conftest import skip_if_exhausted

HORIZON = 6
CONFIG = EncodeConfig(buffer_capacity=6, arrivals_per_step=2)

_summary: list[str] = []


def starvation_query(backend):
    return starvation(
        backend, "ibs[0]",
        max_service=1,
        competitors_min_service={"ibs[1]": HORIZON - 2},
    )


def test_cs1_buggy_trace_synthesis(benchmark, bench_budget, bench_json):
    backend = SmtBackend(fq_buggy(2), steps=HORIZON, config=CONFIG,
                         budget=bench_budget())
    result = benchmark.pedantic(
        lambda: backend.find_trace(starvation_query(backend)),
        rounds=1, iterations=1,
    )
    skip_if_exhausted(result)
    assert result.status is Status.SATISFIED
    report = replay(fq_buggy(2), result.counterexample, backend=backend)
    assert report.consistent
    bench_json("solve_seconds", result.elapsed_seconds, "s",
               scheduler="buggy", horizon=HORIZON)
    bench_json("cnf_clauses", result.solver_stats.cnf_clauses, "clauses",
               scheduler="buggy")
    _summary.append(
        f"buggy FQ, T={HORIZON}: starvation trace FOUND in"
        f" {result.elapsed_seconds:.1f}s"
        f" ({result.solver_stats.cnf_clauses} clauses); replay consistent"
    )
    # The RFC's trace shape: competitor arrives in >= T-2 distinct steps
    # (paced), victim keeps a standing backlog from one early burst.
    competitor_steps = sum(
        1 for step in result.counterexample.arrivals if step.get("ibs[1]")
    )
    assert competitor_steps >= HORIZON - 2


def test_cs1_fixed_scheduler_excludes_starvation(benchmark, bench_budget,
                                                 bench_json):
    backend = SmtBackend(fq_fixed(2), steps=HORIZON, config=CONFIG,
                         budget=bench_budget())
    result = benchmark.pedantic(
        lambda: backend.find_trace(starvation_query(backend)),
        rounds=1, iterations=1,
    )
    skip_if_exhausted(result)
    assert result.status is Status.UNSATISFIABLE
    bench_json("solve_seconds", result.elapsed_seconds, "s",
               scheduler="fixed", horizon=HORIZON)
    _summary.append(
        f"fixed FQ, T={HORIZON}: starvation UNSAT in"
        f" {result.elapsed_seconds:.1f}s (RFC 8290 fix verified)"
    )


def test_cs1_workload_synthesis(benchmark, bench_budget, bench_json):
    fperf = FPerfBackend(fq_buggy(2), steps=HORIZON, config=CONFIG,
                         budget=bench_budget())
    query = starvation(fperf.backend, "ibs[0]", max_service=1)
    result = benchmark.pedantic(
        lambda: fperf.synthesize_by_generalization(query),
        rounds=1, iterations=1,
    )
    skip_if_exhausted(result)
    assert result.ok
    bench_json("fperf_solver_calls", result.stats.solver_calls, "calls")
    bench_json("workload_conditions", len(result.workload), "conditions")
    text = str(result.workload)
    _summary.append(
        f"FPerf synthesis: {result.stats.solver_calls} solver calls,"
        f" {len(result.workload)} conditions"
    )
    _summary.append(f"  W = {text}")
    # The pacing condition on the competitor must be present.
    assert "arrivals(ibs[1], t) >= 1" in text


def test_cs1_summary(benchmark, results_table):
    benchmark.pedantic(lambda: list(_summary), rounds=1, iterations=1)
    results_table["Case study §6.1 — FQ starvation"] = list(_summary) + [
        "paper: FPerf synthesizes traffic satisfying the starvation query;"
        " the bug matches RFC 8290 §4.2",
    ]
