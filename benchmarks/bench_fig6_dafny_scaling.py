"""Figure 6 — Dafny verification time vs number of time steps T.

Paper (§6.1, Figure 6): with loops unrolled and methods inlined (no
invariants available), verification time grows *exponentially* with
the modeled time horizon T.

We regenerate the curve by running the Dafny-style back end in its
monolithic (unroll + inline) mode on the buggy FQ scheduler at
increasing horizons and timing the VC discharge.  The absolute numbers
depend on our SAT solver, but the shape — superlinear, roughly
geometric growth per added step — is the figure's finding and is
asserted below.

Set ``REPRO_BENCH_DEEP=1`` for the full T range (1..6).
"""

import pytest

from repro.backends.dafny import DafnyBackend
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy
from repro.smt.terms import mk_le

from conftest import fig6_horizons, skip_if_exhausted

CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)

_measured: dict[int, float] = {}
_clauses: dict[int, int] = {}


def total_work_query(view):
    """The discharged VC: total dequeues never exceed total enqueues."""
    deq = view.deq_p("ibs[0]") + view.deq_p("ibs[1]")
    enq = view.enq_p("ibs[0]") + view.enq_p("ibs[1]")
    return mk_le(deq, enq)


@pytest.mark.parametrize("horizon", list(fig6_horizons()))
def test_fig6_point(benchmark, horizon, bench_budget):
    dafny = DafnyBackend(fq_buggy(2), config=CONFIG, budget=bench_budget())

    def verify():
        return dafny.verify_monolithic(
            horizon, queries=[("total_work", total_work_query)]
        )

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    skip_if_exhausted(report)
    assert report.ok
    _measured[horizon] = report.elapsed_seconds
    _clauses[horizon] = report.vcs[0].cnf_clauses


def test_fig6_shape(benchmark, results_table, request):
    """The curve must be superlinear (Figure 6's exponential blow-up)."""
    horizons = sorted(_measured)
    if len(horizons) < 3 and request.config.getoption("--deadline"):
        pytest.skip("too few points survived the --deadline budget")
    assert len(horizons) >= 3, "run after the per-point benches"
    benchmark.pedantic(lambda: sorted(_measured), rounds=1, iterations=1)
    lines = [f"{'T':>2s} {'verify time':>12s} {'VC clauses':>11s}"]
    for t in horizons:
        lines.append(f"{t:2d} {_measured[t]:10.3f}s {_clauses[t]:11d}")
    ratios = [
        _measured[b] / max(_measured[a], 1e-9)
        for a, b in zip(horizons, horizons[1:])
    ]
    lines.append(
        "per-step growth factors: "
        + ", ".join(f"{r:.1f}x" for r in ratios)
    )
    lines.append("paper: exponential growth with T (Figure 6)")
    results_table["Figure 6 — monolithic Dafny verification time"] = lines

    # Superlinear growth: the last growth factor exceeds 2x and the
    # total curve spans more than an order of magnitude.
    assert ratios[-1] > 2.0
    assert _measured[horizons[-1]] / max(_measured[horizons[0]], 1e-9) > 10
