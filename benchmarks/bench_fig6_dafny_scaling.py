"""Figure 6 — Dafny verification time vs number of time steps T.

Paper (§6.1, Figure 6): with loops unrolled and methods inlined (no
invariants available), verification time grows *exponentially* with
the modeled time horizon T.

We regenerate the curve by running the Dafny-style back end in its
monolithic (unroll + inline) mode on the buggy FQ scheduler at
increasing horizons and timing the VC discharge.  The absolute numbers
depend on our SAT solver, but the shape — superlinear, roughly
geometric growth per added step — is the figure's finding and is
asserted below.

Set ``REPRO_BENCH_DEEP=1`` for the full T range (1..6).

The second half of the file benchmarks the solving engine on the same
workload: multi-VC monolithic discharge through the parallel portfolio
(``jobs=4``), the shared per-machine encoding, and the result cache,
against the sequential seed path (fresh solver per VC, no cache).
"""

import os
import time

import pytest

from repro.backends.dafny import DafnyBackend
from repro.compiler.symexec import EncodeConfig
from repro.engine import ResultCache
from repro.netmodels.schedulers import fq_buggy, fq_fixed
from repro.smt.terms import mk_int, mk_le

from conftest import fig6_horizons, skip_if_exhausted

CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)

_measured: dict[int, float] = {}
_clauses: dict[int, int] = {}


def total_work_query(view):
    """The discharged VC: total dequeues never exceed total enqueues."""
    deq = view.deq_p("ibs[0]") + view.deq_p("ibs[1]")
    enq = view.enq_p("ibs[0]") + view.enq_p("ibs[1]")
    return mk_le(deq, enq)


@pytest.mark.parametrize("horizon", list(fig6_horizons()))
def test_fig6_point(benchmark, horizon, bench_budget, bench_json):
    dafny = DafnyBackend(fq_buggy(2), config=CONFIG, budget=bench_budget())

    def verify():
        return dafny.verify_monolithic(
            horizon, queries=[("total_work", total_work_query)]
        )

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    skip_if_exhausted(report)
    assert report.ok
    _measured[horizon] = report.elapsed_seconds
    _clauses[horizon] = report.vcs[0].cnf_clauses
    bench_json("verify_seconds", report.elapsed_seconds, "s",
               horizon=horizon)
    bench_json("cnf_clauses", report.vcs[0].cnf_clauses, "clauses",
               horizon=horizon)


def test_fig6_shape(benchmark, results_table, request):
    """The curve must be superlinear (Figure 6's exponential blow-up)."""
    horizons = sorted(_measured)
    if len(horizons) < 3 and request.config.getoption("--deadline"):
        pytest.skip("too few points survived the --deadline budget")
    assert len(horizons) >= 3, "run after the per-point benches"
    benchmark.pedantic(lambda: sorted(_measured), rounds=1, iterations=1)
    lines = [f"{'T':>2s} {'verify time':>12s} {'VC clauses':>11s}"]
    for t in horizons:
        lines.append(f"{t:2d} {_measured[t]:10.3f}s {_clauses[t]:11d}")
    ratios = [
        _measured[b] / max(_measured[a], 1e-9)
        for a, b in zip(horizons, horizons[1:])
    ]
    lines.append(
        "per-step growth factors: "
        + ", ".join(f"{r:.1f}x" for r in ratios)
    )
    lines.append("paper: exponential growth with T (Figure 6)")
    results_table["Figure 6 — monolithic Dafny verification time"] = lines

    # Superlinear growth: the last growth factor exceeds 2x and the
    # total curve spans more than an order of magnitude.
    assert ratios[-1] > 2.0
    assert _measured[horizons[-1]] / max(_measured[horizons[0]], 1e-9) > 10


# ----- engine (parallel + incremental + cached) vs the sequential seed -------

ENGINE_JOBS = 4
ENGINE_HORIZON = max(fig6_horizons())


def _engine_queries():
    """Four independent VCs over one machine (all verified on fq_fixed)."""

    def conservation(label):
        def vc(view):
            return (view.deq_p(label) + view.backlog_p(label)).eq(
                view.enq_p(label))
        return vc

    def capacity(label):
        def vc(view):
            return mk_le(view.backlog_p(label),
                         mk_int(CONFIG.buffer_capacity))
        return vc

    return (
        [(f"conservation[{i}]", conservation(f"ibs[{i}]")) for i in range(2)]
        + [(f"capacity[{i}]", capacity(f"ibs[{i}]")) for i in range(2)]
    )


def _timed_discharge(**engine_knobs):
    backend = DafnyBackend(fq_fixed(2), config=CONFIG, **engine_knobs)
    t0 = time.perf_counter()
    report = backend.verify_monolithic(ENGINE_HORIZON,
                                       queries=_engine_queries())
    return time.perf_counter() - t0, report


def test_engine_vs_sequential_seed(benchmark, results_table, bench_json):
    """The tentpole's evidence: engine discharge vs the seed path.

    * the **warm** engine (result cache populated) must beat the
      sequential seed by >= 1.5x, and answer each repeated identical VC
      in < 10 ms;
    * the **cold** parallel run must return identical verdicts; its
      >= 1.5x wall-clock claim only holds with real cores to run on, so
      it is asserted when >= 4 CPUs are available (this is the
      ``--jobs 4`` configuration from the acceptance criteria).
    """
    seed_t, seed_report = _timed_discharge(jobs=1, incremental=False)
    assert seed_report.ok

    cache = ResultCache()
    cold_t, cold_report = _timed_discharge(jobs=ENGINE_JOBS, cache=cache)
    warm_t, warm_report = benchmark.pedantic(
        lambda: _timed_discharge(jobs=ENGINE_JOBS, cache=cache),
        rounds=1, iterations=1,
    )

    # Identical verdicts across seed / parallel / cached paths.
    for other in (cold_report, warm_report):
        assert [(vc.name, vc.status) for vc in other.vcs] == \
            [(vc.name, vc.status) for vc in seed_report.vcs]

    n_vcs = len(seed_report.vcs)
    per_vc_warm = warm_t / n_vcs
    cpus = os.cpu_count() or 1
    bench_json("engine_seconds", seed_t, "s", path="sequential-seed")
    bench_json("engine_seconds", cold_t, "s", path="parallel-cold")
    bench_json("engine_seconds", warm_t, "s", path="parallel-warm")
    bench_json("warm_ms_per_vc", per_vc_warm * 1000, "ms")
    lines = [
        f"workload: {n_vcs} VCs on fq_fixed at T={ENGINE_HORIZON}",
        f"sequential seed (jobs=1, no reuse): {seed_t:8.3f}s",
        f"engine cold  (jobs={ENGINE_JOBS}, cache miss): {cold_t:8.3f}s"
        f"  ({seed_t / cold_t:.2f}x, {cpus} CPU(s) available)",
        f"engine warm  (jobs={ENGINE_JOBS}, cache hit):  {warm_t:8.3f}s"
        f"  ({seed_t / warm_t:.0f}x, {per_vc_warm * 1000:.1f} ms/VC)",
    ]
    results_table["Engine — parallel + cached VC discharge vs seed"] = lines

    # Acceptance: a repeated identical query answers from cache < 10 ms,
    # and the warm engine beats the sequential seed well past 1.5x.
    assert per_vc_warm < 0.010
    assert seed_t / warm_t >= 1.5
    # The cold parallel speedup needs actual cores; assert when present.
    if cpus >= ENGINE_JOBS:
        assert seed_t / cold_t >= 1.5
