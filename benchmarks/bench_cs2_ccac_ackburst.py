"""Case study §6.2 — CCAC: AIMD ack-burst loss scenario.

Paper workflow: the CCAC model is decomposed into three Buffy programs
(CCA, path server, delay server) composed by connecting buffers
(Figure 7); havoc/assume create the path server's admissible
non-determinism, and the query asserts the occurrence of loss.

Expected shape:

* loss (with an ack burst) is *satisfiable* against a small bottleneck
  buffer — the CCAC finding;
* with the congestion window clamped at/below the buffer size, loss is
  *unsatisfiable* — the scenario really is window-overshoot;
* modular (invariant-annotated) checking of the path-server property
  is horizon-independent, unlike the monolithic encoding (§5, §6.2).
"""

from repro.backends.dafny import DafnyBackend
from repro.backends.network import NetworkBackend
from repro.backends.smt_backend import Status
from repro.compiler.symexec import EncodeConfig
from repro.lang.checker import check_program
from repro.lang.parser import parse_program
from repro.netmodels.ccac.models import (
    AIMD_SRC,
    ccac_symbolic_network,
    path_program,
)
from repro.smt.terms import mk_and, mk_int, mk_le, mk_or

from conftest import skip_if_exhausted

# The ack-burst scenario needs enough steps for the window to grow, the
# path to stall, and the burst to come back around the loop: 8 RTTs.
HORIZON = 8
PATH_CAPACITY = 3

_summary: list[str] = []


def _backend(programs=None, capacity=PATH_CAPACITY, horizon=HORIZON,
             budget=None):
    progs, connections, configs = ccac_symbolic_network(
        delay_steps=1, path_capacity=capacity
    )
    if programs:
        progs.update(programs)
    return NetworkBackend(progs, connections, steps=horizon,
                          configs=configs, budget=budget)


def _ack_burst(backend, horizon):
    terms = []
    for t in range(1, horizon):
        prev = backend.enq_count("aimd", "cin1", t - 1)
        now = backend.enq_count("aimd", "cin1", t)
        terms.append(mk_le(prev + mk_int(3), now))
    return mk_or(*terms)


def test_cs2_ack_burst_loss_reachable(benchmark, bench_budget, bench_json):
    backend = _backend(budget=bench_budget())
    query = mk_and(
        _ack_burst(backend, HORIZON),
        mk_le(mk_int(1), backend.drop_count("path", "pin0")),
    )
    result = benchmark.pedantic(
        lambda: backend.find_trace(query), rounds=1, iterations=1
    )
    skip_if_exhausted(result)
    assert result.status is Status.SATISFIED
    bench_json("solve_seconds", result.elapsed_seconds, "s",
               scenario="ack-burst-loss", horizon=HORIZON)
    refills = [
        int(v) for k, v in sorted(result.counterexample.havocs.items())
        if k[0] == "path"
    ]
    _summary.append(
        f"AIMD over token-bucket path, T={HORIZON}, buffer={PATH_CAPACITY}:"
        f" ack burst + loss SATISFIED in {result.elapsed_seconds:.1f}s"
    )
    _summary.append(f"  synthesized refill schedule: {refills}")
    # The envelope permits a stall (some zero-refill step) before the burst.
    assert 0 in refills


def test_cs2_no_loss_with_clamped_window(benchmark, bench_budget, bench_json):
    small_window = AIMD_SRC.replace(
        "const int CWND_MAX = 8;", "const int CWND_MAX = 2;"
    ).replace("const int IW = 2;", "const int IW = 1;")
    backend = _backend(
        programs={"aimd": check_program(parse_program(small_window))},
        capacity=6,
        horizon=5,
        budget=bench_budget(),
    )
    query = mk_le(mk_int(1), backend.drop_count("path", "pin0"))
    result = benchmark.pedantic(
        lambda: backend.find_trace(query), rounds=1, iterations=1
    )
    skip_if_exhausted(result)
    assert result.status is Status.UNSATISFIABLE
    bench_json("solve_seconds", result.elapsed_seconds, "s",
               scenario="clamped-window")
    _summary.append(
        "window clamped to 2 <= buffer 6: loss UNSAT"
        f" in {result.elapsed_seconds:.1f}s (overshoot is the cause)"
    )


def test_cs2_modular_path_server_invariant(benchmark, bench_budget,
                                           bench_json):
    """§6.2: CCAC supplies path-server invariants, so the Dafny back end
    can check its property modularly — no unrolling, no inlining."""
    config = EncodeConfig(buffer_capacity=4, arrivals_per_step=2,
                          havoc_default=(0, 4))
    dafny = DafnyBackend(path_program(), config=config,
                         budget=bench_budget())

    def conservation(view):
        return mk_and(*[
            (view.deq_p(label) + view.backlog_p(label)).eq(view.enq_p(label))
            for label in view.buffer_labels()
        ])

    report = benchmark.pedantic(
        lambda: dafny.verify_modular(conservation), rounds=1, iterations=1
    )
    skip_if_exhausted(report)
    assert report.ok
    bench_json("solve_seconds", report.elapsed_seconds, "s",
               scenario="modular-path-server")
    _summary.append(
        f"path server modular check (init+preserve):"
        f" {report.elapsed_seconds:.2f}s, horizon-independent"
    )


def test_cs2_summary(benchmark, results_table):
    benchmark.pedantic(lambda: list(_summary), rounds=1, iterations=1)
    results_table["Case study §6.2 — CCAC ack burst"] = list(_summary) + [
        "paper: ack burst condition via havoc/assume; loss query satisfied;"
        " user-supplied invariants avoid inlining",
    ]
