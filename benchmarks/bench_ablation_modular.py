"""Ablation A3 — monolithic vs modular verification (§5 / Figure 6).

The paper's motivation for modular analysis: monolithic unrolled
verification blows up with the horizon, while invariant-annotated
(modular) verification is horizon-independent.  We verify the same
property — work conservation — both ways on the strict-priority
scheduler and compare the cost profiles.
"""

import pytest

from repro.backends.dafny import DafnyBackend
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import strict_priority
from repro.smt.terms import mk_and, mk_le

CONFIG = EncodeConfig(buffer_capacity=4, arrivals_per_step=2)
HORIZONS = [1, 2, 3, 4]

_mono: dict[int, float] = {}
_modular: list[float] = []


def conservation(view):
    return mk_and(*[
        (view.deq_p(label) + view.backlog_p(label)).eq(view.enq_p(label))
        for label in view.buffer_labels()
    ])


def query(view):
    return mk_and(*[
        mk_le(view.deq_p(label), view.enq_p(label))
        for label in view.buffer_labels()
    ])


@pytest.mark.parametrize("horizon", HORIZONS)
def test_monolithic_cost(benchmark, horizon, bench_json):
    dafny = DafnyBackend(strict_priority(2), config=CONFIG)
    report = benchmark.pedantic(
        lambda: dafny.verify_monolithic(horizon, queries=[("q", query)]),
        rounds=1, iterations=1,
    )
    assert report.ok
    _mono[horizon] = report.elapsed_seconds
    bench_json("verify_seconds", report.elapsed_seconds, "s",
               mode="monolithic", horizon=horizon)


def test_modular_cost(benchmark, bench_json):
    dafny = DafnyBackend(strict_priority(2), config=CONFIG)
    report = benchmark.pedantic(
        lambda: dafny.verify_modular(conservation, queries=[("q", query)]),
        rounds=1, iterations=1,
    )
    assert report.ok
    _modular.append(report.elapsed_seconds)
    bench_json("verify_seconds", report.elapsed_seconds, "s", mode="modular")


def test_modular_summary(benchmark, results_table):
    benchmark.pedantic(lambda: dict(_mono), rounds=1, iterations=1)
    lines = [
        f"monolithic T={t}: {_mono[t]:6.2f}s" for t in sorted(_mono)
    ]
    lines.append(
        f"modular (any T):  {_modular[0]:6.2f}s"
        " — init + preserve + query, no unrolling"
    )
    results_table["Ablation A3 — monolithic vs modular"] = lines + [
        "paper: modules + boundary invariants are the way past Figure 6's"
        " blow-up (§5)",
    ]
    # Monolithic grows with T; modular is a constant independent of T.
    assert _mono[HORIZONS[-1]] > _mono[HORIZONS[0]]
    assert len(_modular) == 1
