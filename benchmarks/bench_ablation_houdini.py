"""Ablation A4 — synthesized vs hand-written interface specifications.

§5's end state: modular analysis without the user writing invariants.
We compare three ways to discharge the same horizon-independent
property on the strict-priority scheduler:

* hand-written invariant + modular Dafny check (the §6.2 workflow);
* Houdini-synthesized invariant + the same modular check (zero user
  annotations — the paper's future-work loop);
* monolithic unrolled checking at a moderate horizon (the fallback
  when no invariants exist).
"""

import pytest

from repro.backends.dafny import DafnyBackend
from repro.backends.houdini import HoudiniSynthesizer
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import strict_priority
from repro.smt.terms import mk_and, mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=3, arrivals_per_step=1)

_rows: list[str] = []


def hand_written(view):
    return mk_and(*[
        (view.deq_p(label) + view.backlog_p(label)).eq(view.enq_p(label))
        for label in view.buffer_labels()
    ])


def query(view):
    return mk_and(*[
        mk_le(view.deq_p(label), view.enq_p(label))
        for label in view.buffer_labels()
    ])


def test_hand_written_invariant(benchmark, bench_json):
    dafny = DafnyBackend(strict_priority(2), config=CONFIG)
    report = benchmark.pedantic(
        lambda: dafny.verify_modular(hand_written, queries=[("q", query)]),
        rounds=1, iterations=1,
    )
    assert report.ok
    bench_json("verify_seconds", report.elapsed_seconds, "s",
               strategy="hand-written")
    _rows.append(f"hand-written invariant:  {report.elapsed_seconds:6.2f}s"
                 " (user supplies the spec)")


def test_synthesized_invariant(benchmark, bench_json):
    def synthesize_and_verify():
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        result = houdini.synthesize()
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)
        report = dafny.verify_modular(
            result.as_invariant(), queries=[("q", query)]
        )
        return result, report

    result, report = benchmark.pedantic(
        synthesize_and_verify, rounds=1, iterations=1
    )
    assert report.ok
    bench_json("verify_seconds",
               result.elapsed_seconds + report.elapsed_seconds, "s",
               strategy="houdini")
    bench_json("houdini_iterations", result.iterations, "rounds")
    bench_json("invariant_conjuncts", len(result.invariant), "terms")
    _rows.append(
        f"Houdini + modular check: {result.elapsed_seconds + report.elapsed_seconds:6.2f}s"
        f" ({len(result.invariant)} conjuncts in {result.iterations}"
        " iterations, zero annotations)"
    )


def test_monolithic_fallback(benchmark, bench_json):
    dafny = DafnyBackend(strict_priority(2), config=CONFIG)
    report = benchmark.pedantic(
        lambda: dafny.verify_monolithic(4, queries=[("q", query)]),
        rounds=1, iterations=1,
    )
    assert report.ok
    bench_json("verify_seconds", report.elapsed_seconds, "s",
               strategy="monolithic", horizon=4)
    _rows.append(f"monolithic (T=4 only):   {report.elapsed_seconds:6.2f}s"
                 " (bounded result, grows with T)")


def test_houdini_summary(benchmark, results_table):
    benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    results_table["Ablation A4 — invariant provenance (§5)"] = list(_rows) + [
        "paper: synthesize interface specs with Houdini so modular"
        " analysis needs no user annotations",
    ]
