"""Ablation A1 — buffer-model precision (§3, "varying precision").

The same Buffy program is analyzed under both buffer models:

* *count* queries (per-buffer dequeue totals) are decided identically
  by the packet-list and per-flow-counter models;
* *ordering* queries are only expressible under the list model — the
  paper's [1,1,2,2]-vs-[1,2,1,2] argument;
* encoding sizes differ: the counter model trades slot-level precision
  for per-class arithmetic (measured, not assumed).
"""

import pytest

from repro.analysis.queries import ordering_fifo
from repro.backends.smt_backend import SmtBackend, Status
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import round_robin
from repro.smt.terms import mk_and, mk_int, mk_le

HORIZON = 4

_rows: list[str] = []


def count_query(backend):
    return mk_and(
        mk_le(mk_int(2), backend.deq_count("ibs[0]")),
        mk_le(mk_int(2), backend.deq_count("ibs[1]")),
    )


@pytest.mark.parametrize("model", ["list", "counter"])
def test_count_query_per_model(benchmark, model, bench_json):
    config = EncodeConfig(
        buffer_model=model, buffer_capacity=6, arrivals_per_step=2
    )
    backend = SmtBackend(round_robin(2), steps=HORIZON, config=config)
    result = benchmark.pedantic(
        lambda: backend.find_trace(count_query(backend)),
        rounds=1, iterations=1,
    )
    assert result.status is Status.SATISFIED
    stats = result.solver_stats
    bench_json("solve_seconds", result.elapsed_seconds, "s", model=model)
    bench_json("cnf_vars", stats.cnf_vars, "vars", model=model)
    bench_json("cnf_clauses", stats.cnf_clauses, "clauses", model=model)
    _rows.append(
        f"{model:8s} model: count query satisfied,"
        f" {stats.cnf_vars} vars / {stats.cnf_clauses} clauses,"
        f" {result.elapsed_seconds:.2f}s"
    )


def test_ordering_needs_list_model(benchmark):
    list_config = EncodeConfig(buffer_model="list", buffer_capacity=6,
                               arrivals_per_step=2)
    backend = SmtBackend(round_robin(2), steps=HORIZON, config=list_config)
    query = ordering_fifo(backend, "ob", first_flow=1, second_flow=0)
    result = benchmark.pedantic(
        lambda: backend.find_trace(query), rounds=1, iterations=1
    )
    assert result.status is Status.SATISFIED
    _rows.append("list     model: ordering query expressible and satisfiable")

    counter_config = EncodeConfig(buffer_model="counter", buffer_capacity=6,
                                  arrivals_per_step=2)
    counter_backend = SmtBackend(round_robin(2), steps=HORIZON,
                                 config=counter_config)
    with pytest.raises(ValueError):
        ordering_fifo(counter_backend, "ob", first_flow=1, second_flow=0)
    _rows.append("counter  model: ordering query rejected (order abstracted)")


def test_precision_summary(benchmark, results_table):
    benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    results_table["Ablation A1 — buffer-model precision"] = list(_rows) + [
        "paper: count-only queries need no packet identity; ordering"
        " queries need the list model (§3)",
    ]
