"""Shared benchmark configuration.

Set ``REPRO_BENCH_DEEP=1`` to run the full parameter ranges (the
Figure-6 curve up to T=6 takes ~a minute per point at the top end);
the default ranges keep the whole suite to a few minutes.

Pass ``--deadline SECONDS`` to give every benchmarked solve a
wall-clock budget: points that exhaust it are skipped with a resource
report instead of running unboundedly — useful on slow machines and in
CI.

Every ``bench_<name>.py`` module also writes a machine-readable
``BENCH_<name>.json`` at session end (into ``$REPRO_BENCH_OUT`` or the
current directory) with a stable schema::

    {"schema_version": 1, "bench": "<name>",
     "results": [{"name": ..., "value": ..., "unit": ..., "labels": {...}}]}

Tests record points through the ``bench_json`` fixture:
``bench_json("verify_seconds", 1.23, "s", horizon=4)``.
"""

import json
import os

import pytest

DEEP = os.environ.get("REPRO_BENCH_DEEP", "0") == "1"

#: bench name -> recorded result rows, written out at session finish.
_BENCH_JSON: dict = {}

#: The one stable schema every BENCH_<name>.json carries.
BENCH_SCHEMA_VERSION = 1


def _bench_name(module_name: str) -> str:
    prefix = "bench_"
    if module_name.startswith(prefix):
        return module_name[len(prefix):]
    return module_name


@pytest.fixture
def bench_json(request):
    """Record one ``{name, value, unit, labels}`` row for this module's
    ``BENCH_<name>.json``."""
    rows = _BENCH_JSON.setdefault(_bench_name(request.module.__name__), [])

    def record(name, value, unit="", **labels):
        row = {"name": name, "value": value, "unit": unit}
        if labels:
            row["labels"] = {k: v for k, v in sorted(labels.items())}
        rows.append(row)

    return record


def pytest_collection_modifyitems(session, config, items):
    # Seed an entry per collected bench module so every bench_*.py
    # produces a BENCH_<name>.json even when all its points skip.
    for item in items:
        module = getattr(item, "module", None)
        if module is not None and module.__name__.startswith("bench_"):
            _BENCH_JSON.setdefault(_bench_name(module.__name__), [])


def pytest_sessionfinish(session, exitstatus):
    out_dir = os.environ.get("REPRO_BENCH_OUT", ".")
    for name, rows in _BENCH_JSON.items():
        doc = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "bench": name,
            "results": rows,
        }
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")


def pytest_addoption(parser):
    parser.addoption(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per benchmarked solve; exhausted points"
             " are skipped with a resource report instead of hanging",
    )


@pytest.fixture
def bench_budget(request):
    """Factory for per-solve budgets honoring ``--deadline`` (or None)."""
    seconds = request.config.getoption("--deadline")
    if seconds is None:
        return lambda: None
    from repro.runtime import Budget

    return lambda: Budget(deadline_seconds=seconds)


def skip_if_exhausted(report):
    """Skip the current bench point when a governed run came back partial.

    Accepts any result carrying ``complete`` and ``resource_report``.
    """
    if getattr(report, "complete", True):
        return
    inner = getattr(report, "resource_report", None)
    detail = inner.describe() if inner else "resource budget exhausted"
    pytest.skip(f"--deadline exhausted: {detail}")


def fig6_horizons():
    return range(1, 7) if DEEP else range(1, 5)


@pytest.fixture(scope="session")
def results_table():
    """A session-wide dict benches use to accumulate printable rows."""
    table: dict = {}
    yield table
    if table:
        print("\n\n===== reproduction summary (paper vs measured) =====")
        for section, rows in table.items():
            print(f"\n--- {section} ---")
            for row in rows:
                print("  " + row)
