"""Shared benchmark configuration.

Set ``REPRO_BENCH_DEEP=1`` to run the full parameter ranges (the
Figure-6 curve up to T=6 takes ~a minute per point at the top end);
the default ranges keep the whole suite to a few minutes.
"""

import os

import pytest

DEEP = os.environ.get("REPRO_BENCH_DEEP", "0") == "1"


def fig6_horizons():
    return range(1, 7) if DEEP else range(1, 5)


@pytest.fixture(scope="session")
def results_table():
    """A session-wide dict benches use to accumulate printable rows."""
    table: dict = {}
    yield table
    if table:
        print("\n\n===== reproduction summary (paper vs measured) =====")
        for section, rows in table.items():
            print(f"\n--- {section} ---")
            for row in rows:
                print("  " + row)
