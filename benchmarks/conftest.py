"""Shared benchmark configuration.

Set ``REPRO_BENCH_DEEP=1`` to run the full parameter ranges (the
Figure-6 curve up to T=6 takes ~a minute per point at the top end);
the default ranges keep the whole suite to a few minutes.

Pass ``--deadline SECONDS`` to give every benchmarked solve a
wall-clock budget: points that exhaust it are skipped with a resource
report instead of running unboundedly — useful on slow machines and in
CI.
"""

import os

import pytest

DEEP = os.environ.get("REPRO_BENCH_DEEP", "0") == "1"


def pytest_addoption(parser):
    parser.addoption(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per benchmarked solve; exhausted points"
             " are skipped with a resource report instead of hanging",
    )


@pytest.fixture
def bench_budget(request):
    """Factory for per-solve budgets honoring ``--deadline`` (or None)."""
    seconds = request.config.getoption("--deadline")
    if seconds is None:
        return lambda: None
    from repro.runtime import Budget

    return lambda: Budget(deadline_seconds=seconds)


def skip_if_exhausted(report):
    """Skip the current bench point when a governed run came back partial.

    Accepts any result carrying ``complete`` and ``resource_report``.
    """
    if getattr(report, "complete", True):
        return
    inner = getattr(report, "resource_report", None)
    detail = inner.describe() if inner else "resource budget exhausted"
    pytest.skip(f"--deadline exhausted: {detail}")


def fig6_horizons():
    return range(1, 7) if DEEP else range(1, 5)


@pytest.fixture(scope="session")
def results_table():
    """A session-wide dict benches use to accumulate printable rows."""
    table: dict = {}
    yield table
    if table:
        print("\n\n===== reproduction summary (paper vs measured) =====")
        for section, rows in table.items():
            print(f"\n--- {section} ---")
            for row in rows:
                print("  " + row)
