"""Load benchmark for ``repro serve`` — latency, hit rate, shed rate.

Boots a real in-process server (real HTTP, real solves) and drives it
through two phases:

* a **warm** phase: each unique program solved once, sequentially —
  the cold-solve latency floor and the journal/cache warm-up;
* a **burst** phase: a thread per request, several times the admission
  limit at once, mixing repeats (journal replays, served from the warm
  ``ResultCache``/journal without a solve) with fresh programs.

The burst is where the overload machinery earns its keep: requests
past the bounded queue shed with ``429`` + ``Retry-After`` instead of
queueing, and every connection still gets a terminal answer.  Recorded
into ``BENCH_serve_load.json``:

* ``latency_p50_seconds`` / ``latency_p99_seconds`` per phase,
* ``replay_hit_rate`` — fraction of burst answers served by replay,
* ``shed_rate`` — fraction of burst requests rejected by admission.

Runs under the chaos hooks too (CI's serve-smoke chaos leg sets
``REPRO_CHAOS_IO_ERROR`` / ``REPRO_CHAOS_REQUEST_KILL``): faults turn
into fast UNKNOWN answers, never errors, so the assertions below hold
either way.
"""

import threading
import time

from repro.client import ServiceClient
from repro.runtime.chaos import chaos_from_env
from repro.serve import AnalysisService, ReproServer, ServeConfig

SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""

QUEUE_LIMIT = 4
WARM_UNIQUE = 6          # distinct programs solved in the warm phase
BURST_REPLAYS = 18       # burst requests replaying warm programs
BURST_FRESH = 6          # burst requests needing a real solve
STEPS = 2


def _program(i: int) -> str:
    # Job ids hash the source text: a comment suffices for uniqueness.
    return SRC + f"// workload {i}\n"


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def test_serve_load(benchmark, bench_json, results_table, tmp_path):
    cfg = ServeConfig(
        port=0, spool_dir=tmp_path / "spool",
        queue_limit=QUEUE_LIMIT, workers=2,
        deadline_seconds=30.0, degraded_deadline=0.25,
    )
    service = AnalysisService(cfg)
    server = ReproServer(service)

    lock = threading.Lock()
    warm_latencies: list = []
    burst_latencies: list = []
    burst_statuses: list = []

    def one_burst_request(i: int) -> None:
        client = ServiceClient(port=server.port, timeout=60.0)
        if i < BURST_REPLAYS:
            src = _program(i % WARM_UNIQUE)        # replayed
        else:
            src = _program(WARM_UNIQUE + i)        # fresh solve
        started = time.perf_counter()
        try:
            doc = client.analyze(src, steps=STEPS, retry=False)
            status = doc["status"]
        except Exception as exc:  # noqa: BLE001 - a drop fails the bench
            status = f"error: {exc!r}"
        elapsed = time.perf_counter() - started
        with lock:
            burst_latencies.append(elapsed)
            burst_statuses.append(status)

    def run() -> None:
        server.start_background()
        warm = ServiceClient(port=server.port, timeout=60.0)
        for i in range(WARM_UNIQUE):
            started = time.perf_counter()
            doc = warm.analyze(_program(i), steps=STEPS)
            warm_latencies.append(time.perf_counter() - started)
            assert doc["status"] == 200, doc
        threads = [
            threading.Thread(target=one_burst_request, args=(i,))
            for i in range(BURST_REPLAYS + BURST_FRESH)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)

    try:
        with chaos_from_env():
            benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        server.stop_background()

    total = BURST_REPLAYS + BURST_FRESH
    assert len(burst_statuses) == total
    # Terminal answers only — overload rejects are fine, drops are not.
    assert all(s in (200, 400, 429) for s in burst_statuses), burst_statuses
    replayed = service.counters["replayed"]
    rejected = [s for s in burst_statuses if s == 429]
    hit_rate = replayed / total
    shed_rate = len(rejected) / total
    assert service.admission.max_queued <= QUEUE_LIMIT

    bench_json("latency_p50_seconds", _percentile(warm_latencies, 0.50),
               "s", phase="warm")
    bench_json("latency_p99_seconds", _percentile(warm_latencies, 0.99),
               "s", phase="warm")
    bench_json("latency_p50_seconds", _percentile(burst_latencies, 0.50),
               "s", phase="burst")
    bench_json("latency_p99_seconds", _percentile(burst_latencies, 0.99),
               "s", phase="burst")
    bench_json("replay_hit_rate", hit_rate, "fraction",
               replays=BURST_REPLAYS, total=total)
    bench_json("shed_rate", shed_rate, "fraction",
               queue_limit=QUEUE_LIMIT, total=total)
    bench_json("max_queued", service.admission.max_queued, "requests",
               queue_limit=QUEUE_LIMIT)

    results_table["Serve — burst load (4x admission limit)"] = [
        f"warm  p50/p99: {_percentile(warm_latencies, 0.5):6.3f}s"
        f" / {_percentile(warm_latencies, 0.99):6.3f}s",
        f"burst p50/p99: {_percentile(burst_latencies, 0.5):6.3f}s"
        f" / {_percentile(burst_latencies, 0.99):6.3f}s",
        f"replay hit rate: {hit_rate:5.1%}   shed rate: {shed_rate:5.1%}",
        f"queue high-water: {service.admission.max_queued}"
        f" (limit {QUEUE_LIMIT})",
    ]
