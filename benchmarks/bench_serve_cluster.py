"""Cluster benchmark for ``repro serve --route`` — failover + handoff.

Boots a real router in front of real in-process replicas (real HTTP,
real solves) and measures the two robustness paths the cluster adds:

* **failover**: a warm phase through the healthy ring, then one replica
  is killed mid-burst — every request must still get a terminal answer,
  and the extra latency of walking to the next ring node is the cost
  being measured;
* **journal handoff**: a dead replica's spool (journaled backlog, stale
  lease heartbeat) is taken over and finished — verdicts already on the
  survivor are adopted, the rest resolved — and the wall time of that
  recovery is the headline number.

Recorded into ``BENCH_serve_cluster.json``:

* ``latency_p50_seconds`` / ``latency_p99_seconds`` per phase
  (``warm`` via the full ring, ``degraded`` with one replica dead),
* ``failover_rate`` — fraction of degraded-phase answers that needed a
  ring walk,
* ``handoff_seconds`` — lease takeover + adoption + resume for a
  seeded backlog, with ``jobs_adopted`` / ``jobs_resolved`` splits,
* ``cluster_seconds`` — the regression-gate rows: one row per
  ``variant`` (``warm_p99`` anchors machine speed, ``degraded_p99``
  and ``handoff`` are gated), consumed by
  ``scripts/check_bench_regression.py`` against the committed
  ``BENCH_serve_cluster.baseline.json``.
"""

import threading
import time

from repro.client import ServiceClient
from repro.obs import TRACER, make_traceparent
from repro.persist.batch import BatchRunner
from repro.runtime.chaos import chaos_from_env
from repro.serve import (
    AnalysisService,
    ClusterService,
    Replica,
    ReproServer,
    RouterConfig,
    ServeConfig,
)

SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""

REPLICAS = 2
WARM = 8                 # distinct programs through the healthy ring
DEGRADED = 12            # burst requests with one replica dead
HANDOFF_JOBS = 4         # backlog size for the handoff measurement
STEPS = 2


def _program(i: int) -> str:
    return SRC + f"// cluster workload {i}\n"


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def _start_replica(tmp_path, name):
    cfg = ServeConfig(
        port=0, spool_dir=tmp_path / name, workers=2, queue_limit=16,
        deadline_seconds=30.0, lease_ttl=0.5,
    )
    service = AnalysisService(cfg)
    server = ReproServer(service)
    server.start_background()
    replica = Replica(
        name=f"127.0.0.1:{server.port}", host="127.0.0.1",
        port=server.port, spool=tmp_path / name)
    return service, server, replica


def test_cluster_failover(benchmark, bench_json, results_table, tmp_path):
    backends = [_start_replica(tmp_path, f"r{i}") for i in range(REPLICAS)]
    router = ClusterService(
        RouterConfig(port=0, name="bench-router", probe_interval=60.0,
                     readmit_seconds=60.0, route_deadline=60.0,
                     forward_timeout=30.0, handoff=False),
        [rep for _, _, rep in backends],
    )
    router_server = ReproServer(router)

    lock = threading.Lock()
    warm_latencies: list = []
    degraded_latencies: list = []
    statuses: list = []

    def one_degraded_request(i: int) -> None:
        client = ServiceClient(port=router_server.port, timeout=60.0)
        started = time.perf_counter()
        try:
            doc = client.analyze(_program(WARM + i), steps=STEPS,
                                 retry=False)
            status = doc["status"]
        except Exception as exc:  # noqa: BLE001 - a drop fails the bench
            status = f"error: {exc!r}"
        elapsed = time.perf_counter() - started
        with lock:
            degraded_latencies.append(elapsed)
            statuses.append(status)

    def run() -> None:
        router_server.start_background()
        warm = ServiceClient(port=router_server.port, timeout=60.0)
        for i in range(WARM):
            started = time.perf_counter()
            doc = warm.analyze(_program(i), steps=STEPS)
            warm_latencies.append(time.perf_counter() - started)
            assert doc["status"] == 200, doc
        # Kill one replica's listener, then burst: the ring walks to
        # the survivor.
        backends[0][1].stop_background(drain=False)
        threads = [
            threading.Thread(target=one_degraded_request, args=(i,))
            for i in range(DEGRADED)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)

    try:
        with chaos_from_env():
            benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        router_server.stop_background(drain=False)
        router.close()
        backends[0][0].close()
        backends[1][1].stop_background()

    assert len(statuses) == DEGRADED
    # Terminal answers only — overload rejects are fine, drops are not.
    assert all(s in (200, 429, 503) for s in statuses), statuses
    answered = [s for s in statuses if s == 200]
    failovers = router.counters["failovers"]
    failover_rate = min(1.0, failovers / max(1, len(answered)))

    warm_p99 = _percentile(warm_latencies, 0.99)
    degraded_p99 = _percentile(degraded_latencies, 0.99)
    bench_json("latency_p50_seconds", _percentile(warm_latencies, 0.50),
               "s", phase="warm", variant="warm", replicas=REPLICAS)
    bench_json("latency_p99_seconds", warm_p99,
               "s", phase="warm", variant="warm", replicas=REPLICAS)
    bench_json("latency_p50_seconds",
               _percentile(degraded_latencies, 0.50), "s",
               phase="degraded", variant="degraded", replicas=REPLICAS)
    bench_json("latency_p99_seconds", degraded_p99, "s",
               phase="degraded", variant="degraded", replicas=REPLICAS)
    bench_json("failover_rate", failover_rate, "fraction",
               requests=DEGRADED)
    bench_json("answered_rate", len(answered) / DEGRADED, "fraction",
               requests=DEGRADED)
    # Regression-gate rows: every gated quantity under ONE metric name
    # so check_bench_regression.py can calibrate machine speed on the
    # warm path and gate the robustness paths against it.
    bench_json("cluster_seconds", warm_p99, "s", variant="warm_p99")
    bench_json("cluster_seconds", degraded_p99, "s",
               variant="degraded_p99")

    results_table["Serve cluster — one replica killed mid-burst"] = [
        f"warm     p50/p99: {_percentile(warm_latencies, 0.5):6.3f}s"
        f" / {_percentile(warm_latencies, 0.99):6.3f}s",
        f"degraded p50/p99: {_percentile(degraded_latencies, 0.5):6.3f}s"
        f" / {_percentile(degraded_latencies, 0.99):6.3f}s",
        f"failovers: {failovers}   answered: {len(answered)}/{DEGRADED}",
    ]


def test_journal_handoff(benchmark, bench_json, results_table, tmp_path):
    """Wall time to finish a dead replica's backlog: lease takeover,
    peer adoption, local resume."""
    # A spool as a crashed replica leaves it: jobs journaled, lease
    # heartbeat stopped (tiny TTL → immediately stale).
    spool = tmp_path / "dead"
    with TRACER.activate(make_traceparent()):
        with BatchRunner(spool, owner="dead-replica",
                         lease_ttl=0.05) as runner:
            runner.lease.acquire("dead-replica")
            for i in range(HANDOFF_JOBS):
                runner.submit_one(_program(100 + i), steps=STEPS)

    survivor_service, survivor_server, survivor = \
        _start_replica(tmp_path, "survivor")
    dead = Replica(name="127.0.0.1:1", host="127.0.0.1", port=1,
                   spool=spool)
    router = ClusterService(
        RouterConfig(port=0, name="bench-router", probe_interval=60.0,
                     readmit_seconds=60.0, forward_timeout=30.0),
        [dead, survivor],
    )
    # One backlog job already failed over and was solved on the
    # survivor: the handoff must adopt it, not re-solve it.
    doc = ServiceClient(port=survivor_server.port, timeout=60.0).analyze(
        _program(100), steps=STEPS)
    assert doc["status"] == 200, doc
    time.sleep(0.1)  # the dead lease's TTL lapses

    result = {}

    def run() -> None:
        started = time.perf_counter()
        outcome = router.handoff(dead)
        result["seconds"] = time.perf_counter() - started
        result["outcome"] = outcome

    try:
        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        router.close()
        survivor_server.stop_background()

    outcome = result["outcome"]
    assert outcome is not None, "handoff was refused"
    assert outcome["adopted"] == 1
    assert outcome["resolved"] == HANDOFF_JOBS - 1
    table = BatchRunner(spool).status().to_json()
    assert set(table["counts"]) == {"done"}, table["counts"]

    bench_json("handoff_seconds", result["seconds"], "s",
               variant="handoff", jobs=HANDOFF_JOBS)
    bench_json("handoff_jobs_adopted", outcome["adopted"], "jobs",
               jobs=HANDOFF_JOBS)
    bench_json("handoff_jobs_resolved", outcome["resolved"], "jobs",
               jobs=HANDOFF_JOBS)
    bench_json("cluster_seconds", result["seconds"], "s",
               variant="handoff", jobs=HANDOFF_JOBS)

    results_table["Serve cluster — journal handoff"] = [
        f"backlog of {HANDOFF_JOBS} finished in"
        f" {result['seconds']:6.3f}s"
        f" (adopted {outcome['adopted']},"
        f" resolved {outcome['resolved']})",
    ]
