"""Ablation A2 — SAT engine features on Buffy-compiled formulas.

The SMT substrate (our Z3 stand-in) is itself a system under test:
this ablation measures how the CDCL features — inprocessing (bounded
variable elimination, subsumption, vivification), VSIDS decisions,
Luby restarts, phase saving, clause minimization — behave on the
formulas the Buffy pipeline actually generates (the Figure-6 instance
at a fixed horizon).

Every variant is expressed through the *public* solver-tuning surface
(``CDCLConfig.from_options``, the same path as ``--solver-opt
key=value`` and ``analyze(solver_config=...)``) — the ablation suite
no longer constructs solver internals directly.

CI gates on this module: ``scripts/check_bench_regression.py``
compares the emitted ``BENCH_ablation_sat.json`` against the committed
``BENCH_ablation_sat.baseline.json`` (machine speed is calibrated by
the ``full`` variant) and fails on a >20% regression.
"""

import pytest

from repro.backends.dafny import DafnyBackend
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy
from repro.smt.sat.cdcl import CDCLConfig
from repro.smt.terms import mk_le

HORIZON = 3
CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)

# Variants as {option: value} mappings — the same strings a user would
# pass with repeated ``--solver-opt`` flags.
VARIANTS = {
    "full": {},
    "no-inprocess": {"use_inprocessing": "off"},
    "no-elim": {"use_elim": "off"},
    "no-subsume": {"use_subsume": "off"},
    "no-vivify": {"use_vivify": "off"},
    "no-vsids": {"use_vsids": "off"},
    "no-restarts": {"use_restarts": "off"},
    "no-phase-saving": {"use_phase_saving": "off"},
    "no-minimization": {"use_minimization": "off"},
}

_rows: list[str] = []


def total_work_query(view):
    deq = view.deq_p("ibs[0]") + view.deq_p("ibs[1]")
    enq = view.enq_p("ibs[0]") + view.enq_p("ibs[1]")
    return mk_le(deq, enq)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_sat_feature_ablation(benchmark, variant, bench_json):
    dafny = DafnyBackend(
        fq_buggy(2), config=CONFIG,
        sat_config=CDCLConfig.from_options(VARIANTS[variant]),
    )
    report = benchmark.pedantic(
        lambda: dafny.verify_monolithic(
            HORIZON, queries=[("total_work", total_work_query)]
        ),
        rounds=1, iterations=1,
    )
    # Every configuration must remain sound.
    assert report.ok
    bench_json("verify_seconds", report.elapsed_seconds, "s",
               variant=variant, horizon=HORIZON)
    bench_json("cnf_clauses", report.vcs[0].cnf_clauses, "clauses",
               variant=variant)
    _rows.append(
        f"{variant:16s}: {report.elapsed_seconds:7.2f}s"
        f" ({report.vcs[0].cnf_clauses} clauses)"
    )


def test_sat_ablation_summary(benchmark, results_table):
    benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    results_table["Ablation A2 — SAT features (Fig-6 instance, T=3)"] = (
        list(_rows)
        + ["all variants agree on verdicts; timings show feature value"]
    )
