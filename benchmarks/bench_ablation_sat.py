"""Ablation A2 — SAT engine features on Buffy-compiled formulas.

The SMT substrate (our Z3 stand-in) is itself a system under test:
this ablation measures how the CDCL features — VSIDS decisions,
Luby restarts, phase saving, clause minimization — and the plain DPLL
baseline behave on the formulas the Buffy pipeline actually generates
(the Figure-6 instance at a fixed horizon).
"""

import pytest

from repro.backends.dafny import DafnyBackend
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy
from repro.smt.sat.cdcl import CDCLConfig
from repro.smt.terms import mk_le

HORIZON = 3
CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)

VARIANTS = {
    "full": CDCLConfig(),
    "no-vsids": CDCLConfig(use_vsids=False),
    "no-restarts": CDCLConfig(use_restarts=False),
    "no-phase-saving": CDCLConfig(use_phase_saving=False),
    "no-minimization": CDCLConfig(use_minimization=False),
}

_rows: list[str] = []


def total_work_query(view):
    deq = view.deq_p("ibs[0]") + view.deq_p("ibs[1]")
    enq = view.enq_p("ibs[0]") + view.enq_p("ibs[1]")
    return mk_le(deq, enq)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_sat_feature_ablation(benchmark, variant, bench_json):
    dafny = DafnyBackend(
        fq_buggy(2), config=CONFIG, sat_config=VARIANTS[variant]
    )
    report = benchmark.pedantic(
        lambda: dafny.verify_monolithic(
            HORIZON, queries=[("total_work", total_work_query)]
        ),
        rounds=1, iterations=1,
    )
    # Every configuration must remain sound.
    assert report.ok
    bench_json("verify_seconds", report.elapsed_seconds, "s",
               variant=variant, horizon=HORIZON)
    bench_json("cnf_clauses", report.vcs[0].cnf_clauses, "clauses",
               variant=variant)
    _rows.append(
        f"{variant:16s}: {report.elapsed_seconds:7.2f}s"
        f" ({report.vcs[0].cnf_clauses} clauses)"
    )


def test_sat_ablation_summary(benchmark, results_table):
    benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    results_table["Ablation A2 — SAT features (Fig-6 instance, T=3)"] = (
        list(_rows)
        + ["all variants agree on verdicts; timings show feature value"]
    )
