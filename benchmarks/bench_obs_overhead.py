"""Observability overhead: what tracing + the progress beacon cost.

Three numbers, written to ``BENCH_obs_overhead.json``:

* ``solve_seconds`` with telemetry fully off — the baseline;
* ``solve_seconds`` with spans + metrics + a beacon sink enabled —
  the worst case an operator can switch on;
* ``overhead_pct`` — enabled vs disabled, on the same deterministic
  UNSAT pigeonhole instance (same search, same conflict count).

The hard *disabled*-overhead guarantee (<2% guard) lives in
``tests/test_obs.py``; this bench tracks the *enabled* cost so a
regression that makes live introspection unaffordable is visible in
CI artifacts before anyone notices in production.
"""

import time

from repro import obs
from repro.obs import BEACON, progress_scope
from repro.smt.sat.cdcl import CDCLSolver, SatResult


def _pigeonhole(holes):
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


def _solve(num_vars, clauses):
    t0 = time.perf_counter()
    solver = CDCLSolver(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    assert solver.solve() is SatResult.UNSAT
    return time.perf_counter() - t0, solver.stats.conflicts


def test_beacon_and_tracing_overhead(bench_json):
    num_vars, clauses = _pigeonhole(7)

    obs.reset()
    obs.disable()
    BEACON.disable()
    _solve(num_vars, clauses)  # warm-up: caches, allocator, JIT-ish paths
    disabled, conflicts = _solve(num_vars, clauses)

    obs.enable()
    samples = []
    try:
        with BEACON.routed(samples.append), progress_scope("bench-job"):
            enabled, _ = _solve(num_vars, clauses)
    finally:
        obs.reset()
        obs.disable()
        BEACON.disable()

    overhead_pct = 100.0 * (enabled - disabled) / max(disabled, 1e-9)
    bench_json("solve_seconds", round(disabled, 6), "s",
               telemetry="disabled", conflicts=conflicts)
    bench_json("solve_seconds", round(enabled, 6), "s",
               telemetry="enabled", conflicts=conflicts,
               beacon_samples=len(samples))
    bench_json("overhead_pct", round(overhead_pct, 2), "%")
    print(f"\nobs overhead: disabled {disabled * 1e3:.1f}ms,"
          f" enabled {enabled * 1e3:.1f}ms ({overhead_pct:+.1f}%,"
          f" {len(samples)} beacon samples, {conflicts} conflicts)")
