"""Table 1 — lines-of-code comparison: FPerf-style vs Buffy.

Paper (Table 1):

    Program          FPerf (LoC)   Buffy (LoC)
    Fair-Queue           197            18
    Round-Robin           60            10
    Strict-Priority       33             7

We regenerate the table from this repo's artifacts: the hand-written
FPerf-style encodings in ``repro/baselines`` and the Buffy programs in
``repro/netmodels/schedulers.py``.  Absolute FPerf numbers differ
(Python is terser than the original C++), but the paper's claims hold:
every scheduler is several times smaller in Buffy, the ordering of
efforts matches (FQ > RR > SP), and the Buffy line counts match the
paper almost exactly.
"""

from repro.analysis.loc import scheduler_agnostic_loc, table1_rows

PAPER = {
    "Fair-Queue": (197, 18),
    "Round-Robin": (60, 10),
    "Strict-Priority": (33, 7),
}


def test_table1_loc(benchmark, results_table, bench_json):
    rows = benchmark(table1_rows)
    for row in rows:
        bench_json("buffy_loc", row.buffy_loc, "lines", program=row.program)
        bench_json("fperf_loc", row.fperf_loc, "lines", program=row.program)
        bench_json("loc_ratio", row.ratio, "x", program=row.program)
    lines = [f"{'Program':16s} {'paper F/B':>12s} {'ours F/B':>12s} {'ratio':>6s}"]
    for row in rows:
        paper_f, paper_b = PAPER[row.program]
        lines.append(
            f"{row.program:16s} {paper_f:5d}/{paper_b:<5d}"
            f" {row.fperf_loc:5d}/{row.buffy_loc:<5d} {row.ratio:5.1f}x"
        )
    lines.append(
        f"{'(shared agnostic layer)':16s} {'~100s':>12s}"
        f" {scheduler_agnostic_loc():>9d}"
    )
    results_table["Table 1 — modeling effort (LoC)"] = lines

    # Shape assertions: who is smaller, by how much, and the ordering.
    by_name = {r.program: r for r in rows}
    for name, (paper_f, paper_b) in PAPER.items():
        row = by_name[name]
        assert row.buffy_loc < row.fperf_loc
        assert row.ratio >= 3.0
        assert abs(row.buffy_loc - paper_b) <= 2
    assert (by_name["Fair-Queue"].fperf_loc
            > by_name["Round-Robin"].fperf_loc
            > by_name["Strict-Priority"].fperf_loc)
