"""A library of canonical performance queries (§3, assumptions & queries).

Queries are plain SMT terms over a back end's monitor/statistic
snapshots, so they compose with ``&``/``|``.  This module packages the
recurring ones:

* :func:`fair_share` — the paper's FQ query, ``cdeq[T-1] >= T/2``;
* :func:`starvation` — continuous backlog with (almost) no service;
* :func:`loss` — any drop at a buffer (CCAC's "occurrence of loss");
* :func:`work_conservation` — something is served whenever backlogged;
* :func:`ordering_fifo` — an order-sensitive query used by the
  buffer-model precision ablation (A1).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..backends.smt_backend import SmtBackend
from ..smt.terms import Term, mk_and, mk_eq, mk_int, mk_le, mk_lt, mk_or


def fair_share(backend: SmtBackend, label: str,
               share: Optional[int] = None) -> Term:
    """The §6.1 query: buffer ``label`` dequeues at least its fair share.

    The paper uses ``assert(cdeq[T-1] >= T/2)`` with T the horizon;
    ``share`` overrides the default ``T // 2``.
    """
    want = backend.horizon // 2 if share is None else share
    return mk_le(mk_int(want), backend.deq_count(label))


def starvation(
    backend: SmtBackend,
    victim: str,
    max_service: int = 1,
    from_step: int = 0,
    competitors_min_service: Optional[dict[str, int]] = None,
) -> Term:
    """Victim continuously backlogged yet served at most ``max_service``.

    Optionally require competitors to receive minimum service — useful
    to rule out trivial "the link was idle" traces.
    """
    conjuncts: list[Term] = [
        mk_le(mk_int(1), backend.backlog(victim, t))
        for t in range(from_step, backend.horizon)
    ]
    conjuncts.append(mk_le(backend.deq_count(victim), mk_int(max_service)))
    for label, minimum in (competitors_min_service or {}).items():
        conjuncts.append(mk_le(mk_int(minimum), backend.deq_count(label)))
    return mk_and(*conjuncts)


def loss(backend: SmtBackend, label: str, at_least: int = 1) -> Term:
    """At least ``at_least`` packets dropped at ``label`` by the horizon."""
    return mk_le(mk_int(at_least), backend.drop_count(label))


def no_loss(backend: SmtBackend, labels: Sequence[str]) -> Term:
    return mk_and(
        *[mk_eq(backend.drop_count(label), mk_int(0)) for label in labels]
    )


def work_conservation(backend: SmtBackend, inputs: Sequence[str],
                      output: str) -> Term:
    """Whenever some input is backlogged at a step's end, the output link
    made progress that step (its cumulative enqueue count grew)."""
    conjuncts: list[Term] = []
    for t in range(backend.horizon):
        backlogged = mk_or(
            *[mk_le(mk_int(1), backend.backlog(label, t)) for label in inputs]
        )
        prev = backend.enq_count(output, t - 1) if t > 0 else mk_int(0)
        progressed = mk_lt(prev, backend.enq_count(output, t))
        conjuncts.append(backlogged.implies(progressed))
    return mk_and(*conjuncts)


def served_exactly(backend: SmtBackend, label: str, count: int) -> Term:
    return mk_eq(backend.deq_count(label), mk_int(count))


def total_service(backend: SmtBackend, labels: Sequence[str]) -> Term:
    total = mk_int(0)
    for label in labels:
        total = total + backend.deq_count(label)
    return total


def ordering_fifo(backend: SmtBackend, output: str, first_flow: int,
                  second_flow: int, step: int = -1) -> Term:
    """Order-sensitive query: at ``step``, the head-of-line packet in
    ``output`` belongs to ``first_flow`` and a ``second_flow`` packet is
    also present behind it.

    Only the list-precision buffer model can express this (the counter
    model abstracts intra-buffer order away) — the A1 ablation relies
    on that contrast.
    """
    machine = backend.machine
    buf = machine._buffer_by_label(output)
    if not hasattr(buf, "flows"):
        raise ValueError(
            "ordering queries need the list-precision buffer model"
        )
    head_is_first = mk_and(
        mk_le(mk_int(1), buf.length), mk_eq(buf.flows[0], mk_int(first_flow))
    )
    second_present = mk_or(
        *[
            mk_and(
                mk_lt(mk_int(i), buf.length),
                mk_eq(buf.flows[i], mk_int(second_flow)),
            )
            for i in range(1, buf.capacity)
        ]
    )
    return mk_and(head_is_first, second_present)
