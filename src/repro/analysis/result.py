"""One result vocabulary for every back end: :class:`AnalysisOutcome`.

The six back ends keep their rich, back-end-specific result types
(``DafnyReport`` knows VCs, ``MCResult`` knows induction bounds, ...),
but each converts to this one frozen dataclass via ``.outcome()`` so
callers — the CLI, the :func:`repro.analyze` facade, scripts — can
branch on a single four-way :class:`Verdict` instead of five status
enums, and derive process exit codes in exactly one place
(:attr:`Verdict.exit_code`).

Verdict semantics:

* ``PROVED`` — the property holds (or the requested object was found:
  a synthesized workload/invariant counts as the analysis succeeding);
* ``VIOLATED`` — a counterexample exists / the property is refuted /
  the requested object provably does not exist;
* ``UNDECIDED`` — no answer, and not for lack of resources (an
  injected fault, a disabled feature);
* ``EXHAUSTED`` — no answer because a resource budget ran out
  (deadline, conflict/memory/solver-call caps, cancellation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..runtime.budget import ExhaustionReason, ResourceReport

#: Exhaustion reasons that mean "a resource ran out" (exit code 3), as
#: opposed to injected/infrastructural unknowns (exit code 2).
BUDGET_REASONS = frozenset({
    ExhaustionReason.DEADLINE,
    ExhaustionReason.CONFLICTS,
    ExhaustionReason.MEMORY,
    ExhaustionReason.SOLVER_CALLS,
    ExhaustionReason.CANCELLED,
})


class Verdict(enum.Enum):
    """The four-way answer of any analysis."""

    PROVED = "proved"
    VIOLATED = "violated"
    UNDECIDED = "undecided"
    EXHAUSTED = "exhausted"

    @property
    def exit_code(self) -> int:
        """Process exit code — the CLI contract, defined exactly once."""
        return _EXIT_CODES[self]

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "Verdict is not a boolean; compare against Verdict.PROVED"
        )


_EXIT_CODES = {
    Verdict.PROVED: 0,
    Verdict.VIOLATED: 1,
    Verdict.UNDECIDED: 2,
    Verdict.EXHAUSTED: 3,
}

#: Exit code for usage/input errors (no Verdict exists for these).
EXIT_ERROR = 4

#: Exit code for "an answer was produced but failed certification": a
#: certified run (``analyze(certify=True)`` / ``--certify``) refused an
#: UNSAT/VERIFIED claim because its DRAT certificate did not check.
EXIT_CERTIFICATION = 5

#: Exit code for "a durable batch finished with deadlettered jobs": a
#: ``repro batch run``/``resume`` exhausted a job's retry budget (or hit
#: a permanent error) and parked it in the deadletter state for operator
#: attention.  Dominates every per-job exit code in the batch summary.
EXIT_DEADLETTER = 6


def verdict_for_unknown(report: Optional[ResourceReport]) -> Verdict:
    """Classify an UNKNOWN answer by its resource report."""
    if report is not None and report.reason in BUDGET_REASONS:
        return Verdict.EXHAUSTED
    return Verdict.UNDECIDED


@dataclass(frozen=True)
class AnalysisOutcome:
    """The uniform result of any analysis.

    ``witness`` is the verdict's evidence, when one exists: a
    counterexample trace for VIOLATED verification, a synthesized
    workload or invariant for PROVED synthesis, etc.  ``stats`` carries
    back-end-specific numbers (solver calls, bounds reached, VC counts)
    without widening the type.
    """

    verdict: Verdict
    witness: Any = None
    report: Optional[ResourceReport] = None
    stats: Mapping[str, Any] = field(default_factory=dict)
    # A repro.obs.TelemetrySnapshot when the analysis ran with telemetry
    # enabled (repro.analyze(telemetry=True) or the CLI's --trace /
    # --metrics); None otherwise.  Typed as Any to keep this module
    # import-light.
    telemetry: Any = None

    @property
    def ok(self) -> bool:
        return self.verdict is Verdict.PROVED

    @property
    def exit_code(self) -> int:
        if (
            self.report is not None
            and self.report.reason is ExhaustionReason.CERTIFICATION_FAILED
        ):
            return EXIT_CERTIFICATION
        return self.verdict.exit_code

    def describe(self) -> str:
        """One-paragraph human rendering (verdict + spend)."""
        lines = [f"verdict: {self.verdict.value}"]
        for key, value in self.stats.items():
            lines.append(f"  {key}: {value}")
        if self.report is not None:
            lines.append(self.report.describe())
        return "\n".join(lines)
