"""The one-call analysis facade: :func:`repro.analyze`.

Dispatch one analysis across the five back ends behind a single
keyword surface and a single result type::

    import repro
    outcome = repro.analyze(program, query, backend="smt", steps=6,
                            budget=Budget(deadline_seconds=30), jobs=4)
    if outcome.verdict is repro.Verdict.VIOLATED:
        print(outcome.witness.describe())
    sys.exit(outcome.exit_code)

``program`` is a :class:`~repro.lang.checker.CheckedProgram` or raw
Buffy source (parsed and checked with ``consts=...``).  ``query``
depends on the back end:

===========  ==========================================================
backend      query
===========  ==========================================================
``smt``      a Term to find a trace for (``prove=True`` proves it
             instead); ``None`` checks the program's ``assert``\\ s
``fperf``    a Term to synthesize a sufficient workload for
``dafny``    an invariant ``StateView -> Term`` for the modular
             regime; ``None`` verifies monolithically over ``steps``
``mc``       a property ``StateView -> Term``; BMC to depth ``steps``,
             or k-induction with ``prove=True``
``houdini``  ignored (the candidate grammar is the specification)
===========  ==========================================================

Callable ``query`` values for ``smt``/``fperf`` receive the constructed
back end (for its term accessors) and return the query Term.

Engine knobs: ``jobs`` (portfolio/VC parallelism, default
``$REPRO_JOBS``), ``cache`` (result cache, default ``$REPRO_CACHE``),
``incremental`` (shared encodings; each back end picks its own sound
default), ``certify`` (require checker-accepted DRAT certificates for
UNSAT/VERIFIED answers, default ``$REPRO_CERTIFY``), ``chaos`` and
``solver_factory`` (test seams).

Solver tuning: ``solver_config`` accepts either a ready
:class:`~repro.smt.sat.cdcl.CDCLConfig` or a ``{name: value}`` mapping
of its fields (string values as parsed from the CLI's ``--solver-opt
key=value`` are coerced; see ``CDCLConfig.option_names()``)::

    repro.analyze(src, backend="smt", steps=5,
                  solver_config={"use_inprocessing": False,
                                 "restart_base": 200})
"""

from __future__ import annotations

from typing import Any, Optional

from ..runtime.budget import Budget, BudgetExhausted
from .result import AnalysisOutcome, Verdict

_BACKENDS = ("smt", "fperf", "dafny", "mc", "houdini")


def analyze(
    program: Any,
    query: Any = None,
    *,
    backend: str = "smt",
    steps: int = 6,
    budget: Optional[Budget] = None,
    jobs: Optional[int] = None,
    cache: Any = None,
    incremental: Optional[bool] = None,
    chaos: Any = None,
    solver_factory: Any = None,
    escalation: Any = None,
    config: Any = None,
    sat_config: Any = None,
    solver_config: Any = None,
    consts: Optional[dict[str, int]] = None,
    prove: bool = False,
    certify: Optional[bool] = None,
    telemetry: bool = False,
) -> AnalysisOutcome:
    """Run one analysis and return its :class:`AnalysisOutcome`.

    With ``telemetry=True`` the run records spans and metrics through
    :mod:`repro.obs` (including deltas shipped back from parallel
    workers) and attaches the resulting
    :class:`~repro.obs.TelemetrySnapshot` as ``outcome.telemetry``.
    """
    if not telemetry:
        return _analyze(
            program, query, backend=backend, steps=steps, budget=budget,
            jobs=jobs, cache=cache, incremental=incremental, chaos=chaos,
            solver_factory=solver_factory, escalation=escalation,
            config=config, sat_config=sat_config,
            solver_config=solver_config, consts=consts,
            prove=prove, certify=certify,
        )

    import dataclasses

    from .. import obs

    obs.reset()
    obs.enable()
    try:
        with obs.TRACER.span("analyze", backend=backend, steps=steps):
            outcome = _analyze(
                program, query, backend=backend, steps=steps, budget=budget,
                jobs=jobs, cache=cache, incremental=incremental, chaos=chaos,
                solver_factory=solver_factory, escalation=escalation,
                config=config, sat_config=sat_config,
                solver_config=solver_config, consts=consts,
                prove=prove, certify=certify,
            )
    finally:
        obs.disable()
    return dataclasses.replace(outcome, telemetry=obs.capture())


def analyze_many(programs, **kwargs) -> "list[AnalysisOutcome]":
    """Analyze a batch of programs; durably when ``journal_dir`` is given.

    Thin facade over :func:`repro.persist.batch.analyze_many` (see
    there for the crash-recovery contract): with a ``journal_dir``,
    jobs are journaled, executed with retries + backoff, and a killed
    run can be finished by re-invoking with the same directory.
    """
    from ..persist.batch import analyze_many as _analyze_many

    return _analyze_many(programs, **kwargs)


def resolve_solver_config(sat_config: Any, solver_config: Any) -> Any:
    """Normalize the public ``solver_config`` knob onto ``sat_config``.

    ``solver_config`` may be a ready ``CDCLConfig`` (exclusive with
    ``sat_config``) or a ``{name: value}`` option mapping, applied on
    top of ``sat_config`` when one is given.
    """
    if solver_config is None:
        return sat_config
    from ..smt.sat.cdcl import CDCLConfig

    if isinstance(solver_config, CDCLConfig):
        if sat_config is not None:
            raise ValueError(
                "pass either 'sat_config' or a CDCLConfig 'solver_config',"
                " not both"
            )
        return solver_config
    return CDCLConfig.from_options(solver_config, base=sat_config)


def _analyze(
    program: Any,
    query: Any = None,
    *,
    backend: str = "smt",
    steps: int = 6,
    budget: Optional[Budget] = None,
    jobs: Optional[int] = None,
    cache: Any = None,
    incremental: Optional[bool] = None,
    chaos: Any = None,
    solver_factory: Any = None,
    escalation: Any = None,
    config: Any = None,
    sat_config: Any = None,
    solver_config: Any = None,
    consts: Optional[dict[str, int]] = None,
    prove: bool = False,
    certify: Optional[bool] = None,
) -> AnalysisOutcome:
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    if isinstance(program, str):
        from ..lang.checker import check_program
        from ..lang.parser import parse_program

        program = check_program(parse_program(program, consts=consts))

    sat_config = resolve_solver_config(sat_config, solver_config)
    knobs = dict(
        config=config, sat_config=sat_config, budget=budget,
        escalation=escalation, chaos=chaos, solver_factory=solver_factory,
        jobs=jobs, cache=cache, incremental=incremental,
        certify=certify,
    )

    if backend == "smt":
        from ..backends.smt_backend import SmtBackend

        bk = SmtBackend(program, steps, **knobs)
        if query is None:
            return bk.check_assertions().outcome()
        term = query(bk) if callable(query) else query
        result = bk.prove(term) if prove else bk.find_trace(term)
        return result.outcome()

    if backend == "fperf":
        from ..backends.fperf import FPerfBackend

        fp = FPerfBackend(program, steps, **knobs)
        term = query(fp) if callable(query) else query
        if term is None:
            raise ValueError("backend='fperf' requires a query term")
        return fp.synthesize_by_generalization(term).outcome()

    if backend == "dafny":
        from ..backends.dafny import DafnyBackend

        dafny = DafnyBackend(program, **knobs)
        if query is None:
            return dafny.verify_monolithic(steps).outcome()
        return dafny.verify_modular(query).outcome()

    if backend == "mc":
        from ..backends.mc import ModelChecker

        if query is None:
            raise ValueError("backend='mc' requires a property query")
        mc = ModelChecker(program, **knobs)
        if prove:
            return mc.prove_with_increasing_k(query, max_k=steps).outcome()
        return mc.bmc(query, steps).outcome()

    from ..backends.houdini import HoudiniSynthesizer

    houdini = HoudiniSynthesizer(program, **knobs)
    try:
        return houdini.synthesize(query).outcome()
    except BudgetExhausted as exc:
        if exc.partial is not None:
            return exc.partial.outcome()
        from .result import verdict_for_unknown

        return AnalysisOutcome(
            verdict=verdict_for_unknown(exc.report), report=exc.report
        )
