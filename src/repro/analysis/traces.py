"""Counterexample replay: validate symbolic traces on the interpreter.

Every trace the SMT back end produces can be replayed through the
concrete reference interpreter.  Agreement between the two is the
reproduction's strongest internal consistency check — it exercises the
parser, checker, interpreter, symbolic executor, bit-blaster and SAT
solver against each other on the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..backends.smt_backend import CounterexampleTrace, SmtBackend
from ..buffers.concrete import CounterBuffer, ListBuffer
from ..lang.checker import CheckedProgram
from ..lang.interp import Interpreter, ScriptedOracle, Trace


@dataclass
class ReplayReport:
    """Outcome of replaying a symbolic trace concretely."""

    trace: Trace
    mismatches: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.mismatches


def replay(
    checked: CheckedProgram,
    counterexample: CounterexampleTrace,
    backend: Optional[SmtBackend] = None,
    buffer_model: str = "list",
) -> ReplayReport:
    """Run the counterexample's workload through the interpreter.

    When ``backend`` is given, the interpreter's observables (cumulative
    dequeue/drop counts and final backlogs per buffer) are compared
    against the model's valuation of the corresponding symbolic terms;
    any disagreement is reported as a mismatch.
    """
    factory: Callable = ListBuffer if buffer_model == "list" else CounterBuffer
    capacity = backend.config.buffer_capacity if backend else 64
    oracle = ScriptedOracle(counterexample.havocs)
    interp = Interpreter(
        checked,
        buffer_factory=factory,
        buffer_capacity=capacity,
        oracle=oracle,
    )
    trace = interp.run(counterexample.workload())
    report = ReplayReport(trace=trace)

    if backend is None or counterexample.model is None:
        return report

    model = counterexample.model
    for label in backend.machine.snapshots[-1].deq_p:
        expected_deq = int(model.eval(backend.deq_count(label)))
        expected_drop = int(model.eval(backend.drop_count(label)))
        expected_backlog = int(model.eval(backend.backlog(label)))
        buf = _concrete_buffer(interp, label)
        if buf.stats.dequeued_packets != expected_deq:
            report.mismatches.append(
                f"{label}: interpreter dequeued {buf.stats.dequeued_packets},"
                f" model says {expected_deq}"
            )
        if buf.stats.dropped_packets != expected_drop:
            report.mismatches.append(
                f"{label}: interpreter dropped {buf.stats.dropped_packets},"
                f" model says {expected_drop}"
            )
        if buf.backlog_p() != expected_backlog:
            report.mismatches.append(
                f"{label}: interpreter backlog {buf.backlog_p()},"
                f" model says {expected_backlog}"
            )
    return report


def _concrete_buffer(interp: Interpreter, label: str):
    if label.endswith("]") and "[" in label:
        name, _, rest = label.partition("[")
        return interp.buffer(name, int(rest[:-1]))
    return interp.buffer(label)
