"""Lines-of-code accounting for the Table-1 comparison.

Table 1 compares the modeling effort — effective lines of code — of
the FPerf-style encodings against the Buffy programs for the same
three schedulers.  "Effective" lines exclude blanks, comments and
import/docstring boilerplate, so the numbers reflect modeling work,
not file formatting.
"""

from __future__ import annotations

import ast
import inspect
import io
import tokenize
from dataclasses import dataclass


def buffy_loc(source: str) -> int:
    """Effective LoC of a Buffy program: non-blank, non-comment lines."""
    count = 0
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("//"):
            continue
        # A line that is only a trailing comment after code counts once;
        # strip the comment part for the emptiness check.
        code = line.split("//", 1)[0].strip()
        if code:
            count += 1
    return count


def python_loc(source: str) -> int:
    """Effective LoC of Python source: code lines minus comments,
    docstrings, blank lines and import statements."""
    # Collect docstring line ranges via the AST.
    tree = ast.parse(source)
    doc_lines: set[int] = set()
    import_lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            body = node.body
            if body and isinstance(body[0], ast.Expr) and isinstance(
                body[0].value, ast.Constant
            ) and isinstance(body[0].value.value, str):
                for line in range(body[0].lineno, body[0].end_lineno + 1):
                    doc_lines.add(line)
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                import_lines.add(line)

    code_lines: set[int] = set()
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                        tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER,
                        tokenize.ENCODING):
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
    effective = code_lines - doc_lines - import_lines
    return len(effective)


def module_loc(module) -> int:
    """Effective LoC of an imported Python module."""
    return python_loc(inspect.getsource(module))


@dataclass
class LocRow:
    """One row of the Table-1 comparison."""

    program: str
    fperf_loc: int
    buffy_loc: int

    @property
    def ratio(self) -> float:
        return self.fperf_loc / max(1, self.buffy_loc)


def table1_rows() -> list[LocRow]:
    """Regenerate the Table-1 LoC comparison from this repo's artifacts."""
    from .. import baselines
    from ..baselines import fperf_fq, fperf_prio, fperf_rr
    from ..baselines import common
    from ..netmodels.schedulers import FQ_BUGGY_SRC, PRIO_SRC, RR_SRC

    # The scheduler-agnostic layer (common.py) is shared; Table 1 counts
    # the scheduler-specific modeling code, as the paper does ("The
    # complete FPerf implementation of scheduling logic alone is ~200
    # lines ... and there are 100s of lines of scheduler-agnostic
    # constraints").
    return [
        LocRow("Fair-Queue", module_loc(fperf_fq), buffy_loc(FQ_BUGGY_SRC)),
        LocRow("Round-Robin", module_loc(fperf_rr), buffy_loc(RR_SRC)),
        LocRow("Strict-Priority", module_loc(fperf_prio), buffy_loc(PRIO_SRC)),
    ]


def scheduler_agnostic_loc() -> int:
    """LoC of the shared FPerf-style queue/list machinery (common.py)."""
    from ..baselines import common

    return module_loc(common)
