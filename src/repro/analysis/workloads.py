"""The workload language: conditions on input traffic.

FPerf's key capability — which the paper's §4 wants Buffy to target as
a back end — is synthesizing a *workload*: a set of conditions on
input traffic under which a performance query always holds.  This
module defines the condition language:

* :class:`RateGE` / :class:`RateLE` — per-step arrival bounds for one
  input buffer over a suffix window ``[start, T)``;
* :class:`BurstGE` / :class:`BurstLE` — arrival bounds at one step;
* :class:`Workload` — a conjunction of atoms.

Atoms have dual semantics: they *encode* to SMT terms over a symbolic
machine's arrival variables, and they *evaluate* concretely on a
workload dict (so synthesized conditions can be checked against
simulated traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..buffers.packets import Packet
from ..smt.terms import Term, mk_and, mk_bool_to_int, mk_int, mk_le, mk_sum


def arrival_count_term(machine, label: str, step: int) -> Term:
    """Number of packets arriving at ``label`` in ``step``, as a term."""
    bits = [
        av.present
        for av in machine.arrival_vars
        if av.buffer == label and av.step == step
    ]
    return mk_sum([mk_bool_to_int(b) for b in bits])


def concrete_count(arrivals: Mapping[str, Sequence[Packet]], label: str) -> int:
    return len(arrivals.get(label, ()))


@dataclass(frozen=True)
class Atom:
    """Base class for workload atoms."""

    def encode(self, machine, horizon: int) -> Term:
        raise NotImplementedError

    def holds(self, workload: Sequence[Mapping[str, Sequence[Packet]]]) -> bool:
        raise NotImplementedError

    def cost(self) -> int:
        """Search-ordering cost: cheaper atoms are preferred."""
        return 1


@dataclass(frozen=True)
class RateGE(Atom):
    """Buffer ``label`` receives at least ``rate`` packets every step >= start."""

    label: str
    rate: int
    start: int = 0

    def encode(self, machine, horizon: int) -> Term:
        conj = [
            mk_le(mk_int(self.rate), arrival_count_term(machine, self.label, t))
            for t in range(self.start, horizon)
        ]
        return mk_and(*conj)

    def holds(self, workload) -> bool:
        return all(
            concrete_count(step, self.label) >= self.rate
            for step in workload[self.start:]
        )

    def __str__(self) -> str:
        return f"arrivals({self.label}, t) >= {self.rate} for t >= {self.start}"


@dataclass(frozen=True)
class RateLE(Atom):
    """Buffer ``label`` receives at most ``rate`` packets every step >= start."""

    label: str
    rate: int
    start: int = 0

    def encode(self, machine, horizon: int) -> Term:
        conj = [
            mk_le(arrival_count_term(machine, self.label, t), mk_int(self.rate))
            for t in range(self.start, horizon)
        ]
        return mk_and(*conj)

    def holds(self, workload) -> bool:
        return all(
            concrete_count(step, self.label) <= self.rate
            for step in workload[self.start:]
        )

    def __str__(self) -> str:
        return f"arrivals({self.label}, t) <= {self.rate} for t >= {self.start}"


@dataclass(frozen=True)
class BurstGE(Atom):
    """Buffer ``label`` receives at least ``count`` packets at step ``step``."""

    label: str
    step: int
    count: int

    def encode(self, machine, horizon: int) -> Term:
        return mk_le(
            mk_int(self.count), arrival_count_term(machine, self.label, self.step)
        )

    def holds(self, workload) -> bool:
        if self.step >= len(workload):
            return False
        return concrete_count(workload[self.step], self.label) >= self.count

    def __str__(self) -> str:
        return f"arrivals({self.label}, {self.step}) >= {self.count}"


@dataclass(frozen=True)
class BurstLE(Atom):
    """Buffer ``label`` receives at most ``count`` packets at step ``step``."""

    label: str
    step: int
    count: int

    def encode(self, machine, horizon: int) -> Term:
        return mk_le(
            arrival_count_term(machine, self.label, self.step), mk_int(self.count)
        )

    def holds(self, workload) -> bool:
        if self.step >= len(workload):
            return True
        return concrete_count(workload[self.step], self.label) <= self.count

    def __str__(self) -> str:
        return f"arrivals({self.label}, {self.step}) <= {self.count}"


@dataclass(frozen=True)
class Workload:
    """A conjunction of atoms over input traffic."""

    atoms: tuple[Atom, ...]

    def encode(self, machine, horizon: int) -> Term:
        return mk_and(*[a.encode(machine, horizon) for a in self.atoms])

    def holds(self, workload) -> bool:
        return all(a.holds(workload) for a in self.atoms)

    def cost(self) -> int:
        return sum(a.cost() for a in self.atoms)

    def without(self, atom: Atom) -> "Workload":
        return Workload(tuple(a for a in self.atoms if a is not atom))

    def __str__(self) -> str:
        if not self.atoms:
            return "true"
        return " AND ".join(str(a) for a in self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)


def exact_characterization(
    arrivals: Sequence[Mapping[str, Sequence[Packet]]],
    labels: Sequence[str],
) -> Workload:
    """The most specific workload matching a concrete trace:
    one BurstGE + BurstLE pair per (buffer, step)."""
    atoms: list[Atom] = []
    for t, step in enumerate(arrivals):
        for label in labels:
            count = concrete_count(step, label)
            atoms.append(BurstGE(label, t, count))
            atoms.append(BurstLE(label, t, count))
    return Workload(tuple(atoms))


# ----- workload generators for simulation/benchmarks ----------------------------


def uniform_workload(
    labels: Sequence[str], horizon: int, per_step: int, flow_of=None
) -> list[dict[str, list[Packet]]]:
    """Every buffer gets ``per_step`` unit packets every step."""
    out = []
    for _ in range(horizon):
        step: dict[str, list[Packet]] = {}
        for label in labels:
            flow = flow_of(label) if flow_of else _label_flow(label)
            step[label] = [Packet(flow=flow) for _ in range(per_step)]
        out.append(step)
    return out


def onoff_workload(
    labels: Sequence[str], horizon: int, burst: int, period: int
) -> list[dict[str, list[Packet]]]:
    """Periodic on/off bursts, staggered across buffers."""
    out = []
    for t in range(horizon):
        step: dict[str, list[Packet]] = {}
        for i, label in enumerate(labels):
            if (t + i) % period == 0:
                step[label] = [Packet(flow=_label_flow(label)) for _ in range(burst)]
        out.append(step)
    return out


def random_workload(
    labels: Sequence[str], horizon: int, max_per_step: int, seed: int = 0
) -> list[dict[str, list[Packet]]]:
    """Independent uniform arrivals in [0, max_per_step] per buffer/step."""
    import random

    rng = random.Random(seed)
    out = []
    for _ in range(horizon):
        step: dict[str, list[Packet]] = {}
        for label in labels:
            n = rng.randint(0, max_per_step)
            if n:
                step[label] = [Packet(flow=_label_flow(label)) for _ in range(n)]
        out.append(step)
    return out


def _label_flow(label: str) -> int:
    if label.endswith("]") and "[" in label:
        return int(label.partition("[")[2][:-1])
    return 0
