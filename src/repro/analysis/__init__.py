"""Analysis utilities: queries, workloads, trace replay, LoC accounting."""

from .loc import LocRow, buffy_loc, python_loc, table1_rows
from .traces import ReplayReport, replay
from .workloads import (
    BurstGE,
    BurstLE,
    RateGE,
    RateLE,
    Workload,
    onoff_workload,
    random_workload,
    uniform_workload,
)

__all__ = [
    "BurstGE", "BurstLE", "LocRow", "RateGE", "RateLE", "ReplayReport",
    "Workload", "buffy_loc", "onoff_workload", "python_loc",
    "random_workload", "replay", "table1_rows", "uniform_workload",
]
