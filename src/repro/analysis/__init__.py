"""Analysis utilities: queries, workloads, trace replay, LoC accounting,
plus the uniform result vocabulary and the :func:`analyze` facade."""

from .facade import analyze
from .loc import LocRow, buffy_loc, python_loc, table1_rows
from .result import EXIT_ERROR, AnalysisOutcome, Verdict, verdict_for_unknown
from .traces import ReplayReport, replay
from .workloads import (
    BurstGE,
    BurstLE,
    RateGE,
    RateLE,
    Workload,
    onoff_workload,
    random_workload,
    uniform_workload,
)

__all__ = [
    "AnalysisOutcome", "BurstGE", "BurstLE", "EXIT_ERROR", "LocRow",
    "RateGE", "RateLE", "ReplayReport", "Verdict", "Workload", "analyze",
    "buffy_loc", "onoff_workload", "python_loc", "random_workload",
    "replay", "table1_rows", "uniform_workload", "verdict_for_unknown",
]
