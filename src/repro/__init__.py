"""repro — a reproduction of *Buffy: A Formal Language-Based Framework
for Network Performance Analysis* (HotNets '24).

The package provides:

* :mod:`repro.lang` — the Buffy language: parser, type checker,
  reference interpreter, pretty printer, and an embedded builder API;
* :mod:`repro.buffers` — packet buffers at two precision levels
  (packet-list and per-flow counters), concrete and symbolic;
* :mod:`repro.compiler` — symbolic execution of Buffy programs into
  SMT terms, plus program composition by buffer connection;
* :mod:`repro.backends` — analysis back ends: bounded SMT
  verification/synthesis, FPerf-style workload synthesis, Dafny-style
  annotation checking, and a BMC/k-induction model checker;
* :mod:`repro.smt` — the from-scratch SMT substrate (terms,
  bit-blasting, CDCL SAT) standing in for Z3;
* :mod:`repro.runtime` — resource governance: budgets/deadlines with
  cooperative cancellation, structured UNKNOWN reports, escalation
  portfolios, and a seeded fault-injection harness;
* :mod:`repro.netmodels` — the paper's case-study models (FQ-CoDel
  style schedulers, CCAC's AIMD/path/delay network);
* :mod:`repro.baselines` — hand-written FPerf-style encodings used as
  the Table-1 comparison and for cross-validation;
* :mod:`repro.analysis` — queries, workloads, trace replay, LoC
  accounting;
* :mod:`repro.obs` — zero-dependency observability: hierarchical
  spans, a metrics registry, and JSONL / Chrome-trace / Prometheus
  exporters across the whole compile–solve pipeline;
* :mod:`repro.trust` — certified answers: DRAT-style proof logging in
  the CDCL core, an independent proof checker, and unsat cores, so
  UNSAT/VERIFIED claims can be machine-checked
  (``analyze(certify=True)`` / ``REPRO_CERTIFY=1``);
* :mod:`repro.persist` — durability: a checksummed write-ahead
  journal, CDCL checkpoint/resume (``REPRO_CHECKPOINT_DIR``), and the
  crash-recoverable batch queue behind :func:`repro.analyze_many` and
  ``repro batch run/resume``;
* :mod:`repro.serve` — the overload-safe analysis service (``repro
  serve``): bounded admission with per-tenant rate limits, a
  degrade-then-shed overload ladder, a circuit breaker around the
  solve path, and graceful drain into the batch journal;
* :mod:`repro.client` — the matching HTTP client with retry/backoff
  honoring ``Retry-After``.

Quickstart::

    import repro
    from repro.analysis.queries import starvation

    outcome = repro.analyze(
        SRC, lambda bk: starvation(bk, "ibs[0]"),
        steps=6, jobs=4, consts={"N": 2},
    )
    print(outcome.verdict)        # Verdict.PROVED / VIOLATED / ...
    raise SystemExit(outcome.exit_code)
"""

from .analysis.facade import analyze, analyze_many
from .analysis.result import (
    EXIT_CERTIFICATION,
    EXIT_DEADLETTER,
    EXIT_ERROR,
    AnalysisOutcome,
    Verdict,
)
from .backends.dafny import DafnyBackend, StateView
from .backends.fperf import FPerfBackend
from .backends.mc import ModelChecker
from .backends.network import NetworkBackend
from .backends.smt_backend import SmtBackend, Status
from .buffers.packets import Packet
from .runtime import (
    Budget,
    BudgetExhausted,
    EscalationPolicy,
    ExhaustionReason,
    ResourceReport,
    SolverFault,
    inject_faults,
)
from .compiler.composition import ConcreteNetwork, Connection, SymbolicNetwork
from .compiler.symexec import EncodeConfig, SymbolicMachine
from .lang.builder import ProgramBuilder
from .lang.checker import CheckedProgram, check_program
from .lang.interp import Interpreter
from .lang.parser import parse_expr, parse_program
from .lang.pretty import pretty_program
from .obs import METRICS, TRACER, TelemetrySnapshot, telemetry
from .persist import BatchRunner, CheckpointStore, Journal
from .trust import Certificate, DratChecker, DratError, ProofLog, check_drat
from .client import ServiceClient, ServiceUnavailable
from .serve import AnalysisService, ReproServer, ServeConfig

__version__ = "1.0.0"

__all__ = [
    "AnalysisOutcome",
    "AnalysisService",
    "BatchRunner",
    "Budget",
    "BudgetExhausted",
    "CheckedProgram",
    "CheckpointStore",
    "ConcreteNetwork",
    "Connection",
    "Certificate",
    "DafnyBackend",
    "DratChecker",
    "DratError",
    "EXIT_CERTIFICATION",
    "EXIT_DEADLETTER",
    "EXIT_ERROR",
    "EncodeConfig",
    "EscalationPolicy",
    "ExhaustionReason",
    "FPerfBackend",
    "Interpreter",
    "Journal",
    "METRICS",
    "ModelChecker",
    "NetworkBackend",
    "Packet",
    "ProgramBuilder",
    "ProofLog",
    "ReproServer",
    "ResourceReport",
    "ServeConfig",
    "ServiceClient",
    "ServiceUnavailable",
    "SmtBackend",
    "SolverFault",
    "StateView",
    "Status",
    "SymbolicMachine",
    "SymbolicNetwork",
    "TRACER",
    "TelemetrySnapshot",
    "Verdict",
    "analyze",
    "analyze_many",
    "check_drat",
    "check_program",
    "inject_faults",
    "parse_expr",
    "parse_program",
    "pretty_program",
    "telemetry",
]
