"""In-memory DRAT-style proof log.

:class:`ProofLog` is the write side of the trust layer: the CDCL
solver appends every learned clause ("a" steps) and every learned
clause it deletes from the database ("d" steps), plus the empty clause
when it derives root-level unsatisfiability.  The log is append-only,
picklable (portfolio workers ship their steps back to the parent) and
deliberately knows nothing about checking — the read side lives in
:mod:`repro.trust.drat`, which must stay independent of the solver.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: One proof step: ("a", lits) adds a clause, ("d", lits) deletes one.
Step = tuple[str, tuple[int, ...]]


class ProofLog:
    """Append-only sequence of clausal proof steps."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[Step] = ()):
        self.steps: list[Step] = list(steps)

    def add(self, lits: Iterable[int]) -> None:
        """Record a learned (or derived-empty) clause addition."""
        self.steps.append(("a", tuple(lits)))

    def delete(self, lits: Iterable[int]) -> None:
        """Record the deletion of a previously added clause."""
        self.steps.append(("d", tuple(lits)))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def to_drat(self) -> str:
        """Textual DRAT rendering (``d``-prefixed deletions, 0-terminated)."""
        lines = []
        for kind, lits in self.steps:
            body = " ".join(str(l) for l in lits)
            prefix = "d " if kind == "d" else ""
            lines.append(f"{prefix}{body} 0".replace("  ", " ").strip())
        return "\n".join(lines) + ("\n" if lines else "")
