"""Trust layer: certified UNSAT answers.

The solver's SAT answers have always been validated by re-evaluating
the original terms under the decoded model (``SmtSolver._validate``).
This package closes the other half of the trust gap: UNSAT answers can
carry a :class:`Certificate` — the original CNF plus the CDCL solver's
DRAT-style proof log — replayed by an independent, from-scratch
checker (:mod:`repro.trust.drat`).  ``analyze(certify=True)`` and
``REPRO_CERTIFY=1`` refuse to report UNSAT-backed verdicts unless the
certificate checks.
"""

from __future__ import annotations

import os

from .drat import Certificate, DratChecker, DratError, check_drat
from .proof import ProofLog, Step

__all__ = [
    "Certificate",
    "DratChecker",
    "DratError",
    "ProofLog",
    "Step",
    "certify_default",
    "check_drat",
]

_TRUTHY = ("1", "true", "on", "yes")


def certify_default() -> bool:
    """The process-wide certification default (``REPRO_CERTIFY`` env var)."""
    return os.environ.get("REPRO_CERTIFY", "").strip().lower() in _TRUTHY
