"""Independent DRAT proof checker (reverse unit propagation).

This is the read side of the trust layer: given the *original* CNF and
the solver's clausal proof log, :class:`DratChecker` replays every
addition by the RUP criterion — assume the negation of the clause,
unit-propagate, and require a conflict — and every deletion by
retiring the clause from propagation.  The checker shares no code with
:mod:`repro.smt.sat.cdcl`; it is a from-scratch two-watched-literal
propagator, so a bug in the solver cannot hide in the checker.

Soundness argument (why an accepted proof really refutes the CNF):

* Every accepted addition is RUP with respect to the clauses currently
  alive plus the persistent root assignments, and is therefore entailed
  by them.
* Root assignments are themselves unit-propagation consequences of
  clauses alive at the time they were derived.
* Deletions only *remove* clauses, so by induction everything the
  checker ever uses is entailed by the original CNF.  An accepted empty
  clause (or a core whose assumption yields a root conflict) therefore
  certifies unsatisfiability (under those assumptions).

Deletions never threaten soundness, only completeness — and since we
generate the proofs ourselves, the solver guarantees (reasons on the
final trail are locked, hence alive at end-of-log) make its own proofs
checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # duck-typed, mirroring the solver's Budget handling
    from ...runtime.budget import Budget


class DratError(Exception):
    """A proof failed to verify (bad step, missing refutation, bad core)."""


class _CClause:
    __slots__ = ("lits", "watch", "deleted")

    def __init__(self, lits: tuple[int, ...]):
        self.lits = lits
        # The two currently watched literals, or None when the clause is
        # permanently satisfied/refuted at the root and never watched.
        self.watch: Optional[tuple[int, int]] = None
        self.deleted = False


class DratChecker:
    """Replays a clausal proof by reverse unit propagation.

    The checker keeps one *persistent* partial assignment: the root-level
    unit-propagation closure of the clauses added so far.  RUP checks and
    core queries push temporary assumptions on top of it and always undo
    back to the root, so a checker instance can be kept alive and fed
    incrementally (new clauses, then new proof steps) across many
    certifications of one growing formula.
    """

    def __init__(self, num_vars: int = 0):
        self.num_vars = 0
        #: True once the clause set is refuted at the root level.
        self.refuted = False
        self._value: list[int] = [0]   # 1-indexed: +1 true, -1 false, 0 free
        self._watches: dict[int, list[_CClause]] = {}
        self._by_key: dict[tuple[int, ...], list[_CClause]] = {}
        self._trail: list[int] = []
        self._qhead = 0
        self._ensure_vars(num_vars)

    # ----- assignment machinery ---------------------------------------------

    def _ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.num_vars += 1
            self._value.append(0)

    def _val(self, lit: int) -> int:
        v = self._value[abs(lit)]
        return v if lit > 0 else -v

    def _assign(self, lit: int) -> None:
        self._value[abs(lit)] = 1 if lit > 0 else -1
        self._trail.append(lit)

    def _propagate(self) -> bool:
        """Propagate queued assignments; True iff a conflict was found."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = -lit
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            keep: list[_CClause] = []
            i = 0
            n = len(watchers)
            while i < n:
                rec = watchers[i]
                i += 1
                if rec.deleted:
                    continue  # retired: drop from the watch list lazily
                w0, w1 = rec.watch
                if w0 == false_lit:
                    w0, w1 = w1, w0
                if self._val(w0) > 0:
                    rec.watch = (w0, w1)
                    keep.append(rec)
                    continue
                moved = False
                for q in rec.lits:
                    if q != w0 and q != false_lit and self._val(q) >= 0:
                        rec.watch = (w0, q)
                        self._watches.setdefault(q, []).append(rec)
                        moved = True
                        break
                if moved:
                    continue
                rec.watch = (w0, false_lit)
                keep.append(rec)
                v0 = self._val(w0)
                if v0 < 0:
                    # Conflict: restore the remaining watchers and stop.
                    keep.extend(r for r in watchers[i:] if not r.deleted)
                    self._watches[false_lit] = keep
                    self._qhead = len(self._trail)
                    return True
                if v0 == 0:
                    self._assign(w0)
            self._watches[false_lit] = keep
        return False

    def _undo_to(self, saved: int) -> None:
        for lit in self._trail[saved:]:
            self._value[abs(lit)] = 0
        del self._trail[saved:]
        self._qhead = saved

    # ----- queries ----------------------------------------------------------

    def _rup(self, clause: tuple[int, ...]) -> bool:
        """Is ``clause`` a reverse-unit-propagation consequence?"""
        if self.refuted:
            return True  # anything follows from a refuted clause set
        saved = len(self._trail)
        conflict = False
        for lit in clause:
            v = self._val(lit)
            if v > 0:
                # The clause is satisfied at the root: its negation is
                # immediately contradictory.
                conflict = True
                break
            if v == 0:
                self._assign(-lit)
        if not conflict:
            conflict = self._propagate()
        self._undo_to(saved)
        return conflict

    def assumptions_conflict(self, lits: Iterable[int]) -> bool:
        """Do these assumption literals propagate to a conflict?

        The final check for an UNSAT-under-assumptions certificate: the
        core is genuine iff asserting it on top of the (replayed) clause
        set refutes by unit propagation alone.  Temporary, like RUP.
        """
        if self.refuted:
            return True
        saved = len(self._trail)
        conflict = False
        for lit in lits:
            self._ensure_vars(abs(lit))
            v = self._val(lit)
            if v < 0:
                conflict = True
                break
            if v == 0:
                self._assign(lit)
        if not conflict:
            conflict = self._propagate()
        self._undo_to(saved)
        return conflict

    # ----- clause set maintenance -------------------------------------------

    def add_clause(self, lits: Iterable[int], check: bool = False) -> None:
        """Install a clause; with ``check=True`` verify it is RUP first.

        Raises :class:`DratError` when a checked clause is not RUP —
        that is the rejection path for corrupted or bogus proofs.
        """
        clause = tuple(lits)
        for lit in clause:
            if lit == 0:
                raise DratError("0 is not a valid literal")
            self._ensure_vars(abs(lit))
        if check and not self._rup(clause):
            raise DratError(f"proof step is not RUP: {list(clause)}")
        rec = _CClause(clause)
        self._by_key.setdefault(tuple(sorted(clause)), []).append(rec)
        if self.refuted:
            return
        distinct = tuple(dict.fromkeys(clause))
        lit_set = set(distinct)
        if any(-l in lit_set for l in distinct):
            return  # tautology: permanently satisfied, never watched
        if any(self._val(l) > 0 for l in distinct):
            return  # satisfied by a persistent root literal forever
        free = [l for l in distinct if self._val(l) == 0]
        if not free:
            self.refuted = True  # all literals false at the root
            return
        if len(free) == 1:
            # Unit under the root assignment: extend the persistent
            # closure; once true, the clause never needs watching.
            self._assign(free[0])
            if self._propagate():
                self.refuted = True
            return
        rec.watch = (free[0], free[1])
        self._watches.setdefault(free[0], []).append(rec)
        self._watches.setdefault(free[1], []).append(rec)

    def delete_clause(self, lits: Iterable[int]) -> None:
        """Retire one instance of the clause from propagation.

        Unknown deletions are ignored: removing clauses can only weaken
        the set, so leniency here cannot make an invalid proof pass.
        """
        key = tuple(sorted(lits))
        recs = self._by_key.get(key)
        if not recs:
            return
        rec = recs.pop()
        if not recs:
            del self._by_key[key]
        rec.deleted = True

    def apply_step(self, step: tuple[str, tuple[int, ...]]) -> None:
        kind, lits = step
        if kind == "a":
            self.add_clause(lits, check=True)
        elif kind == "d":
            self.delete_clause(lits)
        else:
            raise DratError(f"unknown proof step kind {kind!r}")


def check_drat(
    num_vars: int,
    clauses: Sequence[Sequence[int]],
    steps: Sequence[tuple[str, tuple[int, ...]]],
    core: Sequence[int] = (),
    budget: Optional["Budget"] = None,
) -> DratChecker:
    """Replay a proof against the original CNF; raise DratError on failure.

    With an empty ``core`` the proof must derive the empty clause; with
    a core the replayed clause set must refute under those assumption
    literals by unit propagation alone.  Returns the checker (its state
    can answer further assumption queries on the same formula).
    """
    checker = DratChecker(num_vars)
    for i, clause in enumerate(clauses):
        if budget is not None and (i & 0xFFF) == 0xFFF:
            budget.checkpoint("DRAT check: loading CNF")
        checker.add_clause(clause)
    for i, step in enumerate(steps):
        if budget is not None and (i & 0xFF) == 0xFF:
            budget.checkpoint("DRAT check: replaying proof")
        checker.apply_step(step)
    if core:
        if not checker.assumptions_conflict(core):
            raise DratError(
                "assumption core does not propagate to a conflict"
            )
    elif not checker.refuted:
        raise DratError("proof does not derive the empty clause")
    return checker


@dataclass
class Certificate:
    """A replayable refutation attached to an UNSAT answer.

    ``clauses`` is the original CNF (pre-solver, so the certificate does
    not depend on the solver's own simplifications), ``steps`` the
    solver's proof log, and ``core`` the assumption literals for
    UNSAT-under-assumptions answers (empty for root unsatisfiability).
    """

    num_vars: int
    clauses: list = field(default_factory=list)
    steps: list = field(default_factory=list)
    core: tuple = ()
    verified: bool = False
    error: Optional[str] = None

    def verify(self, budget: Optional["Budget"] = None) -> bool:
        """Run the independent checker; records verified/error in place."""
        try:
            check_drat(
                self.num_vars, self.clauses, self.steps,
                core=self.core, budget=budget,
            )
        except DratError as exc:
            self.verified = False
            self.error = str(exc)
            return False
        self.verified = True
        self.error = None
        return True
