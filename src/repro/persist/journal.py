"""Append-only write-ahead journal with per-record integrity framing.

The durability substrate under :mod:`repro.persist.batch` and any other
component that must survive SIGKILL.  One :class:`Journal` is one JSONL
file; every line frames one record as::

    {"l": <len>, "h": "<sha256>", "r": <payload>}

where ``h`` is the sha256 of the canonical (sorted-keys, no-whitespace)
JSON encoding of ``r`` and ``l`` its byte length — the same checksum
discipline :mod:`repro.trust` and :mod:`repro.engine.cache` apply to
certificates and cache entries.  A record is accepted on replay only if
it parses *and* both frame fields match; the first record that fails is
treated as the torn tail of an interrupted write and the file is
truncated back to the last good byte, so a crash mid-``write()`` can
never poison subsequent appends.

Fsync policy (the durability/throughput dial):

* ``"always"`` — fsync after every append (every accepted record
  survives power loss; the batch runner's default for state records);
* ``"batch"``  — flush every append, fsync every ``fsync_interval``
  appends and on close (survives process death, may lose a short tail
  on power loss);
* ``"never"``  — OS-buffered only (tests, throwaway runs).

Snapshot + compaction: a journal directory can carry a ``snapshot``
file (atomic temp-file + ``os.replace``, checksummed the same way).
:func:`write_snapshot` persists a compacted state; the caller then
truncates the journal via :meth:`Journal.reset`.  Replay is *idempotent
by contract* — records are state transitions that may be re-applied on
top of a snapshot that already includes them — so a crash between the
two steps only costs redundant replay work, never correctness.

Failure degradation: every write path honors the seeded ``io_error``
chaos hook (:mod:`repro.runtime.chaos`) and degrades an ``OSError`` to
a counted metric (``repro_persist_io_errors_total``) plus
``Journal.degraded = True`` instead of an unhandled exception — an
analysis never fails because its journal disk did.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from ..obs import METRICS


def canonical_json(payload: Any) -> str:
    """The canonical encoding both checksums are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def frame_record(payload: Any) -> str:
    """One journal line (newline-terminated) framing ``payload``."""
    canon = canonical_json(payload)
    return json.dumps(
        {"l": len(canon), "h": hashlib.sha256(canon.encode()).hexdigest(),
         "r": payload},
        sort_keys=True, separators=(",", ":"),
    ) + "\n"


def _unframe(line: str) -> Any:
    """Decode one line; raises ``ValueError`` on any integrity failure."""
    doc = json.loads(line)
    if not isinstance(doc, dict) or "r" not in doc:
        raise ValueError("not a framed record")
    canon = canonical_json(doc["r"])
    if doc.get("l") != len(canon):
        raise ValueError("length mismatch")
    if doc.get("h") != hashlib.sha256(canon.encode()).hexdigest():
        raise ValueError("checksum mismatch")
    return doc["r"]


class Journal:
    """An append-only, checksummed, crash-recoverable JSONL log."""

    #: Chaos hook: repro.runtime.chaos.inject_faults installs a monkey
    #: here so tests can make journal writes fail on demand.
    _chaos = None

    FSYNC_POLICIES = ("always", "batch", "never")

    def __init__(self, path: Union[str, Path], fsync: str = "batch",
                 fsync_interval: int = 16):
        if fsync not in self.FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {self.FSYNC_POLICIES}")
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_interval = max(1, fsync_interval)
        #: True once a write failed and was degraded to a metric: the
        #: in-process run stays correct, but durability is best-effort
        #: from that point on.
        self.degraded = False
        self.records_written = 0
        self.bytes_written = 0
        self._unsynced = 0
        self._fh = None

    # ----- writing ----------------------------------------------------------

    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, payload: Any) -> bool:
        """Frame and append one record; returns False when degraded.

        An ``OSError`` (real or injected by the ``io_error`` chaos
        hook) is counted and swallowed — durability degrades, the run
        continues.
        """
        line = frame_record(payload)
        monkey = Journal._chaos
        try:
            if monkey is not None:
                monkey.maybe_io_error("journal")
            fh = self._open()
            fh.write(line)
            self._unsynced += 1
            if self.fsync == "always":
                fh.flush()
                os.fsync(fh.fileno())
                self._unsynced = 0
            elif self.fsync == "batch":
                fh.flush()
                if self._unsynced >= self.fsync_interval:
                    os.fsync(fh.fileno())
                    self._unsynced = 0
        except OSError:
            self.degraded = True
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", where="journal")
            return False
        self.records_written += 1
        self.bytes_written += len(line)
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_journal_records_total")
            METRICS.counter_inc(
                "repro_persist_journal_bytes_total", len(line))
        return True

    def flush(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                if self.fsync != "never":
                    os.fsync(self._fh.fileno())
                self._unsynced = 0
            except OSError:
                self.degraded = True

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def reset(self) -> None:
        """Truncate the journal (after its state moved into a snapshot)."""
        self.close()
        try:
            with open(self.path, "w", encoding="utf-8"):
                pass
        except OSError:
            self.degraded = True
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", where="journal")

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----- replay -----------------------------------------------------------

    def replay(self, truncate_torn_tail: bool = True) -> list[Any]:
        """Read back every intact record, truncating any torn tail.

        The first line that fails to parse or verify marks the end of
        the valid prefix; with ``truncate_torn_tail`` the file is cut
        back to that byte so future appends start from a clean state.
        Must be called before :meth:`append` opens the file.
        """
        records: list[Any] = []
        good_bytes = 0
        torn = False
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return records
        except OSError:
            self.degraded = True
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", where="journal")
            return records
        offset = 0
        for chunk in raw.split(b"\n"):
            if not chunk:
                offset += 1
                continue
            line_len = len(chunk) + 1  # +1 for the newline
            if offset + len(chunk) >= len(raw):
                line_len = len(chunk)  # final line, unterminated
            try:
                records.append(_unframe(chunk.decode("utf-8")))
            except (ValueError, UnicodeDecodeError, json.JSONDecodeError):
                torn = True
                break
            offset += line_len
            good_bytes = offset
        if torn:
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_torn_tail_truncations_total")
            if truncate_torn_tail:
                try:
                    with open(self.path, "r+b") as fh:
                        fh.truncate(good_bytes)
                except OSError:
                    self.degraded = True
        elif raw and not raw.endswith(b"\n") and truncate_torn_tail:
            # A complete final record that lost only its newline (the
            # write was cut between the JSON and the terminator): close
            # the line so the next append starts a fresh record.
            try:
                with open(self.path, "ab") as fh:
                    fh.write(b"\n")
            except OSError:
                self.degraded = True
        return records

    def iter_records(self) -> Iterator[Any]:  # pragma: no cover - thin alias
        return iter(self.replay(truncate_torn_tail=False))


def tear_tail(path: Union[str, Path]) -> bool:
    """Cut the journal's final framed line in half (a nemesis helper).

    Models the torn tail a power cut leaves behind: the last record's
    write was interrupted mid-line, so bytes exist but the frame cannot
    verify.  :meth:`Journal.replay` must detect exactly this shape and
    truncate back to the last good byte.  Only the *final* line is ever
    torn — corrupting an interior record would destroy the good suffix
    behind it, which no single interrupted ``write()`` can do.

    Returns True when a tear was applied (the file had at least one
    complete line to tear).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return False
    body = raw.rstrip(b"\n")
    if not body:
        return False
    start = body.rfind(b"\n") + 1  # 0 when the file has a single line
    last = body[start:]
    if len(last) < 2:
        return False
    torn = raw[:start] + last[:len(last) // 2]
    try:
        with open(path, "wb") as fh:
            fh.write(torn)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError:
        return False
    if METRICS.enabled:
        METRICS.counter_inc("repro_chaos_injected_total", kind="torn_tail")
    return True


# ----- snapshots (compaction targets) ---------------------------------------


def write_snapshot(path: Union[str, Path], state: Any) -> bool:
    """Atomically persist a compacted ``state`` with a checksum envelope.

    Temp-file + ``os.replace`` (the :mod:`repro.engine.cache` pattern),
    so a crash mid-write leaves either the old snapshot or the new one,
    never a truncated hybrid.  Returns False (and counts a metric) on
    I/O failure instead of raising.
    """
    path = Path(path)
    doc = {"sha256": payload_checksum(state), "state": state}
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    monkey = Journal._chaos
    try:
        if monkey is not None:
            monkey.maybe_io_error("snapshot")
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return True
    except OSError:
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_persist_io_errors_total", where="snapshot")
        try:
            tmp.unlink()
        except OSError:
            pass
        return False


def load_snapshot(path: Union[str, Path]) -> Optional[Any]:
    """Read a snapshot back; any integrity failure is a miss (None)."""
    path = Path(path)
    try:
        raw = path.read_text()
    except (FileNotFoundError, OSError):
        return None
    try:
        doc = json.loads(raw)
        state = doc["state"]
        if doc["sha256"] != payload_checksum(state):
            raise ValueError("checksum mismatch")
        return state
    except (json.JSONDecodeError, ValueError, KeyError, TypeError):
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_snapshot_corrupt_total")
        try:
            path.unlink()
        except OSError:
            pass
        return None
