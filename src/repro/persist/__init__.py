"""Durability layer: write-ahead journal, solver checkpoints, batch queue.

Three pieces, one discipline (checksummed records, atomic replacement,
corrupt = miss):

* :class:`Journal` — append-only JSONL write-ahead log with per-record
  sha256 framing, torn-tail truncation on replay, and snapshot-based
  compaction;
* :class:`CheckpointStore` — CDCL solver state keyed by CNF
  fingerprint, so a budget-exhausted or killed solve resumes with its
  learned clauses instead of restarting;
* :class:`BatchRunner` / :func:`analyze_many` — a crash-recoverable
  queue of analysis jobs with retries, backoff and deadletters.
"""

from .batch import (
    BatchReport,
    BatchRunner,
    JobRecord,
    LeaseHeld,
    SpoolLease,
    analyze_many,
    job_id_for,
)
from .checkpoint import CheckpointStore, cnf_fingerprint, resolve_checkpoints
from .journal import (
    Journal,
    canonical_json,
    frame_record,
    load_snapshot,
    payload_checksum,
    write_snapshot,
)

__all__ = [
    "BatchReport",
    "BatchRunner",
    "CheckpointStore",
    "JobRecord",
    "Journal",
    "LeaseHeld",
    "SpoolLease",
    "analyze_many",
    "canonical_json",
    "cnf_fingerprint",
    "frame_record",
    "job_id_for",
    "load_snapshot",
    "payload_checksum",
    "resolve_checkpoints",
    "write_snapshot",
]
