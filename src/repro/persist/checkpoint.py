"""On-disk solver checkpoints: exhausted solves resume, not restart.

A checkpoint is a :meth:`CDCLSolver.checkpoint_state` dict — learned
clauses, VSIDS activities, saved phases, restart position — wrapped in
the same checksum envelope the journal and the result cache use, and
keyed by a **CNF fingerprint** (sha256 over the clause list): learned
clauses are only sound relative to the formula they were derived from,
so a checkpoint can never be applied to a different query.

:class:`SmtSolver` consults a store (``checkpoints=`` or
``REPRO_CHECKPOINT_DIR``) on the sequential solve path: a budget- or
conflict-cap-exhausted UNKNOWN saves a checkpoint; the next check of
the same query restores it — learned clauses, phases and the Luby
position survive process death.  A definitive answer discards the
checkpoint.  Certified runs skip restore (a DRAT log cannot replay
clause derivations from a previous process) and the parallel portfolio
path does not checkpoint (workers race non-deterministically).

Trust on load: the envelope's sha256 is recomputed; any mismatch,
truncation or parse failure deletes the file and reports a miss —
exactly the :mod:`repro.engine.cache` discipline.  Writes are atomic
(temp file + ``os.replace``) and honor the ``io_error`` and
``kill_during_checkpoint`` chaos hooks.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from pathlib import Path
from typing import Iterable, Optional, Union

from ..obs import METRICS
from .journal import payload_checksum

CHECKPOINT_SUFFIX = ".ckpt.json"


def cnf_fingerprint(num_vars: int, clauses: Iterable[Iterable[int]]) -> str:
    """Stable hex key for one CNF instance (variable count + clauses)."""
    h = hashlib.sha256()
    h.update(f"v{num_vars}".encode())
    for clause in clauses:
        h.update(b"|")
        h.update(" ".join(str(l) for l in clause).encode())
    return h.hexdigest()


def _default_kill():  # pragma: no cover - exercised via subprocess tests
    os.kill(os.getpid(), signal.SIGKILL)


class CheckpointStore:
    """Checksummed, atomically-written solver checkpoints in one directory."""

    #: Chaos hook (repro.runtime.chaos.inject_faults): drives io_error
    #: and kill_during_checkpoint injection.
    _chaos = None

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.saves = 0
        self.restores = 0
        self.corrupt = 0
        self.io_errors = 0
        # Test seam: what "the process dies here" means for the
        # kill_during_checkpoint hook.  Production value is SIGKILL.
        self._kill_hook = _default_kill

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{CHECKPOINT_SUFFIX}"

    def save(self, key: str, state: dict) -> bool:
        """Persist one checkpoint; returns False on (injected) I/O failure.

        The ``kill_during_checkpoint`` chaos hook fires *between* the
        temp-file write and the ``os.replace`` — the worst possible
        instant — so recovery tests can prove a torn save leaves the
        previous checkpoint (or none) intact, never a corrupt one.
        """
        doc = {"sha256": payload_checksum(state), "state": state}
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        monkey = CheckpointStore._chaos
        try:
            if monkey is not None:
                monkey.maybe_io_error("checkpoint")
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(doc, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            if monkey is not None and monkey.should_kill_during_checkpoint():
                self._kill_hook()
            os.replace(tmp, path)
        except OSError:
            self.io_errors += 1
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", where="checkpoint")
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.saves += 1
        if METRICS.enabled:
            METRICS.counter_inc("repro_checkpoint_saves_total")
        return True

    def load(self, key: str) -> Optional[dict]:
        """Read a checkpoint back; any integrity failure is a miss."""
        path = self._path(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self.io_errors += 1
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", where="checkpoint")
            return None
        try:
            doc = json.loads(raw)
            state = doc["state"]
            if doc["sha256"] != payload_checksum(state):
                raise ValueError("checksum mismatch")
            if not isinstance(state, dict):
                raise ValueError("bad checkpoint payload")
        except (json.JSONDecodeError, ValueError, KeyError, TypeError):
            # Truncated or tampered: drop it so it cannot keep costing
            # a read, report a miss — never a wrong resume.
            self.corrupt += 1
            if METRICS.enabled:
                METRICS.counter_inc("repro_checkpoint_corrupt_total")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.restores += 1
        return state

    def discard(self, key: str) -> None:
        """Drop a checkpoint (its query answered definitively)."""
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        try:
            return sum(
                1 for p in self.directory.iterdir()
                if p.name.endswith(CHECKPOINT_SUFFIX)
            )
        except OSError:
            return 0


_default_store: Optional[CheckpointStore] = None
_default_key: Optional[str] = None


def resolve_checkpoints(setting) -> Optional[CheckpointStore]:
    """Map a checkpoint knob (None/False/path/store) to an effective store.

    ``False`` disables checkpointing outright; ``None`` defers to the
    ``REPRO_CHECKPOINT_DIR`` environment variable (unset → disabled); a
    path creates a store there; a :class:`CheckpointStore` is used
    as-is.
    """
    global _default_store, _default_key
    if setting is False:
        return None
    if isinstance(setting, CheckpointStore):
        return setting
    if setting is not None:
        return CheckpointStore(setting)
    env = os.environ.get("REPRO_CHECKPOINT_DIR")
    if not env:
        _default_store, _default_key = None, None
        return None
    if env != _default_key:
        _default_store, _default_key = CheckpointStore(env), env
    return _default_store
