"""Crash-recoverable batch execution of analysis jobs.

The durable counterpart of calling :func:`repro.analyze` in a loop: a
:class:`BatchRunner` owns one directory containing

* ``journal.jsonl`` — the write-ahead journal of job submissions and
  state transitions (``pending → running → done | failed | deadletter``),
* ``snapshot.json`` — the compacted job table (written atomically when
  the journal grows past ``compact_after_bytes``),
* ``cache/``        — an on-disk :class:`~repro.engine.cache.ResultCache`
  shared by every job, so a job re-executed after a crash answers its
  already-solved sub-queries from disk instead of re-deriving them.

A spool may also carry an **ownership lease** (``owner.json``): the
process that serves a spool (one ``repro serve`` replica) acquires the
lease and renews it on a heartbeat.  A *different* process may
:meth:`SpoolLease.takeover` only once the heartbeat has gone stale —
the arbiter that lets a cluster router finish a dead replica's backlog
(journal handoff) without ever racing a replica that is merely slow.

Execution contract — **at-least-once, idempotent**:

* A job's identity is a sha256 over its canonical spec (source text,
  backend, steps, consts, options); submitting the same work twice is
  a no-op, and every journal replay converges to the same job table.
* ``running`` is journaled *before* execution starts, ``done`` (with
  the verdict) after it finishes.  A process killed in between leaves
  the job ``running`` in the journal; the next :meth:`run` requeues it
  (``repro_persist_recoveries_total``) and executes it again.  Because
  the pipeline is a decision procedure and sub-queries hit the shared
  result cache, re-execution produces the identical verdict.
* Transient failures (:class:`~repro.runtime.budget.SolverFault`,
  ``OSError``) retry with exponential backoff + seeded jitter, up to
  ``max_attempts``; exhausting the attempts — or any permanent error
  such as a parse failure — moves the job to the **deadletter** state,
  which maps to exit code :data:`~repro.analysis.result.EXIT_DEADLETTER`.

The CLI surface is ``repro batch submit/run/resume/status``; the
library surface is :func:`repro.analyze_many`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from ..analysis.result import EXIT_DEADLETTER, AnalysisOutcome, Verdict
from ..obs import (
    BEACON,
    METRICS,
    TRACER,
    ProgressBook,
    parse_traceparent,
    progress_scope,
)
from ..runtime.budget import SolverFault
from .journal import Journal, canonical_json, load_snapshot, write_snapshot

#: Job lifecycle states, as journaled.
STATES = ("pending", "running", "done", "failed", "deadletter")

#: Exceptions worth retrying: infrastructure, not the job itself.
TRANSIENT_ERRORS = (SolverFault, OSError)


def job_id_for(spec: dict) -> str:
    """The idempotency key: sha256 over the canonical job spec."""
    keyed = {k: spec.get(k) for k in
             ("source", "backend", "steps", "consts", "prove", "options")}
    return hashlib.sha256(canonical_json(keyed).encode()).hexdigest()


class LeaseHeld(RuntimeError):
    """A takeover was refused: the current owner's heartbeat is fresh."""


class SpoolLease:
    """Ownership lease over one spool directory (``owner.json``).

    The liveness arbiter for journal handoff.  The owning process
    (a serve replica, a batch run) acquires the lease and renews it on
    a heartbeat; a peer that believes the owner died may take the spool
    over only once the heartbeat is **stale** — ``renewed_at`` older
    than the TTL the owner itself advertised.  A health prober can be
    fooled by a partition or a flapping probe; a fresh heartbeat on
    shared storage cannot, so :meth:`takeover` raising
    :class:`LeaseHeld` is what stops two processes from executing one
    journal at once.

    Wall-clock based (``time.time``) because the two sides are
    different processes; the clock is injectable for tests.  All writes
    are atomic (temp + rename) and degrade to a counted metric on
    ``OSError`` — a lost lease write costs takeover safety margin,
    never the run.
    """

    FILE = "owner.json"

    #: Chaos hook: repro.runtime.chaos.inject_faults installs a monkey
    #: here so campaigns can skew lease heartbeats (stale-owner
    #: split-brain pressure) without touching the wall clock.
    _chaos = None

    def __init__(self, directory: Union[str, Path], *,
                 ttl_seconds: float = 10.0,
                 clock: Callable[[], float] = time.time):
        self.directory = Path(directory)
        self.path = self.directory / self.FILE
        self.ttl_seconds = max(0.001, ttl_seconds)
        self._clock = clock
        self._owner: Optional[str] = None
        #: The fencing epoch of the lease this process last wrote.
        #: Every acquire/takeover increments the spool's epoch, so a
        #: write stamped with an older epoch is provably from a zombie
        #: owner that lost the lease (the auditor checks exactly this).
        self.epoch: int = 0

    # ----- observation ------------------------------------------------------

    def read(self) -> Optional[dict]:
        """The lease record, or None (no lease / unreadable)."""
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def holder(self) -> Optional[str]:
        data = self.read()
        return data.get("owner") if data else None

    def is_stale(self, data: Optional[dict] = None) -> bool:
        """True when the spool is safely claimable: no lease, a released
        lease, or a heartbeat older than the owner's advertised TTL."""
        if data is None:
            data = self.read()
        if not data:
            return True
        if data.get("state") == "released":
            return True
        try:
            renewed = float(data.get("renewed_at", 0.0))
            ttl = float(data.get("ttl_seconds", self.ttl_seconds))
        except (TypeError, ValueError):
            return True
        return self._clock() - renewed >= ttl

    # ----- transitions ------------------------------------------------------

    def acquire(self, owner: str, *, force: bool = False) -> bool:
        """Claim the spool for ``owner``; refuses a fresh foreign lease
        unless ``force`` (a replica restarting over its own spool passes
        ``force=True`` — it *is* the owner, the old pid just died)."""
        data = self.read()
        if (data and not force and not self.is_stale(data)
                and data.get("owner") != owner):
            return False
        self._owner = owner
        self.epoch = self._next_epoch(data)
        return self._write({
            "owner": owner,
            "pid": os.getpid(),
            "acquired_at": self._clock(),
            "renewed_at": self._clock() - self._skew(),
            "ttl_seconds": self.ttl_seconds,
            "epoch": self.epoch,
        })

    def renew(self) -> bool:
        """Heartbeat: push ``renewed_at`` forward.  Returns False (and
        writes nothing) if the lease was taken over from under us — the
        signal for a zombie owner to stop touching the journal."""
        if self._owner is None:
            return False
        data = self.read()
        if data and data.get("owner") != self._owner:
            if METRICS.enabled:
                METRICS.counter_inc("repro_persist_lease_lost_total")
            return False
        data = data or {"owner": self._owner, "pid": os.getpid(),
                        "acquired_at": self._clock(),
                        "ttl_seconds": self.ttl_seconds,
                        "epoch": self.epoch}
        # A skewed heartbeat backdates ``renewed_at``: the owner is
        # alive, but to every reader its lease looks stale — the clock
        # drift that invites a split-brain takeover.
        data["renewed_at"] = self._clock() - self._skew()
        return self._write(data)

    def release(self) -> bool:
        """Voluntary surrender (graceful drain): a peer may take over
        immediately instead of waiting out the TTL."""
        data = self.read() or {"owner": self._owner}
        data["state"] = "released"
        data["released_at"] = self._clock()
        return self._write(data)

    def takeover(self, new_owner: str, *, force: bool = False) -> dict:
        """Claim a (believedly) dead owner's spool.

        Raises :class:`LeaseHeld` while the current owner's heartbeat
        is fresh — ejection by a health prober is a *suspicion*; only a
        stale (or released) lease makes it safe to execute the journal.
        Returns the new lease record, which names the previous owner.
        """
        data = self.read()
        if (data and not force and not self.is_stale(data)
                and data.get("owner") != new_owner):
            age = self._clock() - float(data.get("renewed_at", 0.0))
            raise LeaseHeld(
                f"spool {self.directory} is owned by"
                f" {data.get('owner')!r} (heartbeat {age:.1f}s ago,"
                f" ttl {data.get('ttl_seconds')}s)"
            )
        self._owner = new_owner
        self.epoch = self._next_epoch(data)
        record = {
            "owner": new_owner,
            "pid": os.getpid(),
            "acquired_at": self._clock(),
            "renewed_at": self._clock(),
            "ttl_seconds": self.ttl_seconds,
            "epoch": self.epoch,
            "taken_over_by": new_owner,
            "taken_from": (data or {}).get("owner"),
        }
        if not self._write(record):
            raise LeaseHeld(
                f"could not write takeover lease in {self.directory}")
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_lease_takeovers_total")
        return record

    def _next_epoch(self, data: Optional[dict]) -> int:
        """The fencing epoch a fresh claim writes: strictly greater
        than any epoch ever persisted for this spool."""
        try:
            current = int((data or {}).get("epoch", 0))
        except (TypeError, ValueError):
            current = 0
        return max(current, self.epoch) + 1

    def _skew(self) -> float:
        """Injected clock skew for this heartbeat write (0.0 normally)."""
        monkey = SpoolLease._chaos
        if monkey is None:
            return 0.0
        return monkey.lease_skew()

    def _write(self, data: dict) -> bool:
        tmp = self.path.with_suffix(".tmp")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(data, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
        except OSError:
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", site="lease")
            return False
        return True


@dataclass
class JobRecord:
    """One job's current state, as reconstructed from the journal."""

    job_id: str
    spec: dict
    state: str = "pending"
    attempts: int = 0
    verdict: Optional[str] = None
    exit_code: Optional[int] = None
    error: Optional[str] = None
    recovered: bool = False  # requeued from an interrupted run
    # Observed ``running`` with no live executor behind it (a crashed or
    # SIGKILLed run): reported distinctly by ``status`` so operators see
    # interrupted work instead of it hiding among pending/done jobs.
    orphaned: bool = False
    # W3C-style traceparent captured at submission: a run in a *later*
    # process (``repro batch resume`` after SIGKILL) re-adopts it, so
    # one distributed trace spans the original request and the recovery.
    trace: Optional[str] = None
    # Which replica/process journaled the job (its spool lease owner).
    owner: Optional[str] = None
    # Set when a *different* owner journaled a later state transition —
    # the visible mark of a journal handoff after the original owner died.
    taken_over_by: Optional[str] = None
    # Set when the verdict was copied from a peer replica's journal
    # instead of being solved here (failover dedupe during handoff).
    adopted_from: Optional[str] = None

    @property
    def label(self) -> str:
        return self.spec.get("label") or self.job_id[:12]

    @property
    def trace_id(self) -> Optional[str]:
        parsed = parse_traceparent(self.trace)
        return parsed[0] if parsed else None

    def to_snapshot(self) -> dict:
        return {
            "job_id": self.job_id, "spec": self.spec, "state": self.state,
            "attempts": self.attempts, "verdict": self.verdict,
            "exit_code": self.exit_code, "error": self.error,
            "trace": self.trace, "owner": self.owner,
            "taken_over_by": self.taken_over_by,
            "adopted_from": self.adopted_from,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "JobRecord":
        return cls(
            job_id=data["job_id"], spec=data["spec"],
            state=data.get("state", "pending"),
            attempts=int(data.get("attempts", 0)),
            verdict=data.get("verdict"),
            exit_code=data.get("exit_code"),
            error=data.get("error"),
            trace=data.get("trace"),
            owner=data.get("owner"),
            taken_over_by=data.get("taken_over_by"),
            adopted_from=data.get("adopted_from"),
        )


@dataclass
class BatchReport:
    """What one :meth:`BatchRunner.run` (or :meth:`status`) observed."""

    records: list[JobRecord] = field(default_factory=list)
    recovered: int = 0
    retries: int = 0
    executed: int = 0
    replayed: int = 0  # finished jobs answered straight from the journal
    # The spool's ownership lease (owner, heartbeat age, takeover marks),
    # attached by :meth:`BatchRunner.status` when an ``owner.json`` exists.
    lease: Optional[dict] = None

    def by_state(self) -> dict[str, int]:
        """State → count; interrupted jobs count as ``orphaned``, not as
        whatever transient state the journal last recorded for them."""
        counts: dict[str, int] = {}
        for rec in self.records:
            state = "orphaned" if rec.orphaned else rec.state
            counts[state] = counts.get(state, 0) + 1
        return counts

    @property
    def exit_code(self) -> int:
        """Deadletter dominates; otherwise the worst job exit code."""
        if any(r.state == "deadletter" for r in self.records):
            return EXIT_DEADLETTER
        codes = [r.exit_code for r in self.records if r.exit_code is not None]
        return max(codes, default=0)

    def outcomes(self) -> list[AnalysisOutcome]:
        """Journal-reconstructed outcomes, in submission order.

        Witnesses and resource reports are not journaled (they are not
        portably serializable); replayed outcomes carry the verdict and
        a ``stats`` marker instead.
        """
        out = []
        for rec in self.records:
            if rec.verdict is not None:
                out.append(AnalysisOutcome(
                    verdict=Verdict(rec.verdict),
                    stats={"job_id": rec.job_id, "attempts": rec.attempts},
                ))
            else:
                out.append(AnalysisOutcome(
                    verdict=Verdict.UNDECIDED,
                    stats={"job_id": rec.job_id, "state": rec.state,
                           "error": rec.error},
                ))
        return out

    def describe(self) -> str:
        lines = []
        counts = self.by_state()
        order = [s for s in STATES if s != "running"] + ["running", "orphaned"]
        summary = ", ".join(
            f"{counts[s]} {s}" for s in order if counts.get(s)
        ) or "no jobs"
        lines.append(f"batch: {summary}")
        if self.recovered:
            lines.append(f"  recovered (requeued after crash): {self.recovered}")
        if self.retries:
            lines.append(f"  transient retries: {self.retries}")
        for rec in self.records:
            detail = rec.verdict or rec.state
            if rec.orphaned:
                detail = "orphaned (interrupted while running)"
            elif rec.state == "deadletter" and rec.error:
                detail = f"deadletter after {rec.attempts} attempts: {rec.error}"
            if rec.adopted_from:
                detail = f"{detail} [adopted from {rec.adopted_from}]"
            elif rec.taken_over_by:
                detail = f"{detail} [taken over by {rec.taken_over_by}]"
            lines.append(f"  {rec.label}: {detail}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable status (``repro batch status --json``).

        The shape ops scripts and the serve ``/readyz`` endpoint read:
        per-state counts (orphaned-running jobs reported distinctly),
        the aggregate exit code, and one row per job.  Cluster runs add
        handoff visibility: which replica owned each job, who took it
        over, which verdicts were adopted from a peer instead of solved
        here, and how many orphaned jobs each dead owner left behind.
        """
        orphaned_by_owner: dict[str, int] = {}
        handoff_rows: list[dict] = []
        handed_off = adopted = 0
        for rec in self.records:
            if rec.orphaned:
                key = rec.owner or "unknown"
                orphaned_by_owner[key] = orphaned_by_owner.get(key, 0) + 1
            if rec.taken_over_by:
                handed_off += 1
            if rec.adopted_from:
                adopted += 1
            if rec.taken_over_by or rec.adopted_from:
                # One row per handed-off job, carrying its trace_id so
                # the failover path is joinable against the distributed
                # trace the original submission started.
                handoff_rows.append({
                    "job_id": rec.job_id,
                    "label": rec.label,
                    "trace_id": rec.trace_id,
                    "owner": rec.owner,
                    "taken_over_by": rec.taken_over_by,
                    "adopted_from": rec.adopted_from,
                })
        doc = {
            "counts": self.by_state(),
            "recovered": self.recovered,
            "retries": self.retries,
            "executed": self.executed,
            "replayed": self.replayed,
            "exit_code": self.exit_code,
            "handoff": {
                "taken_over": handed_off,
                "adopted": adopted,
                "orphaned_by_owner": orphaned_by_owner,
                "rows": handoff_rows,
            },
            "jobs": [
                {
                    "job_id": rec.job_id,
                    "label": rec.label,
                    "state": "orphaned" if rec.orphaned else rec.state,
                    "attempts": rec.attempts,
                    "verdict": rec.verdict,
                    "exit_code": rec.exit_code,
                    "error": rec.error,
                    "trace_id": rec.trace_id,
                    "owner": rec.owner,
                    "taken_over_by": rec.taken_over_by,
                    "adopted_from": rec.adopted_from,
                }
                for rec in self.records
            ],
        }
        if self.lease is not None:
            doc["lease"] = self.lease
        return doc


class BatchRunner:
    """Journal-backed, crash-recoverable executor for analysis jobs."""

    JOURNAL = "journal.jsonl"
    SNAPSHOT = "snapshot.json"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
        fsync: str = "always",
        compact_after_bytes: int = 1 << 20,
        executor: Optional[Callable[[JobRecord], AnalysisOutcome]] = None,
        sleep: Callable[[float], None] = time.sleep,
        owner: Optional[str] = None,
        lease_ttl: float = 10.0,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Cluster identity: which replica this runner acts as.  Journal
        # records it writes are stamped ``by=owner`` so a later reader can
        # see which process drove each transition — the raw material for
        # the ``taken_over_by`` handoff marks.  None (single-node batch
        # runs) keeps the journal format exactly as before.
        self.owner = owner
        self.lease = SpoolLease(self.directory, ttl_seconds=lease_ttl)
        #: Set once this process learns it lost the spool lease (its
        #: heartbeat failed, or a takeover was observed).  A fenced
        #: runner stops journaling state transitions — the write fence
        #: that keeps a zombie owner from corrupting a handed-off
        #: journal with stale ``done`` records.
        self.fenced = False
        self.max_attempts = max(1, max_attempts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.compact_after_bytes = compact_after_bytes
        self._rng = random.Random(seed)
        self._fsync = fsync
        self._executor = executor
        self._sleep = sleep
        # Serializes journal appends and the in-process job table: the
        # serve layer executes jobs from multiple worker threads against
        # one runner, and interleaved writes would tear the journal.
        self._lock = threading.RLock()
        # Per-job engine knobs used by the default executor; set by run().
        self._run_knobs: dict[str, Any] = {}
        # In-process job table: jobs submitted by THIS process, kept so
        # a degraded journal (disk full, io_error chaos) costs only
        # durability — the current run still executes every job.
        self._mem: dict[str, JobRecord] = {}
        self._mem_order: list[str] = []
        self.journal = Journal(self.directory / self.JOURNAL, fsync=fsync)
        # Every job shares one on-disk result cache: a crashed job's
        # re-execution answers its solved sub-queries from disk.
        from ..engine.cache import ResultCache

        self.cache = ResultCache(disk_dir=self.directory / "cache")

    # ----- journal state ----------------------------------------------------

    def load(self) -> tuple[dict[str, JobRecord], list[str]]:
        """Rebuild the job table: snapshot first, then journal replay.

        Replay is idempotent — a transition already reflected in the
        snapshot re-applies to the same state — so a crash between
        snapshot write and journal truncation costs nothing.  Holds the
        runner lock: replay may truncate a torn tail, which must never
        race a concurrent append from a serve worker thread.
        """
        with self._lock:
            return self._load_locked()

    def _load_locked(self) -> tuple[dict[str, JobRecord], list[str]]:
        jobs: dict[str, JobRecord] = {}
        order: list[str] = []
        snap = load_snapshot(self.directory / self.SNAPSHOT)
        if snap:
            for data in snap.get("jobs", ()):
                rec = JobRecord.from_snapshot(data)
                jobs[rec.job_id] = rec
                order.append(rec.job_id)
        for rec_data in self.journal.replay():
            kind = rec_data.get("kind")
            if kind == "submit":
                spec = rec_data.get("spec") or {}
                job_id = rec_data.get("id") or job_id_for(spec)
                if job_id not in jobs:
                    jobs[job_id] = JobRecord(
                        job_id=job_id, spec=spec,
                        trace=rec_data.get("trace"),
                        owner=rec_data.get("owner"))
                    order.append(job_id)
            elif kind == "state":
                rec = jobs.get(rec_data.get("id", ""))
                if rec is None or rec_data.get("state") not in STATES:
                    continue
                rec.state = rec_data["state"]
                rec.attempts = int(rec_data.get("attempt", rec.attempts))
                if "verdict" in rec_data:
                    rec.verdict = rec_data["verdict"]
                if "exit_code" in rec_data:
                    rec.exit_code = rec_data["exit_code"]
                if "error" in rec_data:
                    rec.error = rec_data["error"]
                if "adopted_from" in rec_data:
                    rec.adopted_from = rec_data["adopted_from"]
                # A transition journaled by someone other than the job's
                # submitter is the durable trace of a handoff.
                by = rec_data.get("by")
                if by and rec.owner and by != rec.owner:
                    rec.taken_over_by = by
        # Jobs this process submitted that never reached the journal
        # (degraded writes): fold them in so they still execute.
        for job_id in self._mem_order:
            if job_id not in jobs:
                jobs[job_id] = self._mem[job_id]
                order.append(job_id)
        return jobs, order

    def compact(self, jobs: dict[str, JobRecord],
                order: Sequence[str]) -> bool:
        """Fold the journal into the snapshot and truncate it."""
        ok = write_snapshot(
            self.directory / self.SNAPSHOT,
            {"jobs": [jobs[j].to_snapshot() for j in order if j in jobs]},
        )
        if ok:
            self.journal.reset()
            if METRICS.enabled:
                METRICS.counter_inc("repro_persist_compactions_total")
        return ok

    def _journal_state(self, rec: JobRecord, **extra) -> None:
        with self._lock:
            if self.owner is not None and not self._may_write():
                if METRICS.enabled:
                    METRICS.counter_inc(
                        "repro_persist_fenced_writes_total")
                return
            entry = {
                "kind": "state", "id": rec.job_id, "state": rec.state,
                "attempt": rec.attempts, **extra,
            }
            if self.owner is not None:
                entry["by"] = self.owner
                if self.lease.epoch:
                    entry["epoch"] = self.lease.epoch
            self.journal.append(entry)

    def _may_write(self) -> bool:
        """Write fence for cluster spools: a runner whose lease moved
        to another owner must not journal — its in-flight transitions
        are stale the moment a takeover's epoch supersedes them.  A
        missing/unreadable lease file never fences (single-node runs
        and degraded disks keep journaling)."""
        if self.fenced:
            return False
        holder = self.lease.holder()
        if holder is not None and holder != self.owner:
            self.fenced = True
            return False
        return True

    # ----- public state transitions (thread-safe) ---------------------------

    def mark_running(self, rec: JobRecord) -> None:
        """Journal the start of one execution attempt."""
        with self._lock:
            rec.attempts += 1
            rec.state = "running"
        self._journal_state(rec)

    def mark_done(self, rec: JobRecord, outcome: AnalysisOutcome) -> None:
        """Journal a terminal verdict for ``rec``."""
        with self._lock:
            rec.state = "done"
            rec.verdict = outcome.verdict.value
            rec.exit_code = outcome.exit_code
            rec.error = None
        self._journal_state(
            rec, verdict=rec.verdict, exit_code=rec.exit_code,
        )
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_jobs_done_total")

    def adopt_verdict(
        self,
        rec: JobRecord,
        verdict: str,
        exit_code: Optional[int],
        *,
        source: str,
    ) -> None:
        """Journal a terminal verdict copied from a peer replica.

        The dedupe half of journal handoff: a job that failed over to a
        surviving replica was already solved *there* — re-solving it here
        would be a duplicate solve for the same idempotency key, so the
        taker-over adopts the peer's journaled verdict instead.
        """
        with self._lock:
            rec.state = "done"
            rec.verdict = verdict
            rec.exit_code = exit_code
            rec.error = None
            rec.adopted_from = source
        self._journal_state(
            rec, verdict=verdict, exit_code=exit_code, adopted_from=source,
        )
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_jobs_adopted_total")

    def mark_failed(self, rec: JobRecord, error: str) -> None:
        """Journal a retryable failure (``repro batch resume`` retries it)."""
        with self._lock:
            rec.state = "failed"
            rec.error = error
        self._journal_state(rec, error=error)
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_retries_total")

    def mark_deadletter(self, rec: JobRecord, error: str) -> None:
        """Journal a permanent failure for operator attention."""
        with self._lock:
            rec.state = "deadletter"
            rec.error = error
        self._journal_state(rec, error=error)
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_deadletters_total")

    def requeue(self, rec: JobRecord) -> None:
        """Journal an interrupted job back to ``pending`` (at-least-once)."""
        with self._lock:
            rec.state = "pending"
            rec.recovered = True
        self._journal_state(rec, note="recovered")
        if METRICS.enabled:
            METRICS.counter_inc("repro_persist_recoveries_total")

    # ----- submission -------------------------------------------------------

    def submit(
        self,
        sources: Sequence[Union[str, tuple[str, str]]],
        *,
        backend: str = "smt",
        steps: int = 6,
        consts: Optional[dict[str, int]] = None,
        prove: bool = False,
        options: Optional[dict] = None,
    ) -> list[str]:
        """Journal jobs for later execution; returns their idempotency keys.

        ``sources`` are Buffy program texts, or ``(label, text)`` pairs.
        Resubmitting an identical spec is a no-op (same key, already
        journaled), so ``submit`` can be retried blindly after a crash.
        """
        with self._lock:
            jobs, _ = self.load()
            ids: list[str] = []
            # Capture the submitter's trace context once: jobs journaled
            # under an open span re-join that trace when executed later,
            # even by a different process after a crash.
            trace = TRACER.traceparent()
            for item in sources:
                label, source = item if isinstance(item, tuple) else (None, item)
                spec = {
                    "source": source, "backend": backend, "steps": steps,
                    "consts": dict(consts or {}), "prove": prove,
                    "options": dict(options or {}), "label": label,
                }
                job_id = job_id_for(spec)
                ids.append(job_id)
                if job_id in jobs:
                    continue  # idempotent resubmission
                rec = JobRecord(job_id=job_id, spec=spec, trace=trace,
                                owner=self.owner)
                jobs[job_id] = rec
                self._mem[job_id] = rec
                self._mem_order.append(job_id)
                entry = {"kind": "submit", "id": job_id, "spec": spec}
                if trace is not None:
                    entry["trace"] = trace
                if self.owner is not None:
                    entry["owner"] = self.owner
                self.journal.append(entry)
                if METRICS.enabled:
                    METRICS.counter_inc("repro_persist_jobs_submitted_total")
            self.journal.flush()
            return ids

    def submit_one(
        self,
        source: str,
        *,
        label: Optional[str] = None,
        backend: str = "smt",
        steps: int = 6,
        consts: Optional[dict[str, int]] = None,
        prove: bool = False,
        options: Optional[dict] = None,
    ) -> JobRecord:
        """Journal one job and return its live record (serve entry point).

        Idempotent like :meth:`submit`: resubmitting an identical spec
        returns the already-journaled record — a completed job answers
        straight from its journaled verdict.
        """
        with self._lock:
            ids = self.submit(
                [(label, source) if label else source],
                backend=backend, steps=steps, consts=consts, prove=prove,
                options=options,
            )
            rec = self._mem.get(ids[0])
            if rec is None:
                jobs, _ = self.load()
                rec = jobs[ids[0]]
                self._mem[rec.job_id] = rec
                self._mem_order.append(rec.job_id)
            return rec

    # ----- execution --------------------------------------------------------

    def _execute(self, rec: JobRecord) -> AnalysisOutcome:
        """Default executor: one :func:`repro.analyze` call per job."""
        from ..runtime.budget import Budget

        knobs = self._run_knobs
        budget = None
        if knobs.get("timeout"):
            budget = Budget(deadline_seconds=knobs["timeout"])
        return self.execute_record(
            rec, budget=budget, jobs=knobs.get("jobs"),
            certify=knobs.get("certify"),
        )

    def execute_record(
        self,
        rec: JobRecord,
        *,
        budget=None,
        escalation=None,
        jobs: Optional[int] = None,
        certify: Optional[bool] = None,
    ) -> AnalysisOutcome:
        """Run one journaled job's spec through :func:`repro.analyze`.

        The serve layer's execution primitive: callers supply their own
        budget/escalation (the overload ladder tightens both under
        saturation) while the job still answers its sub-queries from the
        batch's shared content-addressed result cache.
        """
        from ..analysis.facade import analyze

        spec = rec.spec
        config = None
        options = spec.get("options") or {}
        if options.get("capacity") or options.get("arrivals"):
            from ..compiler.symexec import EncodeConfig

            config = EncodeConfig(
                buffer_capacity=options.get("capacity", 6),
                arrivals_per_step=options.get("arrivals", 2),
            )
        return analyze(
            spec["source"],
            backend=spec.get("backend", "smt"),
            steps=spec.get("steps", 6),
            consts=spec.get("consts") or None,
            prove=bool(spec.get("prove")),
            budget=budget,
            escalation=escalation,
            jobs=jobs,
            cache=self.cache,
            certify=certify,
            config=config,
        )

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with seeded jitter (deterministic replays)."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return base * (1.0 + self._rng.random())

    def run(
        self,
        *,
        resume: bool = False,
        timeout: Optional[float] = None,
        jobs: Optional[int] = None,
        certify: Optional[bool] = None,
    ) -> BatchReport:
        """Execute every runnable job; requeue work orphaned by a crash.

        ``resume`` only changes bookkeeping strictness (it requires an
        existing journal); recovery itself is unconditional — *any*
        run first requeues jobs left ``running`` by a dead process.
        At-least-once semantics: a job is re-executed until a journaled
        ``done`` or ``deadletter`` record exists for it.
        """
        if resume and not (self.directory / self.JOURNAL).exists() \
                and not (self.directory / self.SNAPSHOT).exists():
            raise FileNotFoundError(
                f"nothing to resume: no journal in {self.directory}"
            )
        self._run_knobs = {
            "timeout": timeout, "jobs": jobs, "certify": certify,
        }
        # Test hook: deterministically SIGKILL this process after N jobs
        # complete, to exercise crash recovery end-to-end.
        kill_after = _kill_after_from_env()
        jobs_table, order = self.load()
        report = BatchReport()
        for job_id in order:
            rec = jobs_table[job_id]
            if rec.state == "running":
                # Orphaned by a crashed run: requeue (at-least-once).
                self.requeue(rec)
                report.recovered += 1
        executor = self._executor or self._execute
        completed_this_run = 0
        # Live-introspection sidecar: solver progress beacons land in
        # ``<dir>/progress/<job>.json`` where a detached ``repro top``
        # can watch them without any server process.
        progress_book = ProgressBook(self.directory / "progress")
        with BEACON.routed(progress_book.record):
            for job_id in order:
                rec = jobs_table[job_id]
                if rec.state in ("done", "deadletter"):
                    report.replayed += 1
                    continue
                # Re-adopt the trace journaled at submission: a resume
                # after SIGKILL continues the original request's trace
                # instead of starting a disconnected one.
                with TRACER.activate(rec.trace), \
                        TRACER.span("batch-job", job=rec.label,
                                    resumed=rec.recovered), \
                        progress_scope(rec.job_id):
                    while rec.state in ("pending", "failed"):
                        self.mark_running(rec)
                        try:
                            outcome = executor(rec)
                        except TRANSIENT_ERRORS as exc:
                            if rec.attempts >= self.max_attempts:
                                self.mark_deadletter(rec, repr(exc))
                                break
                            report.retries += 1
                            self.mark_failed(rec, repr(exc))
                            self._sleep(self._backoff(rec.attempts))
                        except Exception as exc:
                            # Permanent (parse/type errors, genuine bugs):
                            # retrying cannot help — deadletter immediately.
                            self.mark_deadletter(rec, repr(exc))
                            break
                        else:
                            report.executed += 1
                            self.mark_done(rec, outcome)
                            completed_this_run += 1
                            if kill_after and completed_this_run >= kill_after:
                                self.journal.flush()
                                _die_hard()
                            break
        report.records = [jobs_table[j] for j in order]
        self.journal.flush()
        try:
            journal_bytes = (self.directory / self.JOURNAL).stat().st_size
        except OSError:
            journal_bytes = 0
        if journal_bytes > self.compact_after_bytes:
            self.compact(jobs_table, order)
        return report

    def status(self) -> BatchReport:
        """The job table as the journal tells it, without executing.

        A job journaled ``running`` with no live run behind it was
        interrupted (crash, SIGKILL, server drain): it is flagged
        ``orphaned`` so reports show it distinctly from pending and
        done/failed work — ``repro batch resume`` will requeue it.
        """
        jobs_table, order = self.load()
        report = BatchReport(records=[jobs_table[j] for j in order])
        for rec in report.records:
            if rec.state == "running":
                rec.orphaned = True
        report.recovered = sum(1 for r in report.records if r.orphaned)
        lease_data = self.lease.read()
        if lease_data is not None:
            report.lease = {
                "owner": lease_data.get("owner"),
                "state": lease_data.get("state", "held"),
                "stale": self.lease.is_stale(lease_data),
                "taken_from": lease_data.get("taken_from"),
            }
        return report

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _kill_after_from_env() -> int:
    """The REPRO_BATCH_KILL_AFTER crash-test hook (0 = disabled)."""
    try:
        return max(0, int(os.environ.get("REPRO_BATCH_KILL_AFTER", "0")))
    except ValueError:
        return 0


def _die_hard() -> None:
    """SIGKILL this process *and* its process group.

    The hook models the whole machine dying mid-run, so any portfolio
    workers the run spawned must die with it — a worker that survived
    would both misrepresent the failure mode and keep the parent's
    inherited stdout/stderr pipes open, wedging a supervising process
    that waits for EOF.  Callers arming REPRO_BATCH_KILL_AFTER should
    start the run in its own session (``start_new_session=True``) so
    the group kill cannot reach the test harness itself.
    """
    try:
        os.killpg(os.getpgid(0), signal.SIGKILL)
    except OSError:
        pass
    os.kill(os.getpid(), signal.SIGKILL)


def analyze_many(
    programs: Sequence[Union[str, tuple[str, str]]],
    *,
    backend: str = "smt",
    steps: int = 6,
    consts: Optional[dict[str, int]] = None,
    prove: bool = False,
    journal_dir: Optional[Union[str, Path]] = None,
    max_attempts: int = 3,
    timeout: Optional[float] = None,
    jobs: Optional[int] = None,
    certify: Optional[bool] = None,
    options: Optional[dict] = None,
) -> list[AnalysisOutcome]:
    """Analyze many programs; with ``journal_dir``, durably.

    Without a journal directory this is a plain loop over
    :func:`repro.analyze`.  With one, jobs are journaled and executed
    through a :class:`BatchRunner`: a killed process can re-invoke
    ``analyze_many`` with the same directory and finish exactly the
    work that is missing — completed jobs replay their journaled
    verdicts, interrupted ones re-execute against the shared result
    cache.  Outcomes are returned in input order.
    """
    if journal_dir is None:
        from ..analysis.facade import analyze
        from ..runtime.budget import Budget

        out = []
        for item in programs:
            _, source = item if isinstance(item, tuple) else (None, item)
            budget = Budget(deadline_seconds=timeout) if timeout else None
            out.append(analyze(
                source, backend=backend, steps=steps, consts=consts,
                prove=prove, budget=budget, jobs=jobs, certify=certify,
            ))
        return out

    with BatchRunner(journal_dir, max_attempts=max_attempts) as runner:
        ids = runner.submit(
            programs, backend=backend, steps=steps, consts=consts,
            prove=prove, options=options,
        )
        report = runner.run(timeout=timeout, jobs=jobs, certify=certify)
        by_id = {rec.job_id: rec for rec in report.records}
        singles = BatchReport(records=[by_id[i] for i in ids])
        return singles.outcomes()
