"""Concrete (executable) buffer models at the two precision levels.

* :class:`ListBuffer` — FPerf-style: an ordered queue of packets.
* :class:`CounterBuffer` — CCAC-style: per-flow packet/byte counters,
  no intra-buffer ordering.

Both implement :class:`repro.buffers.base.ConcreteBufferModel`, so the
reference interpreter can run a Buffy program against either precision
level without changes — the paper's "plug-in models" design (§3).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .base import BufferStats, ConcreteBufferModel
from .packets import Packet


class ListBuffer(ConcreteBufferModel):
    """Full-precision buffer: an ordered list of packets."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.stats = BufferStats()
        self._packets: deque[Packet] = deque()

    def __len__(self) -> int:
        return len(self._packets)

    def packets(self) -> list[Packet]:
        return list(self._packets)

    def backlog_p(self, fieldname: Optional[str] = None,
                  value: Optional[int] = None) -> int:
        if fieldname is None:
            return len(self._packets)
        return sum(1 for p in self._packets if p.matches(fieldname, value))

    def backlog_b(self, fieldname: Optional[str] = None,
                  value: Optional[int] = None) -> int:
        if fieldname is None:
            return sum(p.size for p in self._packets)
        return sum(p.size for p in self._packets if p.matches(fieldname, value))

    def enqueue(self, packet: Packet) -> bool:
        if self.capacity is not None and len(self._packets) >= self.capacity:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return False
        self._packets.append(packet)
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size
        return True

    def dequeue_packets(self, count: int) -> list[Packet]:
        out: list[Packet] = []
        for _ in range(max(0, count)):
            if not self._packets:
                break
            packet = self._packets.popleft()
            out.append(packet)
            self.stats.dequeued_packets += 1
            self.stats.dequeued_bytes += packet.size
        return out

    def dequeue_bytes(self, count: int) -> list[Packet]:
        out: list[Packet] = []
        remaining = max(0, count)
        while self._packets and self._packets[0].size <= remaining:
            packet = self._packets.popleft()
            remaining -= packet.size
            out.append(packet)
            self.stats.dequeued_packets += 1
            self.stats.dequeued_bytes += packet.size
        return out

    def snapshot(self) -> tuple:
        return tuple((p.flow, p.size) for p in self._packets)


class CounterBuffer(ConcreteBufferModel):
    """Count-precision buffer: per-flow packet and byte totals.

    Ordering inside the buffer is abstracted away; dequeues drain flows
    in ascending flow-id order (a fixed, documented policy so concrete
    runs are deterministic).  Queries that depend on packet order are
    outside this model's precision — see the precision ablation
    (experiment A1 in DESIGN.md).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.stats = BufferStats()
        self._packet_counts: dict[int, int] = {}
        self._byte_counts: dict[int, int] = {}

    def backlog_p(self, fieldname: Optional[str] = None,
                  value: Optional[int] = None) -> int:
        if fieldname is None:
            return sum(self._packet_counts.values())
        if fieldname != "flow":
            raise ValueError(
                f"counter model only tracks the 'flow' field, not {fieldname!r}"
            )
        return self._packet_counts.get(value, 0)

    def backlog_b(self, fieldname: Optional[str] = None,
                  value: Optional[int] = None) -> int:
        if fieldname is None:
            return sum(self._byte_counts.values())
        if fieldname != "flow":
            raise ValueError(
                f"counter model only tracks the 'flow' field, not {fieldname!r}"
            )
        return self._byte_counts.get(value, 0)

    def enqueue(self, packet: Packet) -> bool:
        if self.capacity is not None and self.backlog_p() >= self.capacity:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return False
        self._packet_counts[packet.flow] = (
            self._packet_counts.get(packet.flow, 0) + 1
        )
        self._byte_counts[packet.flow] = (
            self._byte_counts.get(packet.flow, 0) + packet.size
        )
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size
        return True

    def _take_one(self, flow: int) -> Packet:
        count = self._packet_counts[flow]
        total_bytes = self._byte_counts[flow]
        # Reconstruct a representative packet with the average size
        # (exact when all packets in the flow share a size).
        size = total_bytes // count
        self._packet_counts[flow] = count - 1
        self._byte_counts[flow] = total_bytes - size
        if self._packet_counts[flow] == 0:
            del self._packet_counts[flow]
            del self._byte_counts[flow]
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += size
        return Packet(flow=flow, size=size)

    def dequeue_packets(self, count: int) -> list[Packet]:
        out: list[Packet] = []
        for _ in range(max(0, count)):
            flows = sorted(self._packet_counts)
            if not flows:
                break
            out.append(self._take_one(flows[0]))
        return out

    def dequeue_bytes(self, count: int) -> list[Packet]:
        out: list[Packet] = []
        remaining = max(0, count)
        while True:
            flows = sorted(self._packet_counts)
            if not flows:
                break
            flow = flows[0]
            size = self._byte_counts[flow] // self._packet_counts[flow]
            if size > remaining:
                break
            out.append(self._take_one(flow))
            remaining -= size
        return out

    def snapshot(self) -> tuple:
        return tuple(sorted(self._packet_counts.items()))
