"""Symbolic buffer and list models over SMT terms.

These are the "plug-in buffer models at various precision levels" of
§3.  Each model maintains its state as SMT *terms* (not variables):
mutations build ``ite`` terms guarded by the symbolic execution's path
guard, so no merging pass is needed and the encoding stays a pure
dataflow DAG.  Fresh variables appear only where the paper's method
introduces nondeterminism — input traffic and ``havoc``.

* :class:`SymbolicList` — bounded FIFO of ints (``new_queues`` /
  ``old_queues`` pointer lists).
* :class:`SymbolicListBuffer` — packet-list precision (FPerf-style):
  every slot tracks a flow id and a size.
* :class:`SymbolicCounterBuffer` — count precision (CCAC-style):
  per-flow packet counters, intra-buffer order abstracted away;
  packet sizes are a per-model constant ``unit_size``.

Both buffer models share the interface the symbolic executor consumes:
``backlog_p`` / ``backlog_b`` / ``enqueue`` / ``dequeue_packets`` /
``dequeue_bytes`` plus cumulative statistics terms (``deq_p`` etc.)
that back monitors and queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..smt.terms import (
    FALSE,
    ONE,
    TRUE,
    ZERO,
    Term,
    mk_and,
    mk_bool_to_int,
    mk_eq,
    mk_int,
    mk_ite,
    mk_le,
    mk_lt,
    mk_max,
    mk_min,
    mk_not,
    mk_or,
    mk_sum,
)


def gite(guard: Term, then: Term, els: Term) -> Term:
    """Guarded update: ``ite(guard, then, els)``."""
    return mk_ite(guard, then, els)


class SymbolicList:
    """A bounded FIFO list of integers with ``-1`` as the empty sentinel.

    Semantics match the concrete interpreter: ``pop_front`` on an empty
    list returns ``-1`` and leaves the list unchanged; ``push_back`` on
    a full list is a no-op but raises the ``overflowed`` flag, which
    back ends may assert never fires (capacity adequacy check).
    """

    def __init__(self, capacity: int, name: str = "list"):
        if capacity <= 0:
            raise ValueError("list capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.elems: list[Term] = [mk_int(-1)] * capacity
        self.length: Term = ZERO
        self.overflowed: Term = FALSE

    def push_back(self, value: Term, guard: Term) -> None:
        has_room = mk_lt(self.length, mk_int(self.capacity))
        can = mk_and(guard, has_room)
        self.overflowed = mk_or(
            self.overflowed, mk_and(guard, mk_not(has_room))
        )
        for i in range(self.capacity):
            at_slot = mk_and(can, mk_eq(self.length, mk_int(i)))
            self.elems[i] = gite(at_slot, value, self.elems[i])
        self.length = self.length + mk_bool_to_int(can)

    def pop_front(self, guard: Term) -> Term:
        nonempty = mk_lt(ZERO, self.length)
        result = gite(nonempty, self.elems[0], mk_int(-1))
        do_pop = mk_and(guard, nonempty)
        for i in range(self.capacity - 1):
            self.elems[i] = gite(do_pop, self.elems[i + 1], self.elems[i])
        self.elems[-1] = gite(do_pop, mk_int(-1), self.elems[-1])
        self.length = self.length - mk_bool_to_int(do_pop)
        return result

    def has(self, value: Term) -> Term:
        hits = [
            mk_and(mk_lt(mk_int(i), self.length), mk_eq(self.elems[i], value))
            for i in range(self.capacity)
        ]
        return mk_or(*hits) if hits else FALSE

    def havoc(self, prefix: str, value_range: tuple[int, int],
              bounds: dict[str, tuple[int, int]]) -> None:
        """Replace contents with fresh variables (structured havoc, §6.1).

        The list keeps its fixed shape — ``capacity`` slots plus a
        length in ``[0, capacity]`` — which is exactly the "sequences of
        fixed shape and size with integer havoc variables inside" the
        paper needed to make Dafny analysis tractable.
        """
        from ..smt.terms import mk_int_var

        self.elems = []
        for i in range(self.capacity):
            var = mk_int_var(f"{prefix}.elem{i}")
            bounds[var.name] = value_range
            self.elems.append(var)
        length = mk_int_var(f"{prefix}.len")
        bounds[length.name] = (0, self.capacity)
        self.length = length
        self.overflowed = FALSE

    def empty(self) -> Term:
        return mk_eq(self.length, ZERO)

    def len_term(self) -> Term:
        return self.length


@dataclass
class SymbolicPacket:
    """A symbolic packet: flow/size terms plus the guard under which it exists.

    ``bulk`` is set by the counter model's bulk transfers: the packet
    then stands for ``bulk`` identical packets of the same class.
    """

    flow: Term
    size: Term
    present: Term
    bulk: Optional[Term] = None


@dataclass
class BufferStatTerms:
    """Cumulative statistics as terms (monitor observables)."""

    enq_p: Term = ZERO
    enq_b: Term = ZERO
    deq_p: Term = ZERO
    deq_b: Term = ZERO
    drop_p: Term = ZERO
    drop_b: Term = ZERO


class SymbolicBufferModel:
    """Interface shared by the two symbolic precision levels."""

    name: str
    stats: BufferStatTerms

    def backlog_p(self, fieldname: Optional[str] = None,
                  value: Optional[Term] = None) -> Term:
        raise NotImplementedError

    def backlog_b(self, fieldname: Optional[str] = None,
                  value: Optional[Term] = None) -> Term:
        raise NotImplementedError

    def enqueue(self, packet: SymbolicPacket) -> None:
        raise NotImplementedError

    def dequeue_packets(self, count: Term, guard: Term) -> list[SymbolicPacket]:
        raise NotImplementedError

    def dequeue_bytes(self, count: Term, guard: Term) -> list[SymbolicPacket]:
        raise NotImplementedError

    def drain_all(self, guard: Term) -> list[SymbolicPacket]:
        return self.dequeue_packets(mk_int(self.max_drain()), guard)

    def max_drain(self) -> int:
        """Static bound on how many packets one drain can yield."""
        raise NotImplementedError


class SymbolicListBuffer(SymbolicBufferModel):
    """Packet-list precision: slots of (flow, size) with a length term."""

    def __init__(self, capacity: int, name: str = "buffer"):
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.flows: list[Term] = [mk_int(-1)] * capacity
        self.sizes: list[Term] = [ZERO] * capacity
        self.length: Term = ZERO
        self.stats = BufferStatTerms()

    def max_drain(self) -> int:
        return self.capacity

    # ----- queries ----------------------------------------------------------

    def _slot_matches(self, i: int, fieldname: Optional[str],
                      value: Optional[Term]) -> Term:
        in_range = mk_lt(mk_int(i), self.length)
        if fieldname is None:
            return in_range
        if fieldname == "flow":
            return mk_and(in_range, mk_eq(self.flows[i], value))
        if fieldname == "size":
            return mk_and(in_range, mk_eq(self.sizes[i], value))
        raise ValueError(f"unknown packet field {fieldname!r}")

    def backlog_p(self, fieldname=None, value=None) -> Term:
        if fieldname is None:
            return self.length
        return mk_sum(
            [mk_bool_to_int(self._slot_matches(i, fieldname, value))
             for i in range(self.capacity)]
        )

    def backlog_b(self, fieldname=None, value=None) -> Term:
        return mk_sum(
            [mk_ite(self._slot_matches(i, fieldname, value), self.sizes[i], ZERO)
             for i in range(self.capacity)]
        )

    # ----- mutation ------------------------------------------------------------

    def enqueue(self, packet: SymbolicPacket) -> None:
        has_room = mk_lt(self.length, mk_int(self.capacity))
        can = mk_and(packet.present, has_room)
        dropped = mk_and(packet.present, mk_not(has_room))
        for i in range(self.capacity):
            at_slot = mk_and(can, mk_eq(self.length, mk_int(i)))
            self.flows[i] = gite(at_slot, packet.flow, self.flows[i])
            self.sizes[i] = gite(at_slot, packet.size, self.sizes[i])
        self.length = self.length + mk_bool_to_int(can)
        self.stats.enq_p = self.stats.enq_p + mk_bool_to_int(can)
        self.stats.enq_b = self.stats.enq_b + gite(can, packet.size, ZERO)
        self.stats.drop_p = self.stats.drop_p + mk_bool_to_int(dropped)
        self.stats.drop_b = self.stats.drop_b + gite(dropped, packet.size, ZERO)

    def _shift_out(self, k: Term) -> None:
        """Remove the first ``k`` packets (0 <= k <= length) by shifting."""
        new_flows: list[Term] = []
        new_sizes: list[Term] = []
        for i in range(self.capacity):
            flow_i = mk_int(-1)
            size_i = ZERO
            # Select element i+k via an ite chain over the possible shifts,
            # highest shift first so lower (more likely) shifts end up outermost.
            for shift in range(self.capacity - i, -1, -1):
                src = i + shift
                src_flow = self.flows[src] if src < self.capacity else mk_int(-1)
                src_size = self.sizes[src] if src < self.capacity else ZERO
                cond = mk_eq(k, mk_int(shift))
                flow_i = gite(cond, src_flow, flow_i)
                size_i = gite(cond, src_size, size_i)
            new_flows.append(flow_i)
            new_sizes.append(size_i)
        self.flows = new_flows
        self.sizes = new_sizes
        self.length = self.length - k

    def _take(self, k: Term, guard: Term) -> list[SymbolicPacket]:
        taken = [
            SymbolicPacket(
                flow=self.flows[j],
                size=self.sizes[j],
                present=mk_and(guard, mk_lt(mk_int(j), k)),
            )
            for j in range(self.capacity)
        ]
        bytes_taken = mk_sum(
            [gite(p.present, p.size, ZERO) for p in taken]
        )
        actual_k = gite(guard, k, ZERO)
        self._shift_out(actual_k)
        self.stats.deq_p = self.stats.deq_p + actual_k
        self.stats.deq_b = self.stats.deq_b + bytes_taken
        return taken

    def havoc(self, prefix: str, flow_range: tuple[int, int],
              size_range: tuple[int, int], stat_bound: int,
              bounds: dict[str, tuple[int, int]]) -> None:
        """Replace contents and statistics with fresh bounded variables."""
        from ..smt.terms import mk_int_var

        self.flows = []
        self.sizes = []
        for i in range(self.capacity):
            flow = mk_int_var(f"{prefix}.flow{i}")
            size = mk_int_var(f"{prefix}.size{i}")
            bounds[flow.name] = flow_range
            bounds[size.name] = size_range
            self.flows.append(flow)
            self.sizes.append(size)
        length = mk_int_var(f"{prefix}.len")
        bounds[length.name] = (0, self.capacity)
        self.length = length
        self.stats = _havoc_stats(prefix, stat_bound, bounds)

    def dequeue_packets(self, count: Term, guard: Term) -> list[SymbolicPacket]:
        k = mk_min(mk_max(count, ZERO), self.length)
        return self._take(k, guard)

    def dequeue_bytes(self, count: Term, guard: Term) -> list[SymbolicPacket]:
        # k = number of whole head packets whose cumulative size fits in count.
        budget = mk_max(count, ZERO)
        prefix = ZERO
        k = ZERO
        fits_so_far = TRUE
        for j in range(self.capacity):
            prefix = prefix + gite(
                mk_lt(mk_int(j), self.length), self.sizes[j], ZERO
            )
            fits_so_far = mk_and(
                fits_so_far,
                mk_lt(mk_int(j), self.length),
                mk_le(prefix, budget),
            )
            k = k + mk_bool_to_int(fits_so_far)
        return self._take(k, guard)


def _havoc_stats(prefix: str, stat_bound: int,
                 bounds: dict[str, tuple[int, int]]) -> BufferStatTerms:
    from ..smt.terms import mk_int_var

    stats = BufferStatTerms()
    for attr in ("enq_p", "enq_b", "deq_p", "deq_b", "drop_p", "drop_b"):
        var = mk_int_var(f"{prefix}.{attr}")
        bounds[var.name] = (0, stat_bound)
        setattr(stats, attr, var)
    return stats


class SymbolicCounterBuffer(SymbolicBufferModel):
    """Count precision: per-flow packet counters (CCAC-style).

    * Intra-buffer packet order is abstracted away; dequeues drain
      flow classes in ascending id order (matching
      :class:`repro.buffers.concrete.CounterBuffer`).
    * All packets share the constant ``unit_size`` bytes, so byte
      backlogs are derived from packet counts (CCAC's token-bucket
      reasoning is in these units).
    """

    def __init__(self, n_flows: int, capacity: Optional[int] = None,
                 name: str = "buffer", unit_size: int = 1):
        if n_flows <= 0:
            raise ValueError("counter model needs at least one flow class")
        self.n_flows = n_flows
        self.capacity = capacity
        self.name = name
        self.unit_size = unit_size
        self.counts: list[Term] = [ZERO] * n_flows
        self.stats = BufferStatTerms()

    def max_drain(self) -> int:
        if self.capacity is None:
            raise ValueError(
                f"counter buffer {self.name!r} needs a capacity to be drained"
            )
        return self.capacity

    def total(self) -> Term:
        return mk_sum(self.counts)

    def backlog_p(self, fieldname=None, value=None) -> Term:
        if fieldname is None:
            return self.total()
        if fieldname != "flow":
            raise ValueError(
                f"counter model only tracks the 'flow' field, not {fieldname!r}"
            )
        return mk_sum(
            [
                gite(mk_eq(value, mk_int(f)), self.counts[f], ZERO)
                for f in range(self.n_flows)
            ]
        )

    def backlog_b(self, fieldname=None, value=None) -> Term:
        return self.backlog_p(fieldname, value) * mk_int(self.unit_size)

    def enqueue(self, packet: SymbolicPacket) -> None:
        has_room = (
            TRUE
            if self.capacity is None
            else mk_lt(self.total(), mk_int(self.capacity))
        )
        can = mk_and(packet.present, has_room)
        dropped = mk_and(packet.present, mk_not(has_room))
        for f in range(self.n_flows):
            inc = mk_bool_to_int(mk_and(can, mk_eq(packet.flow, mk_int(f))))
            self.counts[f] = self.counts[f] + inc
        self.stats.enq_p = self.stats.enq_p + mk_bool_to_int(can)
        self.stats.enq_b = self.stats.enq_b + gite(
            can, mk_int(self.unit_size), ZERO
        )
        self.stats.drop_p = self.stats.drop_p + mk_bool_to_int(dropped)
        self.stats.drop_b = self.stats.drop_b + gite(
            dropped, mk_int(self.unit_size), ZERO
        )

    def havoc(self, prefix: str, stat_bound: int,
              bounds: dict[str, tuple[int, int]]) -> None:
        """Replace per-flow counters and statistics with fresh variables."""
        from ..smt.terms import mk_int_var

        cap = self.capacity if self.capacity is not None else stat_bound
        self.counts = []
        for f in range(self.n_flows):
            var = mk_int_var(f"{prefix}.count{f}")
            bounds[var.name] = (0, cap)
            self.counts.append(var)
        self.stats = _havoc_stats(prefix, stat_bound, bounds)

    def dequeue_packets(self, count: Term, guard: Term) -> list[SymbolicPacket]:
        k = gite(guard, mk_min(mk_max(count, ZERO), self.total()), ZERO)
        remaining = k
        out: list[SymbolicPacket] = []
        for f in range(self.n_flows):
            take = mk_min(remaining, self.counts[f])
            self.counts[f] = self.counts[f] - take
            remaining = remaining - take
            out.append(
                SymbolicPacket(
                    flow=mk_int(f),
                    size=mk_int(self.unit_size),
                    present=mk_lt(ZERO, take),
                    bulk=take,
                )
            )
        self.stats.deq_p = self.stats.deq_p + k
        self.stats.deq_b = self.stats.deq_b + k * mk_int(self.unit_size)
        return out

    def dequeue_bytes(self, count: Term, guard: Term) -> list[SymbolicPacket]:
        if self.unit_size != 1:
            raise ValueError(
                "counter-model dequeue_bytes requires unit_size == 1"
                " (division-free encoding); rescale your byte budgets"
            )
        return self.dequeue_packets(count, guard)

    def enqueue_bulk(self, flow: int, count: Term) -> None:
        """Receive ``count`` packets of one class (counter→counter moves)."""
        if self.capacity is None:
            accepted = mk_max(count, ZERO)
        else:
            room = mk_int(self.capacity) - self.total()
            accepted = mk_min(mk_max(count, ZERO), mk_max(room, ZERO))
        dropped = mk_max(count, ZERO) - accepted
        self.counts[flow] = self.counts[flow] + accepted
        self.stats.enq_p = self.stats.enq_p + accepted
        self.stats.enq_b = self.stats.enq_b + accepted * mk_int(self.unit_size)
        self.stats.drop_p = self.stats.drop_p + dropped
        self.stats.drop_b = self.stats.drop_b + dropped * mk_int(self.unit_size)
