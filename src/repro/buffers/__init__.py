"""Packet buffers: one interface, plug-in precision levels (§3)."""

from .base import BufferStats, ConcreteBufferModel
from .concrete import CounterBuffer, ListBuffer
from .packets import Packet
from .symbolic import (
    SymbolicBufferModel,
    SymbolicCounterBuffer,
    SymbolicList,
    SymbolicListBuffer,
    SymbolicPacket,
)

__all__ = [
    "BufferStats", "ConcreteBufferModel", "CounterBuffer", "ListBuffer",
    "Packet", "SymbolicBufferModel", "SymbolicCounterBuffer",
    "SymbolicList", "SymbolicListBuffer", "SymbolicPacket",
]
