"""Packets: the unit of data moving between Buffy buffers.

The list-precision buffer model tracks individual packets.  Every
packet carries integer fields; ``flow`` (traffic class / input index)
and ``size`` (bytes) are always present, mirroring the fields Buffy
filters may reference (``B |> flow == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class Packet:
    """An immutable packet with integer fields."""

    flow: int = 0
    size: int = 1
    extra: tuple = ()  # extra (field, value) pairs, sorted

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("packet size must be non-negative")

    @classmethod
    def of(cls, flow: int = 0, size: int = 1, **fields: int) -> "Packet":
        return cls(flow=flow, size=size, extra=tuple(sorted(fields.items())))

    def get(self, fieldname: str) -> int:
        if fieldname == "flow":
            return self.flow
        if fieldname == "size":
            return self.size
        for name, value in self.extra:
            if name == fieldname:
                return value
        raise KeyError(f"packet has no field {fieldname!r}")

    def matches(self, fieldname: str, value: int) -> bool:
        """Does this packet pass the filter ``fieldname == value``?"""
        try:
            return self.get(fieldname) == value
        except KeyError:
            return False

    def __repr__(self) -> str:
        extras = "".join(f", {k}={v}" for k, v in self.extra)
        return f"Packet(flow={self.flow}, size={self.size}{extras})"
