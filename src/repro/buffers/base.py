"""The abstract buffer interface: one API, plug-in precision levels.

§3 of the paper: "we provide a unified set of operations over the
buffers in the language regardless of the abstraction level, [but]
support backend implementations with different levels of precision."

Concrete models (this package) implement the interface over Python
state and back the reference interpreter; symbolic models implement the
same operations over SMT terms and back the compiler
(:mod:`repro.compiler.symexec`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from .packets import Packet


@dataclass
class BufferStats:
    """Cumulative per-buffer statistics (monitor-style observables)."""

    enqueued_packets: int = 0
    enqueued_bytes: int = 0
    dequeued_packets: int = 0
    dequeued_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0


class ConcreteBufferModel(abc.ABC):
    """Executable buffer semantics used by the reference interpreter."""

    capacity: Optional[int]
    stats: BufferStats

    @abc.abstractmethod
    def backlog_p(self, fieldname: Optional[str] = None,
                  value: Optional[int] = None) -> int:
        """Packets in the buffer (optionally restricted to a filter)."""

    @abc.abstractmethod
    def backlog_b(self, fieldname: Optional[str] = None,
                  value: Optional[int] = None) -> int:
        """Bytes in the buffer (optionally restricted to a filter)."""

    @abc.abstractmethod
    def enqueue(self, packet: Packet) -> bool:
        """Add a packet at the tail; False (and a drop) when full."""

    @abc.abstractmethod
    def dequeue_packets(self, count: int) -> list[Packet]:
        """Remove up to ``count`` packets from the head."""

    @abc.abstractmethod
    def dequeue_bytes(self, count: int) -> list[Packet]:
        """Remove whole head packets totalling at most ``count`` bytes."""

    @abc.abstractmethod
    def snapshot(self) -> tuple:
        """A hashable summary of current contents (tests, trace dumps)."""

    def flush_in(self, packets: Sequence[Packet]) -> int:
        """Enqueue a batch (composition flush); returns packets accepted."""
        accepted = 0
        for packet in packets:
            if self.enqueue(packet):
                accepted += 1
        return accepted

    def drain_all(self) -> list[Packet]:
        """Remove everything (used when flushing outputs to a neighbour)."""
        return self.dequeue_packets(self.backlog_p())
