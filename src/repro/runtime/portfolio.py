"""Retry-with-escalation portfolio policy for UNKNOWN solver answers.

When a query exhausts its *per-call* conflict cap, giving up outright
wastes what the budget still allows.  The portfolio re-runs the query
(on the already bit-blasted CNF) with a **varied CDCL configuration** —
restarts toggled, VSIDS decay changed, phase saving flipped — and a
geometrically larger conflict slice, the standard algorithm-portfolio
move solvers like Z3 apply before reporting unknown.  A *hard* budget
exhaustion (deadline, cumulative conflict cap, cancellation) is never
retried: the overall budget always wins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..smt.sat.cdcl import CDCLConfig


@dataclass(frozen=True)
class EscalationPolicy:
    """How far, and how, to escalate before accepting UNKNOWN.

    ``max_attempts`` counts every run including the first; the ladder
    therefore yields ``max_attempts - 1`` variant configurations.
    ``conflict_growth`` scales the per-call conflict cap each retry.
    """

    max_attempts: int = 3
    conflict_growth: float = 2.0

    def ladder(self, base: Optional[CDCLConfig]) -> list[CDCLConfig]:
        """Variant configurations for retries, in escalation order."""
        base = base or CDCLConfig()
        variants: list[CDCLConfig] = []
        for i in range(max(0, self.max_attempts - 1)):
            cfg = self._vary(base, i)
            if base.max_conflicts is not None:
                cfg = replace(
                    cfg,
                    max_conflicts=max(
                        1,
                        int(base.max_conflicts * self.conflict_growth ** (i + 1)),
                    ),
                )
            variants.append(cfg)
        return variants

    @staticmethod
    def _vary(base: CDCLConfig, step: int) -> CDCLConfig:
        # Cycle through orthogonal heuristic flips so consecutive
        # attempts explore genuinely different search trajectories.
        kind = step % 3
        if kind == 0:
            return replace(base, use_restarts=not base.use_restarts)
        if kind == 1:
            decay = 0.999 if base.var_decay < 0.99 else 0.85
            return replace(
                base,
                var_decay=decay,
                use_phase_saving=not base.use_phase_saving,
            )
        return replace(base, restart_base=max(1, base.restart_base * 4))
