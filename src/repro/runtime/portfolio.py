"""Retry-with-escalation portfolio policy for UNKNOWN solver answers.

When a query exhausts its *per-call* conflict cap, giving up outright
wastes what the budget still allows.  The portfolio re-runs the query
(on the already bit-blasted CNF) with a **varied CDCL configuration** —
restarts toggled, VSIDS decay changed, phase saving flipped — and a
geometrically larger conflict slice, the standard algorithm-portfolio
move solvers like Z3 apply before reporting unknown.  A *hard* budget
exhaustion (deadline, cumulative conflict cap, cancellation) is never
retried: the overall budget always wins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ..smt.sat.cdcl import CDCLConfig

if TYPE_CHECKING:
    from .budget import Budget


@dataclass(frozen=True)
class EscalationPolicy:
    """How far, and how, to escalate before accepting UNKNOWN.

    ``max_attempts`` counts every run including the first; the ladder
    therefore yields ``max_attempts - 1`` variant configurations.
    ``conflict_growth`` scales the per-call conflict cap each retry.
    """

    max_attempts: int = 3
    conflict_growth: float = 2.0

    def ladder(
        self, base: Optional[CDCLConfig], budget: Optional["Budget"] = None,
    ) -> list[CDCLConfig]:
        """Variant configurations for retries, in escalation order.

        With a ``budget`` whose wall clock is already spent, the ladder
        is empty: a doomed rung is never even constructed.  (Per-rung
        affordability during the climb is checked by
        :meth:`can_afford`, which knows the previous rung's cost.)
        """
        base = base or CDCLConfig()
        if budget is not None and budget.exhausted() is not None:
            return []
        variants: list[CDCLConfig] = []
        for i in range(max(0, self.max_attempts - 1)):
            cfg = self._vary(base, i)
            if base.max_conflicts is not None:
                cfg = replace(
                    cfg,
                    max_conflicts=max(
                        1,
                        int(base.max_conflicts * self.conflict_growth ** (i + 1)),
                    ),
                )
            variants.append(cfg)
        return variants

    @staticmethod
    def can_afford(
        budget: Optional["Budget"], min_expected_seconds: float
    ) -> bool:
        """Whether the remaining wall-clock budget can pay for a rung.

        ``min_expected_seconds`` is a floor on the rung's cost — callers
        pass the previous rung's elapsed time, since every later rung
        has a geometrically *larger* conflict slice and therefore runs
        at least as long before giving up.  Skipping a rung the budget
        cannot pay for turns "start, burn the tail of the deadline,
        report DEADLINE" into an immediate honest UNKNOWN.
        """
        if budget is None:
            return True
        if budget.exhausted() is not None:
            return False
        remaining = budget.remaining_seconds()
        if remaining is None:
            return True
        return remaining > min_expected_seconds

    @staticmethod
    def _vary(base: CDCLConfig, step: int) -> CDCLConfig:
        # Cycle through orthogonal heuristic flips so consecutive
        # attempts explore genuinely different search trajectories.
        kind = step % 3
        if kind == 0:
            return replace(base, use_restarts=not base.use_restarts)
        if kind == 1:
            decay = 0.999 if base.var_decay < 0.99 else 0.85
            return replace(
                base,
                var_decay=decay,
                use_phase_saving=not base.use_phase_saving,
            )
        return replace(base, restart_base=max(1, base.restart_base * 4))
