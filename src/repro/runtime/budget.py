"""Resource budgets and structured exhaustion reporting.

Every solver call in the repository can run under a :class:`Budget`: a
wall-clock deadline plus caps on conflicts, learned clauses (the CDCL
memory proxy) and solver invocations.  The budget is checked
*cooperatively* — the CDCL search loop, the bit-blaster, interval
inference and the symbolic executor all poll it at natural safepoints —
so a hard formula can no longer hang an analysis: the pipeline stops
within one safepoint interval of the deadline and reports **UNKNOWN**
together with a :class:`ResourceReport` saying exactly which resource
ran out and what had been spent.

Layering: this module is the bottom of the runtime layer and imports
nothing from the rest of the package, so :mod:`repro.smt` can depend
on it without cycles.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


class ExhaustionReason(enum.Enum):
    """Why a governed computation stopped early."""

    DEADLINE = "deadline"            # wall-clock deadline passed
    CONFLICTS = "conflicts"          # CDCL conflict cap reached
    MEMORY = "memory"                # learned-clause (memory) cap reached
    SOLVER_CALLS = "solver-calls"    # per-budget solver-invocation cap
    CANCELLED = "cancelled"          # Budget.cancel() was called
    INJECTED = "injected"            # chaos harness returned UNKNOWN
    FAULT = "fault"                  # solver raised an (injected) fault
    QUARANTINED = "quarantined"      # query killed 2 portfolio workers
    CERTIFICATION_FAILED = "certification_failed"  # UNSAT proof rejected


@dataclass
class ResourceReport:
    """Structured account of an exhausted (or faulted) solver run.

    Propagated with every UNKNOWN result so callers can distinguish
    "the query is beyond the decision procedure" (never the case for
    this complete pipeline) from "a resource ran out", and render the
    spend to users.
    """

    reason: ExhaustionReason
    message: str = ""
    elapsed_seconds: float = 0.0
    deadline_seconds: Optional[float] = None
    conflicts: int = 0
    max_conflicts: Optional[int] = None
    learned_clauses: int = 0
    max_learned_clauses: Optional[int] = None
    solver_calls: int = 0
    max_solver_calls: Optional[int] = None
    attempts: int = 1
    # Result-cache counters (repro.engine.cache), when a cache was used.
    cache_hits: int = 0
    cache_misses: int = 0
    # Portfolio slots cooperatively cancelled in the last parallel solve
    # (losers of a first-wins race, or survivors of a timed-out one).
    cancelled_slots: int = 0
    # Pool supervision (repro.engine.parallel): workers respawned after
    # dying/hanging, and queries quarantined after repeated worker loss.
    workers_respawned: int = 0
    quarantined_queries: int = 0
    # Trust layer (repro.trust): DRAT certificates checked and rejected.
    proofs_checked: int = 0
    proofs_failed: int = 0

    def describe(self) -> str:
        """Human-readable rendering (used by the CLI)."""
        lines = [f"resource budget exhausted: {self.reason.value}"]
        if self.message:
            lines.append(f"  where: {self.message}")

        def cap(limit: Optional[object]) -> str:
            return "unbounded" if limit is None else str(limit)

        if self.deadline_seconds is not None or self.elapsed_seconds:
            deadline = (
                "unbounded" if self.deadline_seconds is None
                else f"{self.deadline_seconds:g}s"
            )
            lines.append(
                f"  wall clock: {self.elapsed_seconds:.2f}s of {deadline}"
            )
        lines.append(f"  conflicts: {self.conflicts} of {cap(self.max_conflicts)}")
        lines.append(
            f"  learned clauses: {self.learned_clauses}"
            f" of {cap(self.max_learned_clauses)}"
        )
        lines.append(
            f"  solver calls: {self.solver_calls}"
            f" of {cap(self.max_solver_calls)}"
        )
        if self.attempts > 1:
            lines.append(f"  escalation attempts: {self.attempts}")
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  result cache: {self.cache_hits} hits,"
                f" {self.cache_misses} misses"
            )
        if self.cancelled_slots:
            lines.append(
                f"  parallel portfolio: {self.cancelled_slots}"
                " worker slots cancelled"
            )
        if self.workers_respawned or self.quarantined_queries:
            lines.append(
                f"  pool supervision: {self.workers_respawned} workers"
                f" respawned, {self.quarantined_queries} queries quarantined"
            )
        if self.proofs_checked or self.proofs_failed:
            lines.append(
                f"  certification: {self.proofs_checked} proofs checked,"
                f" {self.proofs_failed} rejected"
            )
        return "\n".join(lines)


class SolverFault(RuntimeError):
    """A solver invocation failed (injected or infrastructural).

    Back ends treat a fault like an UNKNOWN answer for the one query it
    hit — failure isolation, not abortion of the whole analysis.
    """


class BudgetExhausted(SolverFault):
    """A governed computation ran out of budget.

    Carries the :class:`ResourceReport` and, when the raiser had made
    partial progress (e.g. Houdini's surviving invariant subset), that
    partial result.
    """

    def __init__(self, report: ResourceReport, partial: object = None):
        super().__init__(report.describe())
        self.report = report
        self.partial = partial


class Budget:
    """A cooperative resource budget shared along one solve path.

    All limits are optional; an unlimited budget never exhausts.  The
    wall clock starts at the first :meth:`start` call (the solver and
    the symbolic executor both call it), so a budget can be built ahead
    of time without the deadline ticking.

    Budgets nest: :meth:`slice` creates a child whose spend propagates
    to the parent and which is additionally exhausted whenever the
    parent is — used to give one verification condition or one
    escalation attempt a bounded share of the overall budget.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_learned_clauses: Optional[int] = None,
        max_solver_calls: Optional[int] = None,
        parent: Optional["Budget"] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.deadline_seconds = deadline_seconds
        self.max_conflicts = max_conflicts
        self.max_learned_clauses = max_learned_clauses
        self.max_solver_calls = max_solver_calls
        self.parent = parent
        self._clock = clock
        self._started_at: Optional[float] = None
        self._cancelled = False
        self.conflicts = 0
        self.learned_clauses = 0
        self.solver_calls = 0

    # ----- lifecycle --------------------------------------------------------

    def start(self) -> "Budget":
        """Start the wall clock (idempotent)."""
        if self._started_at is None:
            self._started_at = self._clock()
        if self.parent is not None:
            self.parent.start()
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    def cancel(self) -> None:
        """Request cooperative cancellation of everything on this budget."""
        self._cancelled = True

    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline, or None when no deadline is set."""
        if self.deadline_seconds is None:
            return None
        return max(0.0, self.deadline_seconds - self.elapsed_seconds())

    # ----- spend accounting -------------------------------------------------

    def charge_conflicts(self, n: int = 1) -> None:
        self.conflicts += n
        if self.parent is not None:
            self.parent.charge_conflicts(n)

    def charge_learned(self, n: int = 1) -> None:
        self.learned_clauses += n
        if self.parent is not None:
            self.parent.charge_learned(n)

    def charge_solver_call(self) -> None:
        self.solver_calls += 1
        if self.parent is not None:
            self.parent.charge_solver_call()

    # ----- exhaustion -------------------------------------------------------

    def exhausted(self) -> Optional[ExhaustionReason]:
        """The reason this budget (or an ancestor) is spent, else None."""
        if self._cancelled:
            return ExhaustionReason.CANCELLED
        if (
            self.deadline_seconds is not None
            and self._started_at is not None
            and self.elapsed_seconds() >= self.deadline_seconds
        ):
            return ExhaustionReason.DEADLINE
        if self.max_conflicts is not None and self.conflicts >= self.max_conflicts:
            return ExhaustionReason.CONFLICTS
        if (
            self.max_learned_clauses is not None
            and self.learned_clauses >= self.max_learned_clauses
        ):
            return ExhaustionReason.MEMORY
        if (
            self.max_solver_calls is not None
            and self.solver_calls > self.max_solver_calls
        ):
            return ExhaustionReason.SOLVER_CALLS
        if self.parent is not None:
            return self.parent.exhausted()
        return None

    def checkpoint(self, context: str = "") -> None:
        """Raise :class:`BudgetExhausted` if the budget is spent.

        The cooperative-cancellation primitive: hot loops call this at
        safepoints with a short ``context`` naming the pipeline stage.
        """
        reason = self.exhausted()
        if reason is not None:
            raise BudgetExhausted(self.report(reason, context))

    def report(self, reason: ExhaustionReason,
               message: str = "", attempts: int = 1) -> ResourceReport:
        """Snapshot the spend into a :class:`ResourceReport`."""
        return ResourceReport(
            reason=reason,
            message=message,
            elapsed_seconds=self.elapsed_seconds(),
            deadline_seconds=self.deadline_seconds,
            conflicts=self.conflicts,
            max_conflicts=self.max_conflicts,
            learned_clauses=self.learned_clauses,
            max_learned_clauses=self.max_learned_clauses,
            solver_calls=self.solver_calls,
            max_solver_calls=self.max_solver_calls,
            attempts=attempts,
        )

    # ----- nesting ----------------------------------------------------------

    def slice(
        self,
        deadline_seconds: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_learned_clauses: Optional[int] = None,
        max_solver_calls: Optional[int] = None,
    ) -> "Budget":
        """A child budget: tighter (or equal) limits, spend shared upward."""
        remaining = self.remaining_seconds()
        if deadline_seconds is None:
            deadline_seconds = remaining
        elif remaining is not None:
            deadline_seconds = min(deadline_seconds, remaining)
        child = Budget(
            deadline_seconds=deadline_seconds,
            max_conflicts=max_conflicts,
            max_learned_clauses=max_learned_clauses,
            max_solver_calls=max_solver_calls,
            parent=self,
            clock=self._clock,
        )
        if self.started:
            child.start()
        return child

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        caps = {
            "deadline": self.deadline_seconds,
            "conflicts": self.max_conflicts,
            "learned": self.max_learned_clauses,
            "calls": self.max_solver_calls,
        }
        parts = [f"{k}={v}" for k, v in caps.items() if v is not None]
        return f"Budget({', '.join(parts) or 'unlimited'})"
