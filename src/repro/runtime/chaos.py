"""Seeded fault injection for the solver layer.

The degradation contract — *every back end survives any single solver
call going wrong* — is only trustworthy if tests can make solver calls
go wrong on demand.  :func:`inject_faults` installs a seeded
:class:`ChaosMonkey` on :class:`~repro.smt.solver.SmtSolver`; while
active, each ``check()`` may, with configured probabilities,

* return **UNKNOWN** (with an ``INJECTED`` :class:`ResourceReport`),
* raise :class:`InjectedFault` (a :class:`SolverFault` back ends must
  isolate), or
* sleep for a configured delay first (exercising deadlines).

Determinism: the monkey draws from one ``random.Random(seed)`` stream
in call order, so a failing schedule replays exactly.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..obs import METRICS
from .budget import SolverFault


class InjectedFault(SolverFault):
    """An exception deliberately injected into a solver call."""


@dataclass
class ChaosConfig:
    """Per-call fault probabilities (each rolled independently)."""

    seed: int = 0
    unknown_rate: float = 0.0
    fault_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.005
    # Trust/engine hooks: corrupt a DRAT certificate before checking,
    # corrupt a cache entry's on-disk text before writing, or hard-kill
    # a portfolio worker at task receipt (at most worker_max_crashes
    # times per query, so retries can be exercised deterministically).
    proof_corrupt_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    worker_crash_rate: float = 0.0
    worker_max_crashes: int = 1
    # Durability hooks (repro.persist): raise OSError on a journal,
    # snapshot, checkpoint, cache or exporter write; or report that the
    # process should die between a checkpoint's temp write and its
    # atomic rename (the torn-save window).
    io_error_rate: float = 0.0
    kill_checkpoint_rate: float = 0.0
    # Request-path hooks (repro.serve): stall the server while it reads
    # a request (a slow or wedged client — the read deadline must catch
    # it), or kill the worker backing a request mid-solve (raises
    # InjectedFault inside the request; the circuit breaker must count
    # it, the client must still get a terminal answer).
    slow_client_rate: float = 0.0
    slow_client_seconds: float = 0.05
    request_kill_rate: float = 0.0
    # Cluster hooks (repro.serve.cluster): make the router see a dead
    # connection when forwarding to a replica (it must fail over along
    # the ring), or make the registry see a failed health probe (a
    # flapping replica must be ejected and later re-admitted).
    replica_kill_rate: float = 0.0
    probe_flap_rate: float = 0.0
    # Network partition: once a link (a named router→replica edge)
    # partitions, it stays down for the next ``partition_span``
    # consultations of that same link — count-based persistence keeps
    # the schedule deterministic where a wall-clock window would not be.
    partition_rate: float = 0.0
    partition_span: int = 4
    # Clock-skewed lease heartbeats: an afflicted lease write backdates
    # ``renewed_at`` by ``lease_skew_seconds``, making a *live* owner's
    # heartbeat look stale — split-brain pressure on the takeover path.
    lease_skew_rate: float = 0.0
    lease_skew_seconds: float = 60.0


@dataclass
class ChaosLog:
    """What the monkey actually did, for test assertions."""

    calls: int = 0
    unknowns: int = 0
    faults: int = 0
    delays: int = 0
    proofs_corrupted: int = 0
    cache_corrupted: int = 0
    io_errors: int = 0
    checkpoint_kills: int = 0
    slow_clients: int = 0
    request_kills: int = 0
    replica_kills: int = 0
    probe_flaps: int = 0
    partitions: int = 0
    lease_skews: int = 0
    schedule: list[str] = field(default_factory=list)


class ChaosMonkey:
    """Decides, per solver call, which fault (if any) to inject."""

    def __init__(self, config: Optional[ChaosConfig] = None, **kwargs):
        self.config = config or ChaosConfig(**kwargs)
        self._rng = random.Random(self.config.seed)
        self.log = ChaosLog()
        #: link → remaining consultations this partition stays down.
        self._partitions: dict[str, int] = {}

    def intercept(self) -> Optional[str]:
        """Called by ``SmtSolver.check()`` on entry.

        May sleep, may raise :class:`InjectedFault`; returns
        ``"unknown"`` when the call should answer UNKNOWN without
        solving, else None to proceed normally.
        """
        cfg = self.config
        self.log.calls += 1
        if cfg.delay_rate and self._rng.random() < cfg.delay_rate:
            self.log.delays += 1
            self.log.schedule.append("delay")
            if METRICS.enabled:
                METRICS.counter_inc("repro_chaos_injected_total", kind="delay")
            time.sleep(cfg.delay_seconds)
        if cfg.fault_rate and self._rng.random() < cfg.fault_rate:
            self.log.faults += 1
            self.log.schedule.append("fault")
            if METRICS.enabled:
                METRICS.counter_inc("repro_chaos_injected_total", kind="fault")
            raise InjectedFault(
                f"injected solver fault (call #{self.log.calls},"
                f" seed {cfg.seed})"
            )
        if cfg.unknown_rate and self._rng.random() < cfg.unknown_rate:
            self.log.unknowns += 1
            self.log.schedule.append("unknown")
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_chaos_injected_total", kind="unknown")
            return "unknown"
        self.log.schedule.append("ok")
        return None

    def should_corrupt_proof(self) -> bool:
        """Roll the proof-corruption die (zero-rate draws nothing)."""
        cfg = self.config
        if not cfg.proof_corrupt_rate:
            return False
        if self._rng.random() >= cfg.proof_corrupt_rate:
            return False
        self.log.proofs_corrupted += 1
        self.log.schedule.append("proof_corrupt")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="proof_corrupt")
        return True

    def corrupt_proof(self, cert) -> bool:
        """Maybe prepend a non-RUP step to a :class:`Certificate`.

        Prepended (not appended) so the bogus step is examined *before*
        the refutation point — an appended step would land where the
        checker has already derived the empty clause and accepts
        anything.
        """
        if not self.should_corrupt_proof():
            return False
        cert.steps.insert(0, ("a", (cert.num_vars + 1,)))
        return True

    def maybe_io_error(self, where: str) -> None:
        """Maybe raise ``OSError`` at a persistence write site.

        Callers (journal appends, snapshot/checkpoint/cache writes,
        telemetry exporters) catch the error and degrade to a counted
        metric — this hook exists to prove they do.
        """
        cfg = self.config
        if not cfg.io_error_rate:
            return
        if self._rng.random() >= cfg.io_error_rate:
            return
        self.log.io_errors += 1
        self.log.schedule.append(f"io_error:{where}")
        if METRICS.enabled:
            METRICS.counter_inc("repro_chaos_injected_total", kind="io_error")
        raise OSError(
            f"injected I/O error at {where} (#{self.log.io_errors},"
            f" seed {cfg.seed})"
        )

    def should_kill_during_checkpoint(self) -> bool:
        """Roll the die for dying inside a checkpoint's torn-save window."""
        cfg = self.config
        if not cfg.kill_checkpoint_rate:
            return False
        if self._rng.random() >= cfg.kill_checkpoint_rate:
            return False
        self.log.checkpoint_kills += 1
        self.log.schedule.append("kill_checkpoint")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="kill_checkpoint")
        return True

    def slow_client_delay(self) -> float:
        """Seconds the server should stall reading this request (0 = none).

        Returned, not slept, so the asyncio server can await it — the
        stall must block only the afflicted connection, never the loop.
        """
        cfg = self.config
        if not cfg.slow_client_rate:
            return 0.0
        if self._rng.random() >= cfg.slow_client_rate:
            return 0.0
        self.log.slow_clients += 1
        self.log.schedule.append("slow_client")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="slow_client")
        return cfg.slow_client_seconds

    def should_kill_request_worker(self) -> bool:
        """Roll the die for a worker dying under an in-flight request.

        The serve executor raises :class:`InjectedFault` when this
        returns True — modelling a solve whose backing worker was lost
        mid-request, the failure the circuit breaker exists to absorb.
        """
        cfg = self.config
        if not cfg.request_kill_rate:
            return False
        if self._rng.random() >= cfg.request_kill_rate:
            return False
        self.log.request_kills += 1
        self.log.schedule.append("request_kill")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="request_kill")
        return True

    def should_kill_replica(self) -> bool:
        """Roll the die for a forward hitting a dead replica.

        The router treats True as a transport-level connection failure:
        it must count the failure against the replica's health and fail
        the request over to the next ring node.
        """
        cfg = self.config
        if not cfg.replica_kill_rate:
            return False
        if self._rng.random() >= cfg.replica_kill_rate:
            return False
        self.log.replica_kills += 1
        self.log.schedule.append("replica_kill")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="replica_kill")
        return True

    def should_flap_probe(self) -> bool:
        """Roll the die for a health probe spuriously failing.

        Exercises the registry's ejection/re-admission cycle — and the
        lease guard: a flapped-out replica is *alive*, so its fresh
        heartbeat must make the router's journal takeover refuse.
        """
        cfg = self.config
        if not cfg.probe_flap_rate:
            return False
        if self._rng.random() >= cfg.probe_flap_rate:
            return False
        self.log.probe_flaps += 1
        self.log.schedule.append("probe_flap")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="probe_flap")
        return True

    def is_partitioned(self, link: str) -> bool:
        """Roll (or continue) a network partition on a named link.

        A link is an edge the caller names (``"router->r0"``,
        ``"probe->r0"``, ``"adopt->r1"``).  Once a partition starts it
        holds for the next ``partition_span`` consultations of that
        same link — modelling an outage that outlives one retry, which
        is what actually pressures failover and the lease arbiter.
        """
        cfg = self.config
        if not cfg.partition_rate:
            return False
        active = self._partitions.get(link, 0)
        if active > 0:
            self._partitions[link] = active - 1
            return True
        if self._rng.random() >= cfg.partition_rate:
            return False
        self._partitions[link] = max(0, cfg.partition_span - 1)
        self.log.partitions += 1
        self.log.schedule.append(f"partition:{link}")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="partition")
        return True

    def heal_partitions(self) -> None:
        """Forget every active partition span (the nemesis heal step)."""
        self._partitions.clear()

    def lease_skew(self) -> float:
        """Seconds to backdate this lease write's heartbeat (0 = none).

        Consulted by :class:`~repro.persist.batch.SpoolLease` on
        acquire/renew: a skewed write makes a *live* owner look stale,
        inviting a takeover while the owner still runs — exactly the
        split-brain pressure per-write lease fencing must absorb.
        """
        cfg = self.config
        if not cfg.lease_skew_rate:
            return 0.0
        if self._rng.random() >= cfg.lease_skew_rate:
            return 0.0
        self.log.lease_skews += 1
        self.log.schedule.append("lease_skew")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="lease_skew")
        return cfg.lease_skew_seconds

    def nemesis(self, kind: str) -> bool:
        """Scenario-level nemesis consultation (``replica_down``,
        ``torn_tail``...).  The base monkey never fires these — they
        are decided by the campaign engine's scheduled subclass, which
        overrides this to fire at enumerated fault points."""
        return False

    def corrupt_cache_text(self, text: str) -> str:
        """Maybe truncate a cache entry's serialized form before write."""
        cfg = self.config
        if not cfg.cache_corrupt_rate:
            return text
        if self._rng.random() >= cfg.cache_corrupt_rate:
            return text
        self.log.cache_corrupted += 1
        self.log.schedule.append("cache_corrupt")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="cache_corrupt")
        return text[: len(text) // 2]


@contextmanager
def inject_faults(
    config: Optional[ChaosConfig] = None,
    *,
    monkey: Optional[ChaosMonkey] = None,
    **kwargs,
) -> Iterator[ChaosMonkey]:
    """Install a :class:`ChaosMonkey` on every ``SmtSolver`` in scope.

    Usage::

        with inject_faults(seed=7, unknown_rate=0.3) as monkey:
            report = DafnyBackend(prog).verify_monolithic(3)
        assert monkey.log.unknowns >= 1

    A prebuilt ``monkey`` (e.g. the campaign engine's scheduled
    subclass) can be passed instead of a config.
    """
    # Imported lazily: repro.smt.solver imports this package's budget
    # module, so a top-level import here would be circular.
    from ..engine import cache as cache_mod
    from ..obs import export as export_mod
    from ..persist import batch as batch_mod
    from ..persist import checkpoint as ckpt_mod
    from ..persist import journal as journal_mod
    from ..serve import cluster as cluster_mod
    from ..serve import service as serve_mod
    from ..smt import solver as solver_mod

    if monkey is None:
        monkey = ChaosMonkey(config, **kwargs)
    hooks = [
        solver_mod.SmtSolver,
        cache_mod.ResultCache,
        journal_mod.Journal,
        ckpt_mod.CheckpointStore,
        export_mod.TelemetrySnapshot,
        serve_mod.AnalysisService,
        cluster_mod.ClusterService,
        cluster_mod.ReplicaRegistry,
        batch_mod.SpoolLease,
    ]
    previous = [cls._chaos for cls in hooks]
    for cls in hooks:
        cls._chaos = monkey
    try:
        yield monkey
    finally:
        for cls, prev in zip(hooks, previous):
            cls._chaos = prev


#: ``REPRO_CHAOS_<suffix>`` → :class:`ChaosConfig` rate field.  Every
#: in-process hook kind is settable from the environment; the mapping
#: is also what :func:`chaos_from_env` validates unknown variables
#: against.
ENV_RATE_KNOBS: dict[str, str] = {
    "UNKNOWN": "unknown_rate",
    "FAULT": "fault_rate",
    "DELAY": "delay_rate",
    "PROOF_CORRUPT": "proof_corrupt_rate",
    "CACHE_CORRUPT": "cache_corrupt_rate",
    "IO_ERROR": "io_error_rate",
    "KILL_CHECKPOINT": "kill_checkpoint_rate",
    "SLOW_CLIENT": "slow_client_rate",
    "REQUEST_KILL": "request_kill_rate",
    "REPLICA_KILL": "replica_kill_rate",
    "PROBE_FLAP": "probe_flap_rate",
    "PARTITION": "partition_rate",
    "LEASE_SKEW": "lease_skew_rate",
}

#: Recognized non-rate knobs (tuning values and cross-process hooks).
#: ``WORKER_CRASH`` is read by the portfolio worker pool itself
#: (:mod:`repro.engine.parallel`) — listed here so it never warns.
ENV_OTHER_KNOBS: dict[str, str] = {
    "SEED": "seed",
    "DELAY_SECONDS": "delay_seconds",
    "SLOW_CLIENT_SECONDS": "slow_client_seconds",
    "PARTITION_SPAN": "partition_span",
    "LEASE_SKEW_SECONDS": "lease_skew_seconds",
    "WORKER_CRASH": "worker_crash_rate",
    "WORKER_MAX_CRASHES": "worker_max_crashes",
}

_ENV_PREFIX = "REPRO_CHAOS_"
_warned_unknown_env = False


def _warn_unknown_chaos_env(unknown: list[str]) -> None:
    """Warn once per process about unrecognized ``REPRO_CHAOS_*``
    variables, listing the valid knobs (mirrors ``--solver-opt help``:
    a typoed knob must never silently run fault-free)."""
    global _warned_unknown_env
    if _warned_unknown_env:
        return
    _warned_unknown_env = True
    import sys

    valid = sorted(
        _ENV_PREFIX + k
        for k in (*ENV_RATE_KNOBS, *ENV_OTHER_KNOBS)
    )
    print(
        f"warning: ignoring unknown chaos variable(s):"
        f" {', '.join(sorted(unknown))}\n"
        f"  valid knobs: {', '.join(valid)}",
        file=sys.stderr,
    )


def chaos_from_env(environ=None):
    """A chaos context built from ``REPRO_CHAOS_*`` (CI smoke harness).

    Every per-call rate in :data:`ENV_RATE_KNOBS` is settable
    (``REPRO_CHAOS_IO_ERROR=0.2`` …), plus the tuning knobs in
    :data:`ENV_OTHER_KNOBS` (``REPRO_CHAOS_SEED``,
    ``REPRO_CHAOS_PARTITION_SPAN``, …); with every rate unset or zero
    this is a no-op ``nullcontext``.  ``repro batch run`` and ``repro
    serve`` both enter it, so one environment variable puts an entire
    CI leg under injected faults.  An unrecognized ``REPRO_CHAOS_*``
    variable warns once and lists the valid knobs instead of silently
    running fault-free.  (Portfolio worker crashes stay env-driven
    inside the worker pool via ``REPRO_CHAOS_WORKER_CRASH``.)
    """
    import os
    from contextlib import nullcontext

    env = os.environ if environ is None else environ

    unknown = [
        name for name in env
        if name.startswith(_ENV_PREFIX)
        and name[len(_ENV_PREFIX):] not in ENV_RATE_KNOBS
        and name[len(_ENV_PREFIX):] not in ENV_OTHER_KNOBS
    ]
    if unknown:
        _warn_unknown_chaos_env(unknown)

    def value_of(name: str, cast, default):
        try:
            return cast(env.get(_ENV_PREFIX + name, default))
        except (TypeError, ValueError):
            return cast(default)

    kwargs = {}
    for suffix, field_name in ENV_RATE_KNOBS.items():
        rate = max(0.0, value_of(suffix, float, "0"))
        if rate:
            kwargs[field_name] = rate
    if not kwargs:
        return nullcontext()
    kwargs["seed"] = value_of("SEED", int, "0")
    kwargs["delay_seconds"] = value_of("DELAY_SECONDS", float, "0.005")
    kwargs["slow_client_seconds"] = value_of(
        "SLOW_CLIENT_SECONDS", float, "0.05")
    kwargs["partition_span"] = value_of("PARTITION_SPAN", int, "4")
    kwargs["lease_skew_seconds"] = value_of(
        "LEASE_SKEW_SECONDS", float, "60")
    return inject_faults(**kwargs)
