"""Seeded fault injection for the solver layer.

The degradation contract — *every back end survives any single solver
call going wrong* — is only trustworthy if tests can make solver calls
go wrong on demand.  :func:`inject_faults` installs a seeded
:class:`ChaosMonkey` on :class:`~repro.smt.solver.SmtSolver`; while
active, each ``check()`` may, with configured probabilities,

* return **UNKNOWN** (with an ``INJECTED`` :class:`ResourceReport`),
* raise :class:`InjectedFault` (a :class:`SolverFault` back ends must
  isolate), or
* sleep for a configured delay first (exercising deadlines).

Determinism: the monkey draws from one ``random.Random(seed)`` stream
in call order, so a failing schedule replays exactly.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..obs import METRICS
from .budget import SolverFault


class InjectedFault(SolverFault):
    """An exception deliberately injected into a solver call."""


@dataclass
class ChaosConfig:
    """Per-call fault probabilities (each rolled independently)."""

    seed: int = 0
    unknown_rate: float = 0.0
    fault_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.005
    # Trust/engine hooks: corrupt a DRAT certificate before checking,
    # corrupt a cache entry's on-disk text before writing, or hard-kill
    # a portfolio worker at task receipt (at most worker_max_crashes
    # times per query, so retries can be exercised deterministically).
    proof_corrupt_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    worker_crash_rate: float = 0.0
    worker_max_crashes: int = 1
    # Durability hooks (repro.persist): raise OSError on a journal,
    # snapshot, checkpoint, cache or exporter write; or report that the
    # process should die between a checkpoint's temp write and its
    # atomic rename (the torn-save window).
    io_error_rate: float = 0.0
    kill_checkpoint_rate: float = 0.0
    # Request-path hooks (repro.serve): stall the server while it reads
    # a request (a slow or wedged client — the read deadline must catch
    # it), or kill the worker backing a request mid-solve (raises
    # InjectedFault inside the request; the circuit breaker must count
    # it, the client must still get a terminal answer).
    slow_client_rate: float = 0.0
    slow_client_seconds: float = 0.05
    request_kill_rate: float = 0.0
    # Cluster hooks (repro.serve.cluster): make the router see a dead
    # connection when forwarding to a replica (it must fail over along
    # the ring), or make the registry see a failed health probe (a
    # flapping replica must be ejected and later re-admitted).
    replica_kill_rate: float = 0.0
    probe_flap_rate: float = 0.0


@dataclass
class ChaosLog:
    """What the monkey actually did, for test assertions."""

    calls: int = 0
    unknowns: int = 0
    faults: int = 0
    delays: int = 0
    proofs_corrupted: int = 0
    cache_corrupted: int = 0
    io_errors: int = 0
    checkpoint_kills: int = 0
    slow_clients: int = 0
    request_kills: int = 0
    replica_kills: int = 0
    probe_flaps: int = 0
    schedule: list[str] = field(default_factory=list)


class ChaosMonkey:
    """Decides, per solver call, which fault (if any) to inject."""

    def __init__(self, config: Optional[ChaosConfig] = None, **kwargs):
        self.config = config or ChaosConfig(**kwargs)
        self._rng = random.Random(self.config.seed)
        self.log = ChaosLog()

    def intercept(self) -> Optional[str]:
        """Called by ``SmtSolver.check()`` on entry.

        May sleep, may raise :class:`InjectedFault`; returns
        ``"unknown"`` when the call should answer UNKNOWN without
        solving, else None to proceed normally.
        """
        cfg = self.config
        self.log.calls += 1
        if cfg.delay_rate and self._rng.random() < cfg.delay_rate:
            self.log.delays += 1
            self.log.schedule.append("delay")
            if METRICS.enabled:
                METRICS.counter_inc("repro_chaos_injected_total", kind="delay")
            time.sleep(cfg.delay_seconds)
        if cfg.fault_rate and self._rng.random() < cfg.fault_rate:
            self.log.faults += 1
            self.log.schedule.append("fault")
            if METRICS.enabled:
                METRICS.counter_inc("repro_chaos_injected_total", kind="fault")
            raise InjectedFault(
                f"injected solver fault (call #{self.log.calls},"
                f" seed {cfg.seed})"
            )
        if cfg.unknown_rate and self._rng.random() < cfg.unknown_rate:
            self.log.unknowns += 1
            self.log.schedule.append("unknown")
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_chaos_injected_total", kind="unknown")
            return "unknown"
        self.log.schedule.append("ok")
        return None

    def should_corrupt_proof(self) -> bool:
        """Roll the proof-corruption die (zero-rate draws nothing)."""
        cfg = self.config
        if not cfg.proof_corrupt_rate:
            return False
        if self._rng.random() >= cfg.proof_corrupt_rate:
            return False
        self.log.proofs_corrupted += 1
        self.log.schedule.append("proof_corrupt")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="proof_corrupt")
        return True

    def corrupt_proof(self, cert) -> bool:
        """Maybe prepend a non-RUP step to a :class:`Certificate`.

        Prepended (not appended) so the bogus step is examined *before*
        the refutation point — an appended step would land where the
        checker has already derived the empty clause and accepts
        anything.
        """
        if not self.should_corrupt_proof():
            return False
        cert.steps.insert(0, ("a", (cert.num_vars + 1,)))
        return True

    def maybe_io_error(self, where: str) -> None:
        """Maybe raise ``OSError`` at a persistence write site.

        Callers (journal appends, snapshot/checkpoint/cache writes,
        telemetry exporters) catch the error and degrade to a counted
        metric — this hook exists to prove they do.
        """
        cfg = self.config
        if not cfg.io_error_rate:
            return
        if self._rng.random() >= cfg.io_error_rate:
            return
        self.log.io_errors += 1
        self.log.schedule.append(f"io_error:{where}")
        if METRICS.enabled:
            METRICS.counter_inc("repro_chaos_injected_total", kind="io_error")
        raise OSError(
            f"injected I/O error at {where} (#{self.log.io_errors},"
            f" seed {cfg.seed})"
        )

    def should_kill_during_checkpoint(self) -> bool:
        """Roll the die for dying inside a checkpoint's torn-save window."""
        cfg = self.config
        if not cfg.kill_checkpoint_rate:
            return False
        if self._rng.random() >= cfg.kill_checkpoint_rate:
            return False
        self.log.checkpoint_kills += 1
        self.log.schedule.append("kill_checkpoint")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="kill_checkpoint")
        return True

    def slow_client_delay(self) -> float:
        """Seconds the server should stall reading this request (0 = none).

        Returned, not slept, so the asyncio server can await it — the
        stall must block only the afflicted connection, never the loop.
        """
        cfg = self.config
        if not cfg.slow_client_rate:
            return 0.0
        if self._rng.random() >= cfg.slow_client_rate:
            return 0.0
        self.log.slow_clients += 1
        self.log.schedule.append("slow_client")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="slow_client")
        return cfg.slow_client_seconds

    def should_kill_request_worker(self) -> bool:
        """Roll the die for a worker dying under an in-flight request.

        The serve executor raises :class:`InjectedFault` when this
        returns True — modelling a solve whose backing worker was lost
        mid-request, the failure the circuit breaker exists to absorb.
        """
        cfg = self.config
        if not cfg.request_kill_rate:
            return False
        if self._rng.random() >= cfg.request_kill_rate:
            return False
        self.log.request_kills += 1
        self.log.schedule.append("request_kill")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="request_kill")
        return True

    def should_kill_replica(self) -> bool:
        """Roll the die for a forward hitting a dead replica.

        The router treats True as a transport-level connection failure:
        it must count the failure against the replica's health and fail
        the request over to the next ring node.
        """
        cfg = self.config
        if not cfg.replica_kill_rate:
            return False
        if self._rng.random() >= cfg.replica_kill_rate:
            return False
        self.log.replica_kills += 1
        self.log.schedule.append("replica_kill")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="replica_kill")
        return True

    def should_flap_probe(self) -> bool:
        """Roll the die for a health probe spuriously failing.

        Exercises the registry's ejection/re-admission cycle — and the
        lease guard: a flapped-out replica is *alive*, so its fresh
        heartbeat must make the router's journal takeover refuse.
        """
        cfg = self.config
        if not cfg.probe_flap_rate:
            return False
        if self._rng.random() >= cfg.probe_flap_rate:
            return False
        self.log.probe_flaps += 1
        self.log.schedule.append("probe_flap")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="probe_flap")
        return True

    def corrupt_cache_text(self, text: str) -> str:
        """Maybe truncate a cache entry's serialized form before write."""
        cfg = self.config
        if not cfg.cache_corrupt_rate:
            return text
        if self._rng.random() >= cfg.cache_corrupt_rate:
            return text
        self.log.cache_corrupted += 1
        self.log.schedule.append("cache_corrupt")
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_injected_total", kind="cache_corrupt")
        return text[: len(text) // 2]


@contextmanager
def inject_faults(
    config: Optional[ChaosConfig] = None, **kwargs
) -> Iterator[ChaosMonkey]:
    """Install a :class:`ChaosMonkey` on every ``SmtSolver`` in scope.

    Usage::

        with inject_faults(seed=7, unknown_rate=0.3) as monkey:
            report = DafnyBackend(prog).verify_monolithic(3)
        assert monkey.log.unknowns >= 1
    """
    # Imported lazily: repro.smt.solver imports this package's budget
    # module, so a top-level import here would be circular.
    from ..engine import cache as cache_mod
    from ..obs import export as export_mod
    from ..persist import checkpoint as ckpt_mod
    from ..persist import journal as journal_mod
    from ..serve import cluster as cluster_mod
    from ..serve import service as serve_mod
    from ..smt import solver as solver_mod

    monkey = ChaosMonkey(config, **kwargs)
    hooks = [
        solver_mod.SmtSolver,
        cache_mod.ResultCache,
        journal_mod.Journal,
        ckpt_mod.CheckpointStore,
        export_mod.TelemetrySnapshot,
        serve_mod.AnalysisService,
        cluster_mod.ClusterService,
        cluster_mod.ReplicaRegistry,
    ]
    previous = [cls._chaos for cls in hooks]
    for cls in hooks:
        cls._chaos = monkey
    try:
        yield monkey
    finally:
        for cls, prev in zip(hooks, previous):
            cls._chaos = prev


def chaos_from_env(environ=None):
    """A chaos context built from ``REPRO_CHAOS_*`` (CI smoke harness).

    Reads ``REPRO_CHAOS_IO_ERROR``, ``REPRO_CHAOS_SLOW_CLIENT``,
    ``REPRO_CHAOS_REQUEST_KILL``, ``REPRO_CHAOS_REPLICA_KILL``,
    ``REPRO_CHAOS_PROBE_FLAP`` (each a per-call probability) and
    ``REPRO_CHAOS_SEED``; with every rate unset or zero this is a
    no-op ``nullcontext``.  ``repro batch run`` and ``repro serve``
    both enter it, so one environment variable puts an entire CI leg
    under injected faults.  (Portfolio worker crashes are env-driven
    separately via ``REPRO_CHAOS_WORKER_CRASH`` in the worker pool.)
    """
    import os
    from contextlib import nullcontext

    env = os.environ if environ is None else environ

    def rate(name: str) -> float:
        try:
            value = float(env.get(name, "0"))
        except ValueError:
            return 0.0
        return max(0.0, value)

    io_error = rate("REPRO_CHAOS_IO_ERROR")
    slow_client = rate("REPRO_CHAOS_SLOW_CLIENT")
    request_kill = rate("REPRO_CHAOS_REQUEST_KILL")
    replica_kill = rate("REPRO_CHAOS_REPLICA_KILL")
    probe_flap = rate("REPRO_CHAOS_PROBE_FLAP")
    if not (io_error or slow_client or request_kill
            or replica_kill or probe_flap):
        return nullcontext()
    try:
        seed = int(env.get("REPRO_CHAOS_SEED", "0"))
    except ValueError:
        seed = 0
    return inject_faults(
        seed=seed,
        io_error_rate=io_error,
        slow_client_rate=slow_client,
        request_kill_rate=request_kill,
        replica_kill_rate=replica_kill,
        probe_flap_rate=probe_flap,
    )
