"""Resource governance for the solve path (budgets, portfolios, chaos).

* :mod:`repro.runtime.budget` — :class:`Budget` (deadline / conflict /
  memory / solver-call caps with cooperative cancellation),
  :class:`ResourceReport`, and the typed :class:`BudgetExhausted` /
  :class:`SolverFault` exceptions;
* :mod:`repro.runtime.portfolio` — :class:`EscalationPolicy`, the
  retry-with-varied-CDCL-config ladder applied before accepting an
  UNKNOWN answer;
* :mod:`repro.runtime.chaos` — seeded fault injection
  (:func:`inject_faults`) proving every back end degrades cleanly.
"""

from .budget import (
    Budget,
    BudgetExhausted,
    ExhaustionReason,
    ResourceReport,
    SolverFault,
)
from .chaos import ChaosConfig, ChaosLog, ChaosMonkey, InjectedFault, inject_faults
from .portfolio import EscalationPolicy

__all__ = [
    "Budget",
    "BudgetExhausted",
    "ChaosConfig",
    "ChaosLog",
    "ChaosMonkey",
    "EscalationPolicy",
    "ExhaustionReason",
    "InjectedFault",
    "ResourceReport",
    "SolverFault",
    "inject_faults",
]
