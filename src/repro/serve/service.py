"""The analysis service core: admission, the overload ladder, the
breaker, durable jobs, and graceful drain — everything except HTTP.

:class:`AnalysisService` is the transport-free heart of ``repro
serve``.  One instance owns:

* a :class:`~repro.serve.admission.AdmissionController` — the bounded
  queue, per-tenant token buckets, and the overload ladder;
* a :class:`~repro.serve.breaker.CircuitBreaker` around the
  portfolio/backend solve path;
* a :class:`~repro.persist.batch.BatchRunner` — every request is
  journaled as a durable job *before* it is solved, so a crashed or
  drained server's backlog is completable by ``repro batch resume``;
* one warm, content-addressed :class:`~repro.engine.cache.ResultCache`
  (the runner's), shared by every request across the server's life;
* a thread pool sized to the worker count — solves are CPU-bound, so
  they run off the event loop.

Request lifecycle::

    admit ──▶ journal (submit_one) ──▶ replayed?  ──▶ answer
                     │                 breaker open? ─▶ fast UNKNOWN
                     ▼
              solve under ladder budget ──▶ PROVED/VIOLATED → done
                     │                      UNKNOWN → failed (resume retries)
                     ▼
              drain-cancelled → failed("cancelled by drain") + 503

Verdict journaling is deliberately asymmetric: only *definitive*
answers (PROVED/VIOLATED) are journaled ``done``.  A degraded-budget
UNKNOWN is terminal for the client but journaled ``failed``, so
``repro batch resume`` later re-solves it with a full budget — the
self-healing half of the service.

Chaos: the class-level ``_chaos`` slot is installed by
:func:`repro.runtime.chaos.inject_faults`; when armed, requests may be
killed mid-solve (``request_kill_rate``) and the HTTP layer may stall
reads (``slow_client_rate``).
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from .. import obs
from ..analysis.result import AnalysisOutcome, Verdict, verdict_for_unknown
from ..obs import (
    BEACON,
    METRICS,
    TRACER,
    ProgressBook,
    progress_scope,
    span_tree,
)
from ..persist.batch import BatchRunner, JobRecord
from ..runtime.budget import (
    Budget,
    ExhaustionReason,
    ResourceReport,
    SolverFault,
)
from ..runtime.chaos import InjectedFault
from ..runtime.portfolio import EscalationPolicy
from .admission import AdmissionController, OverloadLevel, TenantPolicy
from .breaker import BreakerState, CircuitBreaker

#: Backends a request may name (mirrors the facade's dispatch table,
#: minus the ones whose queries are not JSON-expressible).
SERVABLE_BACKENDS = ("smt", "dafny")


@dataclass
class ServeConfig:
    """Every serve knob in one place (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8650
    spool_dir: Union[str, Path] = ".repro-serve"
    # Admission: the bounded queue and tenant defaults.
    queue_limit: int = 8
    workers: int = 2
    default_rate: float = 50.0
    default_burst: float = 100.0
    shed_priority_floor: int = 1
    # The ladder's budgets: full-service vs degraded (fast UNKNOWN).
    deadline_seconds: float = 30.0
    degraded_deadline: float = 0.5
    degraded_conflicts: int = 2_000
    # Breaker.
    breaker_threshold: int = 3
    breaker_reset: float = 5.0
    # HTTP hygiene.
    read_timeout: float = 5.0
    max_body_bytes: int = 1 << 20
    # Engine knobs passed through to every solve.
    jobs: Optional[int] = None
    certify: Optional[bool] = None
    tenants: list[TenantPolicy] = field(default_factory=list)
    # Cluster identity: this replica's name (defaults to host:port) and
    # its spool lease heartbeat TTL — the window a router must wait out
    # before taking over this replica's journal (see SpoolLease).
    name: Optional[str] = None
    lease_ttl: float = 10.0


class AnalysisService:
    """Transport-free service core; the HTTP layer is a thin skin."""

    #: Chaos-injection slot (see repro.runtime.chaos.inject_faults).
    _chaos = None

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        runner: Optional[BatchRunner] = None,
        admission: Optional[AdmissionController] = None,
        breaker: Optional[CircuitBreaker] = None,
        solve_fn: Optional[
            Callable[[JobRecord, Optional[Budget], Any], AnalysisOutcome]
        ] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or ServeConfig()
        cfg = self.config
        self.name = cfg.name or f"{cfg.host}:{cfg.port}"
        self.runner = runner or BatchRunner(
            cfg.spool_dir, owner=self.name, lease_ttl=cfg.lease_ttl)
        self.admission = admission or AdmissionController(
            queue_limit=cfg.queue_limit,
            shed_priority_floor=cfg.shed_priority_floor,
            default_rate=cfg.default_rate,
            default_burst=cfg.default_burst,
            clock=clock,
        )
        for policy in cfg.tenants:
            self.admission.register_tenant(policy)
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=cfg.breaker_threshold,
            reset_seconds=cfg.breaker_reset,
            clock=clock,
        )
        # Test seam: replaces the real solve (rec, budget, escalation).
        self._solve_fn = solve_fn
        self._clock = clock
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, cfg.workers),
            thread_name_prefix="repro-serve",
        )
        self.draining = False
        self.started_at = clock()
        # Budgets of in-flight solves, for drain to cancel cooperatively.
        self._inflight: dict[str, Budget] = {}
        self._inflight_lock = threading.Lock()
        # Service-level counters (cheap ints; /healthz and the bench
        # read them — Prometheus series live in repro.obs).
        self._counters_lock = threading.Lock()
        self.counters = {
            "requests": 0, "admitted": 0, "rejected": 0, "replayed": 0,
            "solved": 0, "degraded": 0, "breaker_fast_unknown": 0,
            "faults": 0, "drained": 0, "probe_lost": 0, "lease_lost": 0,
            "lease_reacquired": 0,
        }
        obs.enable()
        # Own the spool: force=True because configuration — not a lease
        # race — decides which process serves a spool; a restart after
        # SIGKILL (or after a router's handoff finished) must reclaim
        # its own journal immediately, not wait out a stale TTL.
        self.runner.lease.acquire(self.name, force=True)
        self._lease_stop = threading.Event()
        self._lease_thread = threading.Thread(
            target=self._lease_heartbeat, name="repro-serve-lease",
            daemon=True)
        self._lease_thread.start()
        # Bound span memory for the long-lived server; a live trace
        # view losing the head of a very old trace is the right trade.
        TRACER.max_records = 20_000
        # Live solver progress: per-job ring buffers behind
        # /v1/jobs/<id>/progress, mirrored under <spool>/progress/ so
        # `repro top <spool>` works even without the HTTP plane.
        self.progress = ProgressBook(Path(cfg.spool_dir) / "progress")
        BEACON.enable(self.progress.record)

    def _count(self, key: str, n: int = 1) -> None:
        with self._counters_lock:
            self.counters[key] += n

    def _lease_heartbeat(self) -> None:
        """Renew the spool lease well inside its TTL.

        A failed renewal means a router took the spool over (it
        believed us dead).  We keep *serving* — in-flight answers to
        connected clients are still valid — but the runner is fenced:
        a zombie owner journaling stale ``done`` records over a
        handed-off journal is exactly the split-brain corruption the
        lease exists to prevent.  Once the usurper's handoff finishes
        (its lease released or gone stale), a plain non-forced
        ``acquire`` succeeds and the fence lifts — the replica heals
        back into full ownership of its spool.
        """
        interval = max(0.05, self.config.lease_ttl / 3.0)
        while not self._lease_stop.wait(interval):
            if self.runner.lease.renew():
                continue
            self._count("lease_lost")
            self.runner.fenced = True
            if self.runner.lease.acquire(self.name):
                self.runner.fenced = False
                self._count("lease_reacquired")
                if METRICS.enabled:
                    METRICS.counter_inc(
                        "repro_serve_lease_reacquired_total")

    # ----- request validation ----------------------------------------------

    @staticmethod
    def _validate(payload: Any) -> dict:
        """Normalize one /v1/analyze payload; ValueError on bad input."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ValueError("'source' must be a non-empty Buffy program")
        backend = payload.get("backend", "smt")
        if backend not in SERVABLE_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r};"
                f" expected one of {SERVABLE_BACKENDS}"
            )
        steps = payload.get("steps", 6)
        if not isinstance(steps, int) or not 1 <= steps <= 64:
            raise ValueError("'steps' must be an integer in [1, 64]")
        consts = payload.get("consts") or {}
        if not isinstance(consts, dict) or not all(
            isinstance(k, str) and isinstance(v, int)
            for k, v in consts.items()
        ):
            raise ValueError("'consts' must map names to integers")
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError("'options' must be an object")
        label = payload.get("label")
        if label is not None and not isinstance(label, str):
            raise ValueError("'label' must be a string")
        return {
            "source": source, "backend": backend, "steps": steps,
            "consts": consts, "prove": bool(payload.get("prove")),
            "options": options, "label": label,
        }

    # ----- the request path -------------------------------------------------

    async def analyze(self, payload: Any, tenant: str = "default",
                      traceparent: Optional[str] = None) -> tuple[int, dict]:
        """Serve one analysis request; returns ``(status, body)``.

        Every path out of here is a terminal answer: a verdict, a fast
        UNKNOWN, or a reject with ``retry_after`` — never a hang.

        A caller-provided ``traceparent`` is adopted for the whole
        request, so the ``serve-request`` span (and everything under
        it, across the journal and the portfolio workers) joins the
        caller's distributed trace; the response carries the
        ``trace_id`` either way.
        """
        with TRACER.activate(traceparent), \
                TRACER.span("serve-request", tenant=tenant) as span:
            status, body = await self._analyze(payload, tenant, span)
            if isinstance(body, dict):
                trace_id = TRACER.current_trace_id()
                if trace_id:
                    body.setdefault("trace_id", trace_id)
            span.set("status", status)
            return status, body

    async def _analyze(self, payload: Any, tenant: str,
                       span) -> tuple[int, dict]:
        self._count("requests")
        if METRICS.enabled:
            METRICS.counter_inc("repro_serve_requests_total", tenant=tenant)
        try:
            spec = self._validate(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        if isinstance(payload, dict):
            tenant = payload.get("tenant", tenant) or tenant
            priority = payload.get("priority")
        else:  # pragma: no cover - _validate already rejected this
            priority = None
        if priority is not None and not isinstance(priority, int):
            return 400, {"error": "'priority' must be an integer"}

        with TRACER.span("serve-admission", tenant=tenant) as adm_span:
            adm = self.admission.admit(tenant, priority)
            adm_span.set("admitted", adm.admitted)
            adm_span.set("level", int(adm.level))
        if not adm.admitted:
            self._count("rejected")
            return adm.status, {
                "error": "rejected",
                "reason": adm.reason,
                "level": int(adm.level),
                "retry_after": float(adm.retry_after_header),
            }
        self._count("admitted")

        try:
            with TRACER.span("journal-submit"):
                rec = self.runner.submit_one(
                    spec["source"], label=spec["label"],
                    backend=spec["backend"], steps=spec["steps"],
                    consts=spec["consts"], prove=spec["prove"],
                    options=spec["options"],
                )
        except Exception as exc:
            self.admission.note_abandoned()
            return 400, {"error": f"submit failed: {exc!r}"}
        span.set("job", rec.job_id[:12])

        if rec.state == "done" and rec.verdict is not None:
            # Journal replay: this exact job already has a verdict.
            self.admission.note_abandoned()
            self._count("replayed")
            if METRICS.enabled:
                METRICS.counter_inc("repro_serve_replayed_total")
            return 200, {
                "job_id": rec.job_id,
                "verdict": rec.verdict,
                "exit_code": rec.exit_code,
                "level": int(adm.level),
                "attempts": rec.attempts,
                "replayed": True,
            }

        loop = asyncio.get_running_loop()
        # run_in_executor does not carry contextvars: snapshot here so
        # the solve thread inherits this request's span stack and trace
        # context (the serve-request span parents the solve-job span).
        ctx = contextvars.copy_context()
        try:
            outcome, note = await loop.run_in_executor(
                self._pool, ctx.run, self._execute_job, rec, adm.level,
                tenant,
            )
        except RuntimeError:
            # The pool was shut down by a racing drain: the job stays
            # journaled pending; resume will finish it.
            self.admission.note_abandoned()
            self._count("drained")
            return 503, {
                "error": "draining", "job_id": rec.job_id,
                "retry_after": self.admission.drain_retry_after,
            }

        status = 200
        body = {
            "job_id": rec.job_id,
            "verdict": outcome.verdict.value,
            "exit_code": outcome.exit_code,
            "level": int(adm.level),
            "attempts": rec.attempts,
        }
        if note:
            body["note"] = note
        if note == "invalid":
            status = 400
            body["error"] = outcome.stats.get("error", "invalid program")
        if outcome.report is not None:
            body["reason"] = outcome.report.reason.value
            body["elapsed_seconds"] = round(
                outcome.report.elapsed_seconds, 6)
        if note == "drained":
            # Terminal for this connection, but the work is journaled
            # for resume: tell the client when to come back.
            status = 503
            body["retry_after"] = self.admission.drain_retry_after
        if note == "probe_lost":
            # Lost the half-open probe race: a quick retry gets either
            # a healthy (re-closed) breaker or an honest open one.
            status = 503
            body["error"] = "breaker half-open: probe in flight"
            body["retry_after"] = max(0.1, self.breaker.retry_after())
        return status, body

    # ----- worker-thread execution ------------------------------------------

    def _execute_job(self, rec: JobRecord, level: OverloadLevel,
                     tenant: str) -> tuple[AnalysisOutcome, str]:
        """Solve one admitted job under the ladder's budget (in a
        worker thread); returns ``(outcome, note)``.

        Runs under the request's copied context, so the ``solve-job``
        span parents under ``serve-request`` and every progress beacon
        emitted below (CDCL conflicts, portfolio workers) is stamped
        with this job's id.
        """
        with TRACER.span("solve-job", job=rec.job_id[:12]) as span, \
                progress_scope(rec.job_id):
            outcome, note = self._execute_job_inner(rec, level, tenant)
            span.set("verdict", outcome.verdict.value)
            if note:
                span.set("note", note)
            return outcome, note

    def _execute_job_inner(self, rec: JobRecord, level: OverloadLevel,
                           tenant: str) -> tuple[AnalysisOutcome, str]:
        self.admission.note_started()
        started = self._clock()
        try:
            if self.draining:
                # Raced a drain after admission: don't start a solve
                # that would only be cancelled — leave the job pending.
                self._count("drained")
                return self._fast_unknown(
                    ExhaustionReason.CANCELLED, "draining", started,
                ), "drained"
            if not self.breaker.allow():
                if self.breaker.state is BreakerState.HALF_OPEN:
                    # Lost the probe race: another request is already in
                    # flight testing the substrate.  Tell the caller to
                    # retry shortly (503 + Retry-After) instead of
                    # answering a misleading UNKNOWN — the probe's
                    # outcome decides the breaker in one request's time.
                    self._count("probe_lost")
                    if METRICS.enabled:
                        METRICS.counter_inc(
                            "repro_serve_probe_lost_total")
                    return self._fast_unknown(
                        ExhaustionReason.CANCELLED,
                        "breaker half-open: probe in flight", started,
                    ), "probe_lost"
                # OPEN breaker: answer immediately, never solve.  The
                # job stays pending — resume completes it once healthy.
                self._count("breaker_fast_unknown")
                if METRICS.enabled:
                    METRICS.counter_inc("repro_serve_fast_unknown_total",
                                        cause="breaker")
                return self._fast_unknown(
                    ExhaustionReason.FAULT, "circuit breaker open", started,
                ), "breaker_open"

            budget, escalation = self._request_knobs(level)
            if level is not OverloadLevel.NORMAL:
                self._count("degraded")
            with self._inflight_lock:
                self._inflight[rec.job_id] = budget
            self.runner.mark_running(rec)
            try:
                outcome = self._solve(rec, budget, escalation)
            except SolverFault as exc:
                self.breaker.record_failure()
                self.runner.mark_failed(rec, repr(exc))
                self._count("faults")
                if METRICS.enabled:
                    METRICS.counter_inc("repro_serve_fast_unknown_total",
                                        cause="fault")
                return self._fast_unknown(
                    ExhaustionReason.FAULT, repr(exc), started,
                ), "fault"
            except Exception as exc:
                # Permanent (parse/type errors): the client's fault,
                # not the substrate's — no breaker signal, straight to
                # the deadletter state like a batch run would.
                self.runner.mark_deadletter(rec, repr(exc))
                return AnalysisOutcome(
                    verdict=Verdict.UNDECIDED,
                    stats={"error": str(exc)},
                ), "invalid"
            finally:
                with self._inflight_lock:
                    self._inflight.pop(rec.job_id, None)

            self._feed_breaker(outcome)
            report = outcome.report
            if (report is not None
                    and report.reason is ExhaustionReason.CANCELLED
                    and self.draining):
                # Cancelled mid-solve by drain; any CDCL checkpoint was
                # already saved by the solver.  Journal for resume.
                self.runner.mark_failed(rec, "cancelled by drain")
                self._count("drained")
                return outcome, "drained"
            if outcome.verdict in (Verdict.PROVED, Verdict.VIOLATED):
                self.runner.mark_done(rec, outcome)
            else:
                # Terminal for the client, retryable for the journal.
                reason = report.reason.value if report else "undecided"
                self.runner.mark_failed(rec, f"unknown: {reason}")
            self._count("solved")
            return outcome, ""
        finally:
            self.admission.note_finished(tenant, self._clock() - started)
            if METRICS.enabled:
                METRICS.observe(
                    "repro_serve_request_seconds",
                    self._clock() - started,
                )

    def _solve(self, rec: JobRecord, budget: Optional[Budget],
               escalation) -> AnalysisOutcome:
        chaos = self._chaos
        if chaos is not None and chaos.should_kill_request_worker():
            raise InjectedFault(
                f"injected worker kill under request {rec.job_id[:12]}"
            )
        if self._solve_fn is not None:
            return self._solve_fn(rec, budget, escalation)
        return self.runner.execute_record(
            rec, budget=budget, escalation=escalation,
            jobs=self.config.jobs, certify=self.config.certify,
        )

    def _request_knobs(
        self, level: OverloadLevel,
    ) -> tuple[Budget, Optional[EscalationPolicy]]:
        """The ladder's teeth: budgets by overload level.

        NORMAL gets the full deadline and the backend's own escalation;
        DEGRADED/SHEDDING get a short deadline, a conflict cap, and a
        one-attempt policy (no escalation) — saturated requests answer
        a fast UNKNOWN instead of queueing a slow verdict.
        """
        cfg = self.config
        if level is OverloadLevel.NORMAL:
            return Budget(deadline_seconds=cfg.deadline_seconds), None
        return (
            Budget(
                deadline_seconds=cfg.degraded_deadline,
                max_conflicts=cfg.degraded_conflicts,
            ),
            EscalationPolicy(max_attempts=1),
        )

    def _feed_breaker(self, outcome: AnalysisOutcome) -> None:
        """Classify one solve for the breaker: infrastructure sickness
        (faults, quarantines, a degraded journal) counts against it;
        verdicts — including honest UNKNOWNs — count for it."""
        report = outcome.report
        sick = self.runner.journal.degraded
        if report is not None:
            if report.reason in (ExhaustionReason.FAULT,
                                 ExhaustionReason.QUARANTINED):
                sick = True
            if report.quarantined_queries:
                sick = True
        if sick:
            self.breaker.record_failure()
        else:
            self.breaker.record_success()

    def _fast_unknown(self, reason: ExhaustionReason, message: str,
                      started: float) -> AnalysisOutcome:
        report = ResourceReport(
            reason=reason, message=message,
            elapsed_seconds=self._clock() - started,
        )
        return AnalysisOutcome(
            verdict=verdict_for_unknown(report), report=report,
        )

    # ----- read-only endpoints ----------------------------------------------

    def job_status(self, job_id: str) -> tuple[int, dict]:
        jobs, _ = self.runner.load()
        rec = jobs.get(job_id)
        if rec is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, {
            "job_id": rec.job_id,
            "label": rec.label,
            "state": rec.state,
            "attempts": rec.attempts,
            "verdict": rec.verdict,
            "exit_code": rec.exit_code,
            "error": rec.error,
            "trace_id": rec.trace_id,
        }

    def jobs_index(self) -> tuple[int, dict]:
        """`GET /v1/jobs`: the journaled job table plus, per job, the
        latest live progress sample — the feed behind ``repro top``."""
        report = self.runner.status().to_json()
        for row in report["jobs"]:
            latest = self.progress.latest(row["job_id"])
            if latest is not None:
                row["progress"] = latest
        report["level"] = int(self.admission.level())
        report["queued"] = self.admission.queued
        report["running"] = self.admission.running
        report["draining"] = self.draining
        return 200, report

    def job_trace(self, job_id: str) -> tuple[int, dict]:
        """`GET /v1/jobs/<id>/trace`: the job's stitched span tree.

        Spans are matched by the trace id journaled at submission, so
        the tree covers every process that served this job — the
        original request, its portfolio workers, and any later resume
        that re-adopted the trace.
        """
        jobs, _ = self.runner.load()
        rec = jobs.get(job_id)
        if rec is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        trace_id = rec.trace_id
        if trace_id is None:
            return 200, {"job_id": job_id, "trace_id": None, "spans": []}
        records = [r for r in list(TRACER.records)
                   if r.trace_id == trace_id]
        return 200, {
            "job_id": job_id,
            "trace_id": trace_id,
            "traceparent": rec.trace,
            "span_count": len(records),
            "spans": span_tree(records),
        }

    def job_progress(self, job_id: str) -> tuple[int, dict]:
        """`GET /v1/jobs/<id>/progress`: the live solver-progress ring."""
        jobs, _ = self.runner.load()
        rec = jobs.get(job_id)
        if rec is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, {
            "job_id": job_id,
            "state": rec.state,
            "latest": self.progress.latest(job_id),
            "samples": self.progress.samples(job_id),
        }

    def health(self) -> tuple[int, dict]:
        """Liveness: the process is up and its control plane answers."""
        with self._counters_lock:
            counters = dict(self.counters)
        return 200, {
            "state": "draining" if self.draining else "ok",
            "name": self.name,
            "lease_holder": self.runner.lease.holder(),
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "level": int(self.admission.level()),
            "queued": self.admission.queued,
            "running": self.admission.running,
            "queue_limit": self.admission.queue_limit,
            "max_queued": self.admission.max_queued,
            "breaker": self.breaker.describe(),
            "journal_degraded": self.runner.journal.degraded,
            "cache": {
                "hits": self.runner.cache.stats.hits,
                "misses": self.runner.cache.stats.misses,
            },
            "counters": counters,
        }

    def ready(self) -> tuple[int, dict]:
        """Readiness: should a balancer route new work here?

        Not ready while draining or with an OPEN breaker.  The body
        carries the batch spool's per-state counts (the `batch status
        --json` shape), so ops scripts see backlog and orphans.
        """
        batch = self.runner.status().to_json()
        breaker_state = self.breaker.state
        ok = not self.draining and breaker_state is not BreakerState.OPEN
        body = {
            "ready": ok,
            "draining": self.draining,
            "breaker": breaker_state.value,
            "level": int(self.admission.level()),
            "queued": self.admission.queued,
            "queue_limit": self.admission.queue_limit,
            "batch": batch["counts"],
        }
        return (200 if ok else 503), body

    def metrics_text(self) -> str:
        """Prometheus exposition of everything repro.obs has recorded."""
        return obs.capture().to_prometheus()

    # ----- drain ------------------------------------------------------------

    def drain(self) -> dict:
        """Graceful SIGTERM semantics: stop admitting, cancel in-flight
        budgets (solves checkpoint and stop at their next safepoint),
        flush the journal, and leave the backlog for ``batch resume``.

        Idempotent; returns a summary of what was left behind.
        """
        self.draining = True
        self.admission.draining = True
        with self._inflight_lock:
            cancelled = len(self._inflight)
            for budget in self._inflight.values():
                budget.cancel()
        self._pool.shutdown(wait=True)
        self.runner.journal.flush()
        # Surrender the spool lease *after* the journal is flushed: a
        # voluntary release lets a router take the backlog over
        # immediately instead of waiting out the heartbeat TTL.
        self._lease_stop.set()
        self.runner.lease.release()
        report = self.runner.status()
        counts = report.by_state()
        left = sum(
            counts.get(s, 0)
            for s in ("pending", "failed", "orphaned", "running")
        )
        if METRICS.enabled:
            METRICS.counter_inc("repro_serve_drains_total")
        return {
            "drained": True,
            "cancelled_inflight": cancelled,
            "jobs_left_for_resume": left,
            "counts": counts,
        }

    def close(self) -> None:
        if not self.draining:
            self.drain()
        self.runner.close()
