"""The asyncio HTTP/1.1 skin over :class:`AnalysisService`.

Stdlib-only: ``asyncio.start_server`` plus a deliberately small
HTTP/1.1 parser (request line, headers, ``Content-Length`` body).
Transport-level robustness lives here:

* every read runs under ``read_timeout`` — a slow or wedged client
  (see the ``slow_client`` chaos hook) costs one connection, answered
  ``408``, never a held worker or a blocked loop;
* bodies are capped at ``max_body_bytes`` (``413``);
* every response carries ``Content-Length`` and ``Connection: close``
  — no keep-alive state machine to get wrong;
* rejects surface ``Retry-After`` as a real header, so off-the-shelf
  clients back off correctly;
* SIGTERM/SIGINT stop the accept loop first, then
  :meth:`AnalysisService.drain` cancels in-flight budgets and journals
  the backlog for ``repro batch resume``.

Routes::

    POST /v1/analyze               submit a Buffy program + query
    GET  /v1/jobs                  journaled jobs + live progress index
    GET  /v1/jobs/<id>             one journaled job's state
    GET  /v1/jobs/<id>/trace       the job's stitched span tree (JSON)
    GET  /v1/jobs/<id>/progress    live solver-progress ring buffer
    GET  /v1/cluster               topology + replica health (router mode)
    GET  /healthz                  liveness + control-plane counters
    GET  /readyz                   readiness (503 while draining/breaker-open)
    GET  /metrics                  Prometheus text exposition

The server binds to a *service object* by duck typing, not by class:
a :class:`~repro.serve.cluster.ClusterService` (the shard router)
serves the same routes, with its read-path methods returning
awaitables — :func:`_resolve` absorbs the difference.

Distributed tracing: ``POST /v1/analyze`` reads an optional W3C-style
``traceparent`` header and threads it through the service, so the
request's spans (and everything downstream: journal, workers, a later
``batch resume``) join the caller's trace.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import signal
import threading
from typing import Optional

from .service import AnalysisService


async def _resolve(value):
    """Await the result when the service method is async (the cluster
    router's proxied reads); pass through plain values otherwise."""
    if inspect.isawaitable(value):
        return await value
    return value

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ReproServer:
    """One listening socket bound to one :class:`AnalysisService`."""

    def __init__(
        self,
        service: AnalysisService,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ):
        self.service = service
        cfg = service.config
        self.host = cfg.host if host is None else host
        self.port = cfg.port if port is None else port
        self._server: Optional[asyncio.base_events.Server] = None
        # Open-connection tasks: a drain must let these finish writing
        # their terminal answers before the loop goes away.
        self._conns: set = set()
        # Background-thread mode (tests): loop + stop event + thread.
        self._bg_loop: Optional[asyncio.AbstractEventLoop] = None
        self._bg_stop: Optional[asyncio.Event] = None
        self._bg_thread: Optional[threading.Thread] = None

    # ----- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind and listen; with ``port=0`` the chosen port is published
        back onto ``self.port``."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting; in-flight handlers run to completion."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _wait_conns(self, timeout: float = 30.0) -> None:
        """Let open connections finish writing their terminal answers."""
        conns = [t for t in self._conns if t is not asyncio.current_task()]
        if conns:
            await asyncio.wait(conns, timeout=timeout)

    async def serve_until_signalled(self) -> dict:
        """The ``repro serve`` main: run until SIGTERM/SIGINT, then
        stop accepting, drain, and return the drain summary.

        Drain order matters: stop the listener (no new admissions),
        cancel in-flight budgets (solves checkpoint and return), then
        wait for the open connections — every accepted request still
        gets its terminal answer before the loop exits.
        """
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self.start()
        await stop.wait()
        await self.stop()
        summary = await loop.run_in_executor(None, self.service.drain)
        await self._wait_conns()
        return summary

    # ----- background-thread mode (tests, benches) --------------------------

    def start_background(self, timeout: float = 10.0) -> None:
        """Run the server on its own event-loop thread; returns once
        listening (``self.port`` is then final)."""
        started = threading.Event()

        async def _main() -> None:
            self._bg_stop = asyncio.Event()
            await self.start()
            started.set()
            await self._bg_stop.wait()
            await self.stop()
            await self._wait_conns()

        def _run() -> None:
            self._bg_loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._bg_loop)
            try:
                self._bg_loop.run_until_complete(_main())
            finally:
                self._bg_loop.close()

        self._bg_thread = threading.Thread(
            target=_run, name="repro-serve-loop", daemon=True)
        self._bg_thread.start()
        if not started.wait(timeout):  # pragma: no cover - startup hang
            raise RuntimeError("server failed to start listening")

    def stop_background(self, drain: bool = True,
                        timeout: float = 30.0) -> Optional[dict]:
        """Stop the background server; optionally drain the service.

        Draining happens while the loop is still alive so that handlers
        blocked on cancelled solves can resume and answer before the
        loop shuts down (same ordering as the SIGTERM path).
        """
        summary = self.service.drain() if drain else None
        if self._bg_loop is not None and self._bg_stop is not None:
            self._bg_loop.call_soon_threadsafe(self._bg_stop.set)
        if self._bg_thread is not None:
            self._bg_thread.join(timeout)
            self._bg_thread = None
        return summary

    # ----- one connection ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        cfg = self.service.config
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
            task.add_done_callback(self._conns.discard)
        try:
            status, headers, body = await self._respond(reader, cfg)
        except asyncio.TimeoutError:
            status, headers, body = 408, {}, _json_body(
                {"error": "request read timed out"})
        except Exception as exc:  # never a dropped connection
            status, headers, body = 500, {}, _json_body(
                {"error": f"internal error: {exc!r}"})
        try:
            writer.write(_render(status, headers, body))
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(self, reader: asyncio.StreamReader,
                       cfg) -> tuple[int, dict, bytes]:
        # Chaos: a slow client stalls only this connection's read path.
        chaos = type(self.service)._chaos
        if chaos is not None:
            delay = chaos.slow_client_delay()
            if delay > 0.0:
                await asyncio.sleep(delay)

        async def read_line() -> bytes:
            return await asyncio.wait_for(
                reader.readline(), cfg.read_timeout)

        request_line = (await read_line()).decode("latin-1").strip()
        if not request_line:
            return 400, {}, _json_body({"error": "empty request"})
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {}, _json_body(
                {"error": f"malformed request line: {request_line!r}"})
        method, target, _version = parts

        headers: dict[str, str] = {}
        while True:
            line = (await read_line()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                return 400, {}, _json_body(
                    {"error": "bad Content-Length"})
            if n > cfg.max_body_bytes:
                return 413, {}, _json_body({
                    "error": f"body exceeds {cfg.max_body_bytes} bytes"})
            if n:
                body = await asyncio.wait_for(
                    reader.readexactly(n), cfg.read_timeout)

        return await self._route(method, target, headers, body)

    # ----- routing ----------------------------------------------------------

    async def _route(self, method: str, target: str, headers: dict,
                     body: bytes) -> tuple[int, dict, bytes]:
        service = self.service
        path = target.split("?", 1)[0]

        if path == "/v1/analyze":
            if method != "POST":
                return 405, {"Allow": "POST"}, _json_body(
                    {"error": "use POST"})
            try:
                payload = json.loads(body.decode("utf-8") or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, {}, _json_body(
                    {"error": f"bad JSON body: {exc}"})
            tenant = headers.get("x-repro-tenant", "default")
            status, doc = await service.analyze(
                payload, tenant=tenant,
                traceparent=headers.get("traceparent"))
            return status, _retry_header(status, doc), _json_body(doc)

        if path == "/v1/jobs" and method == "GET":
            status, doc = await _resolve(service.jobs_index())
            return status, {}, _json_body(doc)

        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/trace"):
                result = service.job_trace(rest[:-len("/trace")])
            elif rest.endswith("/progress"):
                result = service.job_progress(rest[:-len("/progress")])
            else:
                result = service.job_status(rest)
            status, doc = await _resolve(result)
            return status, {}, _json_body(doc)

        if path == "/v1/cluster" and method == "GET":
            info = getattr(service, "cluster_info", None)
            if info is None:
                return 404, {}, _json_body(
                    {"error": "not a cluster router"})
            status, doc = await _resolve(info())
            return status, {}, _json_body(doc)

        if path == "/healthz" and method == "GET":
            status, doc = service.health()
            return status, {}, _json_body(doc)

        if path == "/readyz" and method == "GET":
            status, doc = service.ready()
            return status, _retry_header(status, doc), _json_body(doc)

        if path == "/metrics" and method == "GET":
            text = service.metrics_text()
            return 200, {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
            }, text.encode("utf-8")

        return 404, {}, _json_body({"error": f"no route for {path!r}"})


def _retry_header(status: int, doc: dict) -> dict:
    if status in (429, 503):
        retry = doc.get("retry_after", 1)
        try:
            seconds = max(1, int(float(retry) + 0.999))
        except (TypeError, ValueError):
            seconds = 1
        return {"Retry-After": str(seconds)}
    return {}


def _json_body(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def _render(status: int, headers: dict, body: bytes) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    base = {
        "Content-Type": "application/json; charset=utf-8",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    base.update(headers)
    base["Content-Length"] = str(len(body))
    for name, value in base.items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
