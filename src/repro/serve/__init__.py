"""repro.serve — the overload-safe, self-healing analysis service.

Layers (transport-free core first):

* :mod:`repro.serve.admission` — bounded queue, per-tenant token
  buckets + budget accounting, and the overload ladder
  (NORMAL → DEGRADED → SHEDDING);
* :mod:`repro.serve.breaker` — circuit breaker around the
  portfolio/backend solve path;
* :mod:`repro.serve.service` — :class:`AnalysisService`: admission,
  durable jobs through the batch journal, ladder budgets, graceful
  drain;
* :mod:`repro.serve.cluster` — the multi-replica topology:
  consistent-hash ring, health-probed replica registry, the shard
  router (``repro serve --route``), and journal handoff;
* :mod:`repro.serve.http` — the asyncio HTTP/1.1 skin
  (:class:`ReproServer`) and the ``repro serve`` main loop.

The client half lives in :mod:`repro.client` (retry/backoff honoring
``Retry-After``, endpoint failover, total-deadline budgets).
"""

from .admission import (
    Admission,
    AdmissionController,
    OverloadLevel,
    TenantPolicy,
    TokenBucket,
)
from .breaker import BreakerState, CircuitBreaker
from .cluster import (
    ClusterService,
    HashRing,
    Replica,
    ReplicaRegistry,
    ReplicaState,
    RouterConfig,
    parse_replica,
)
from .http import ReproServer
from .service import AnalysisService, ServeConfig

__all__ = [
    "Admission",
    "AdmissionController",
    "AnalysisService",
    "BreakerState",
    "CircuitBreaker",
    "ClusterService",
    "HashRing",
    "OverloadLevel",
    "Replica",
    "ReplicaRegistry",
    "ReplicaState",
    "ReproServer",
    "RouterConfig",
    "ServeConfig",
    "TenantPolicy",
    "TokenBucket",
    "parse_replica",
]
