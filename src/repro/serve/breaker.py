"""Circuit breaker around the portfolio/backend solve path.

When the solving substrate itself is sick — portfolio workers being
repeatedly killed and quarantined, the journal disk failing — pushing
every request into it just burns each request's full deadline on a
doomed solve.  The breaker converts that failure mode into *fast*
UNKNOWN answers:

* ``CLOSED``    — healthy; requests solve normally.  ``failure_threshold``
  consecutive failures trip the breaker.
* ``OPEN``      — every request short-circuits to an immediate UNKNOWN
  (the service still answers — a breaker never drops a connection).
  After ``reset_seconds`` the breaker admits probes.
* ``HALF_OPEN`` — up to ``probe_limit`` concurrent requests go through
  as probes; a probe succeeding closes the breaker, a probe failing
  re-opens it (and restarts the reset clock).

"Failure" is infrastructure, not verdicts: a :class:`SolverFault`
(worker lost mid-request), a quarantined query, or the write-ahead
journal degrading.  A VIOLATED verdict is a *successful* analysis.

Thread-safe; the clock is injectable so tests drive transitions
without sleeping.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from ..obs import METRICS


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding, for /metrics: 0 healthy → 2 tripped.
_STATE_GAUGE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 5.0,
        probe_limit: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = max(1, failure_threshold)
        self.reset_seconds = reset_seconds
        self.probe_limit = max(1, probe_limit)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0            # consecutive, while CLOSED
        self._opened_at = 0.0
        self._probes = 0              # in-flight, while HALF_OPEN
        self.trips = 0                # lifetime count, for telemetry

    # ----- observation ------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def retry_after(self) -> float:
        """How long a rejected caller should wait before retrying.

        OPEN: the remainder of the reset window (when probes start).
        HALF_OPEN: a short constant — the in-flight probe resolves in
        one request's time, not a full reset window.  CLOSED: 0.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.OPEN:
                elapsed = self._clock() - self._opened_at
                return max(0.0, self.reset_seconds - elapsed)
            if self._state is BreakerState.HALF_OPEN:
                return 1.0
            return 0.0

    def describe(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state.value,
                "consecutive_failures": self._failures,
                "trips": self.trips,
            }

    # ----- the gate ---------------------------------------------------------

    def allow(self) -> bool:
        """May this request enter the solve path?

        OPEN answers False (short-circuit to fast UNKNOWN).  HALF_OPEN
        admits up to ``probe_limit`` in-flight probes; the caller MUST
        follow up with :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._probes < self.probe_limit:
                    self._probes += 1
                    return True
            return False

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._set_state(BreakerState.HALF_OPEN)
            self._probes = 0

    # ----- outcomes ---------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._set_state(BreakerState.CLOSED)
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._trip()
                return
            if self._state is BreakerState.OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self.trips += 1
        self._failures = 0
        self._opened_at = self._clock()
        self._set_state(BreakerState.OPEN)
        if METRICS.enabled:
            METRICS.counter_inc("repro_serve_breaker_trips_total")

    def _set_state(self, state: BreakerState) -> None:
        self._state = state
        if METRICS.enabled:
            METRICS.gauge_set(
                "repro_serve_breaker_state", _STATE_GAUGE[state])
