"""Admission control: the service's first — and only unbounded — queue
is the TCP accept queue; everything behind it is bounded here.

One :class:`AdmissionController` guards the analysis service's worker
pool.  Every request passes three gates **before** any solver work is
scheduled:

1. **Bounded queue** — at most ``queue_limit`` admitted requests may be
   waiting for a worker.  A full queue answers ``429`` with a
   ``Retry-After`` estimate instead of queueing further: under
   overload, latency stays flat and the backlog cannot collapse the
   process (no unbounded queueing, ever).
2. **Per-tenant token buckets + budgets** — each tenant refills at a
   configured rate with a burst allowance; an empty bucket answers
   ``429`` with the exact refill wait.  A tenant may also carry a
   cumulative solve-seconds budget; a spent budget rejects until an
   operator raises it (accounting survives in the controller).
3. **The load-shedding ladder** — occupancy of the bounded queue picks
   an :class:`OverloadLevel`:

   * ``NORMAL``    — full budgets, the escalation ladder may climb;
   * ``DEGRADED``  — admitted, but the service tightens per-request
     budgets (short deadline, capped conflicts, no escalation) so
     saturated requests degrade to *fast UNKNOWN* verdicts rather than
     slow answers;
   * ``SHEDDING``  — additionally, tenants below the priority floor are
     rejected outright (``429``): the cheapest work to not do is the
     work nobody is waiting on.

Determinism: the controller takes an injectable ``clock`` so tests can
drive refills and levels without sleeping.
"""

from __future__ import annotations

import enum
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import METRICS


class OverloadLevel(enum.IntEnum):
    """Where the service sits on the admission → degrade → shed ladder."""

    NORMAL = 0
    DEGRADED = 1
    SHEDDING = 2


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = max(1e-9, rate)
        self.burst = max(1.0, burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def take(self, n: float = 1.0) -> float:
        """Take ``n`` tokens; returns 0.0 on success, else seconds to wait."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass
class TenantPolicy:
    """Per-tenant admission knobs (all optional; defaults apply)."""

    name: str
    rate: float = 10.0            # token refills per second
    burst: float = 20.0           # bucket capacity
    priority: int = 0             # higher = survives shedding longer
    budget_seconds: Optional[float] = None  # cumulative solve-second cap


@dataclass
class TenantAccount:
    """What one tenant has consumed (the budget-accounting ledger)."""

    policy: TenantPolicy
    bucket: TokenBucket
    admitted: int = 0
    rejected: int = 0
    spent_seconds: float = 0.0

    @property
    def budget_exhausted(self) -> bool:
        cap = self.policy.budget_seconds
        return cap is not None and self.spent_seconds >= cap


@dataclass(frozen=True)
class Admission:
    """One admission decision, ready to render as an HTTP answer."""

    admitted: bool
    level: OverloadLevel
    status: int = 200             # 429 / 503 when rejected
    retry_after: float = 0.0      # seconds (the Retry-After header)
    reason: str = ""              # queue_full | rate_limited | budget |
    #                               shed | draining

    @property
    def retry_after_header(self) -> str:
        """Retry-After as an integer-seconds header value (ceil, >= 1)."""
        return str(max(1, math.ceil(self.retry_after)))


class AdmissionController:
    """Bounded-queue admission with per-tenant rate limits and shedding.

    Thread-safe: the asyncio loop admits while worker threads retire, so
    every mutation runs under one lock.  The controller never blocks —
    both outcomes of :meth:`admit` return immediately.
    """

    def __init__(
        self,
        queue_limit: int = 8,
        *,
        degrade_ratio: float = 0.5,
        shed_ratio: float = 0.875,
        shed_priority_floor: int = 1,
        default_rate: float = 50.0,
        default_burst: float = 100.0,
        drain_retry_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.queue_limit = max(1, queue_limit)
        self.degrade_ratio = degrade_ratio
        self.shed_ratio = shed_ratio
        self.shed_priority_floor = shed_priority_floor
        self.default_rate = default_rate
        self.default_burst = default_burst
        self.drain_retry_after = drain_retry_after
        self.draining = False
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantAccount] = {}
        # Live occupancy of the bounded queue and the worker pool.
        self.queued = 0
        self.running = 0
        self.max_queued = 0          # high-water mark (the test oracle)
        # EWMA of observed service time, seeding Retry-After estimates.
        self._service_ewma = 0.25

    # ----- tenant registry --------------------------------------------------

    def register_tenant(self, policy: TenantPolicy) -> TenantAccount:
        with self._lock:
            return self._account(policy.name, policy)

    def _account(self, name: str,
                 policy: Optional[TenantPolicy] = None) -> TenantAccount:
        acct = self._tenants.get(name)
        if acct is None:
            policy = policy or TenantPolicy(
                name=name, rate=self.default_rate, burst=self.default_burst,
            )
            acct = TenantAccount(
                policy=policy,
                bucket=TokenBucket(policy.rate, policy.burst, self._clock),
            )
            self._tenants[name] = acct
        elif policy is not None:
            acct.policy = policy
            acct.bucket = TokenBucket(policy.rate, policy.burst, self._clock)
        return acct

    def tenant(self, name: str) -> TenantAccount:
        with self._lock:
            return self._account(name)

    # ----- the ladder -------------------------------------------------------

    def level(self) -> OverloadLevel:
        """Current rung of the admission → degrade → shed ladder."""
        occupancy = self.queued / self.queue_limit
        if occupancy >= self.shed_ratio:
            return OverloadLevel.SHEDDING
        if occupancy >= self.degrade_ratio:
            return OverloadLevel.DEGRADED
        return OverloadLevel.NORMAL

    def _retry_after_estimate(self) -> float:
        """How long until a queue slot frees: backlog over service rate."""
        backlog = self.queued + self.running
        workers = max(1, self.running)
        return max(0.1, self._service_ewma * backlog / workers)

    # ----- admission --------------------------------------------------------

    def admit(self, tenant: str = "default",
              priority: Optional[int] = None) -> Admission:
        """Decide one request; an admitted one holds a queue slot until
        :meth:`note_started` moves it to the worker pool."""
        with self._lock:
            acct = self._account(tenant)
            if priority is None:
                priority = acct.policy.priority
            level = self.level()
            if self.draining:
                return self._reject(
                    acct, level, 503, self.drain_retry_after, "draining")
            if self.queued >= self.queue_limit:
                return self._reject(
                    acct, level, 429, self._retry_after_estimate(),
                    "queue_full")
            if (level is OverloadLevel.SHEDDING
                    and priority < self.shed_priority_floor):
                return self._reject(
                    acct, level, 429, self._retry_after_estimate(), "shed")
            if acct.budget_exhausted:
                return self._reject(acct, level, 429, 60.0, "budget")
            wait = acct.bucket.take()
            if wait > 0.0:
                return self._reject(acct, level, 429, wait, "rate_limited")
            acct.admitted += 1
            self.queued += 1
            if self.queued > self.max_queued:
                self.max_queued = self.queued
            self._gauges(level)
            return Admission(admitted=True, level=level)

    def _reject(self, acct: TenantAccount, level: OverloadLevel,
                status: int, retry_after: float, reason: str) -> Admission:
        acct.rejected += 1
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_serve_rejected_total",
                reason=reason, tenant=acct.policy.name,
            )
        self._gauges(level)
        return Admission(
            admitted=False, level=level, status=status,
            retry_after=retry_after, reason=reason,
        )

    # ----- occupancy bookkeeping (called by the service) --------------------

    def note_started(self) -> None:
        """An admitted request left the queue for a worker thread."""
        with self._lock:
            self.queued = max(0, self.queued - 1)
            self.running += 1
            self._gauges(self.level())

    def note_finished(self, tenant: str, service_seconds: float) -> None:
        """A request retired; fold its cost into accounting and the EWMA."""
        with self._lock:
            self.running = max(0, self.running - 1)
            acct = self._account(tenant)
            acct.spent_seconds += max(0.0, service_seconds)
            self._service_ewma = (
                0.8 * self._service_ewma + 0.2 * max(0.001, service_seconds)
            )
            self._gauges(self.level())

    def note_abandoned(self) -> None:
        """An admitted request never started (shutdown raced it)."""
        with self._lock:
            self.queued = max(0, self.queued - 1)
            self._gauges(self.level())

    def _gauges(self, level: OverloadLevel) -> None:
        if METRICS.enabled:
            METRICS.gauge_set("repro_serve_queue_depth", self.queued)
            METRICS.gauge_set("repro_serve_inflight", self.running)
            METRICS.gauge_set("repro_serve_overload_level", int(level))
