"""Multi-replica topology for ``repro serve``: registry, ring, router.

``repro serve --route host:port,host:port`` runs this module instead of
a solver: a :class:`ClusterService` that looks like an
:class:`~repro.serve.service.AnalysisService` to the HTTP layer but
answers by *routing* — consistent-hashing each content-addressed job id
onto a replica, failing over along the ring when a replica is sick, and
taking over a dead replica's journal so its backlog still finishes.

Three pieces:

* :class:`HashRing` — consistent hashing with virtual nodes.  Job ids
  are already sha256 content hashes, so placement is deterministic:
  the same spec always lands on the same replica while the membership
  holds, keeping that replica's ResultCache and journal warm.  When a
  replica joins or leaves, only ~1/N of the keyspace moves.
* :class:`ReplicaRegistry` — active health probing (``/readyz`` +
  EWMA latency) with the same three-state shape as the request-path
  :class:`~repro.serve.breaker.CircuitBreaker`: consecutive failures
  eject a replica (OPEN), a timed re-admission window lets one probe
  through (HALF_OPEN), and a probe success restores it (CLOSED).
* :class:`ClusterService` — the router.  Forwarding failures walk the
  ring (failover); the replica's journal dedupes the re-routed submit
  because the idempotency key is content-addressed.  When the registry
  *ejects* a replica, the router attempts **journal handoff**: take the
  dead peer's spool lease (:class:`~repro.persist.batch.SpoolLease` —
  refused while the peer's heartbeat is fresh, the split-brain guard),
  adopt verdicts that already exist on surviving replicas (never solve
  the same idempotency key twice), and ``batch resume`` the rest under
  their original trace ids.

Chaos: ``replica_kill`` makes the router treat a forward as a dead
connection; ``probe_flap`` makes the registry see a failed probe.  Both
are installed by :func:`repro.runtime.chaos.inject_faults` via the
class-level ``_chaos`` slots.
"""

from __future__ import annotations

import asyncio
import bisect
import contextvars
import hashlib
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from .. import obs
from ..client import ServiceClient, ServiceUnavailable
from ..obs import METRICS, TRACER
from ..persist.batch import BatchRunner, LeaseHeld, job_id_for
from .service import AnalysisService

#: Statuses that mean "this replica cannot take the job right now" —
#: the router fails over to the next ring node instead of bouncing the
#: client.  429 is *not* here: per-tenant rate limiting is a property of
#: the tenant, not the replica, so it returns to the caller.
FAILOVER_STATUSES = frozenset({503})


# ---------------------------------------------------------------------------
# consistent hashing


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is hashed onto the ring at ``vnodes`` points; a key maps
    to the first node point at or after its own hash.  With ~64 vnodes
    per node the keyspace split is near-uniform and a membership change
    moves only the arcs owned by the changed node — the ≤1/N stability
    property the satellite test pins down.
    """

    def __init__(self, nodes: Sequence[str] = (), *, vnodes: int = 64):
        self.vnodes = max(1, vnodes)
        self._points: list[tuple[int, str]] = []
        self._keys: list[int] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = (self._hash(f"{node}#{i}"), node)
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._keys.insert(idx, point[0])

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        kept = [p for p in self._points if p[1] != node]
        self._points = kept
        self._keys = [p[0] for p in kept]

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def primary(self, key: str) -> Optional[str]:
        """The node owning ``key``, or None on an empty ring."""
        pref = self.preference(key)
        return pref[0] if pref else None

    def preference(self, key: str) -> list[str]:
        """Every node, in ring order starting at ``key``'s owner — the
        failover walk order (each node appears once)."""
        if not self._points:
            return []
        start = bisect.bisect(self._keys, self._hash(key))
        seen: list[str] = []
        n = len(self._points)
        for i in range(n):
            node = self._points[(start + i) % n][1]
            if node not in seen:
                seen.append(node)
        return seen


# ---------------------------------------------------------------------------
# replica registry


class ReplicaState(Enum):
    """Mirrors the circuit breaker: CLOSED / HALF_OPEN / OPEN."""

    HEALTHY = "healthy"
    PROBING = "probing"
    EJECTED = "ejected"


@dataclass
class Replica:
    """One backend ``repro serve`` process, as the router sees it."""

    name: str                      # "host:port" — also its ring identity
    host: str
    port: int
    spool: Optional[Path] = None   # its journal dir, for handoff
    state: ReplicaState = ReplicaState.HEALTHY
    consecutive_failures: int = 0
    ejected_at: float = 0.0
    ewma_seconds: Optional[float] = None
    probes: int = 0
    ejections: int = 0
    readmissions: int = 0

    def describe(self) -> dict:
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "spool": str(self.spool) if self.spool else None,
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "ewma_seconds": (round(self.ewma_seconds, 6)
                             if self.ewma_seconds is not None else None),
            "probes": self.probes,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
        }


def parse_replica(spec: str) -> Replica:
    """``HOST:PORT[=SPOOL]`` → :class:`Replica` (ValueError on junk)."""
    addr, _, spool = spec.partition("=")
    host, _, port_text = addr.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"replica spec {spec!r} is not HOST:PORT[=SPOOL]")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"replica spec {spec!r}: bad port {port_text!r}")
    return Replica(
        name=f"{host}:{port}", host=host, port=port,
        spool=Path(spool) if spool else None,
    )


#: EWMA smoothing for probe/forward latency (recent-heavy).
_EWMA_ALPHA = 0.3

#: Gauge encoding, matching the breaker's: 0 healthy → 2 ejected.
_STATE_GAUGE = {
    ReplicaState.HEALTHY: 0,
    ReplicaState.PROBING: 1,
    ReplicaState.EJECTED: 2,
}


class ReplicaRegistry:
    """Health bookkeeping + the active probe loop over a replica set.

    State machine per replica (names track the breaker deliberately)::

        HEALTHY ──(failure_threshold consecutive failures)──▶ EJECTED
        EJECTED ──(readmit_seconds elapse)──▶ PROBING
        PROBING ──probe ok──▶ HEALTHY        PROBING ──probe fails──▶ EJECTED

    Both active probes and the router's forward results feed the same
    counters (:meth:`note_success` / :meth:`note_failure`), so a replica
    that dies mid-burst is ejected by the traffic itself, before the
    next probe tick.  ``on_eject`` fires once per ejection — the hook
    the router hangs journal handoff on.
    """

    #: Chaos-injection slot (see repro.runtime.chaos.inject_faults).
    _chaos = None

    def __init__(
        self,
        replicas: Sequence[Replica],
        *,
        failure_threshold: int = 3,
        readmit_seconds: float = 5.0,
        probe_interval: float = 1.0,
        probe_timeout: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        probe_fn: Optional[Callable[[Replica], float]] = None,
        on_eject: Optional[Callable[[Replica], None]] = None,
    ):
        self.replicas = {r.name: r for r in replicas}
        self.ring = HashRing(self.replicas)
        self.failure_threshold = max(1, failure_threshold)
        self.readmit_seconds = readmit_seconds
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.on_eject = on_eject
        self._clock = clock
        self._probe_fn = probe_fn or self._probe_http
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ----- the probe loop ---------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._probe_loop, name="repro-cluster-probe", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval):
            self.probe_all()

    def probe_all(self) -> None:
        for replica in list(self.replicas.values()):
            if self._stop.is_set():
                return
            self.probe(replica)

    def probe(self, replica: Replica) -> bool:
        """One active health probe; feeds the same state machine as
        forward results.  EJECTED replicas are probed only once their
        re-admission window has opened (the HALF_OPEN analogue)."""
        with self._lock:
            self._maybe_probing(replica)
            if replica.state is ReplicaState.EJECTED:
                return False
            replica.probes += 1
        chaos = self._chaos
        flapped = chaos is not None and (
            chaos.should_flap_probe()
            or chaos.is_partitioned(f"router->{replica.name}"))
        try:
            if flapped:
                raise ConnectionError("injected probe flap")
            latency = self._probe_fn(replica)
        except Exception:
            self.note_failure(replica)
            return False
        self.note_success(replica, latency)
        return True

    def _probe_http(self, replica: Replica) -> float:
        client = ServiceClient(
            replica.host, replica.port, timeout=self.probe_timeout)
        started = self._clock()
        doc = client.ready()
        if doc.get("status") != 200:
            raise ConnectionError(
                f"{replica.name} /readyz answered {doc.get('status')}")
        latency = self._clock() - started
        if METRICS.enabled:
            METRICS.observe("repro_cluster_probe_seconds", latency)
        return latency

    # ----- outcome accounting (probes AND forwards) -------------------------

    def note_success(self, replica: Replica, latency: float = 0.0) -> None:
        with self._lock:
            replica.consecutive_failures = 0
            if latency > 0.0:
                prev = replica.ewma_seconds
                replica.ewma_seconds = (
                    latency if prev is None
                    else _EWMA_ALPHA * latency + (1 - _EWMA_ALPHA) * prev)
            if replica.state is not ReplicaState.HEALTHY:
                replica.readmissions += 1
                if METRICS.enabled:
                    METRICS.counter_inc(
                        "repro_cluster_readmissions_total",
                        replica=replica.name)
                self._set_state(replica, ReplicaState.HEALTHY)

    def note_failure(self, replica: Replica) -> None:
        ejected = None
        with self._lock:
            replica.consecutive_failures += 1
            if replica.state is ReplicaState.PROBING:
                # A failed re-admission probe re-opens the window.
                ejected = self._eject(replica)
            elif (replica.state is ReplicaState.HEALTHY
                    and replica.consecutive_failures
                    >= self.failure_threshold):
                ejected = self._eject(replica)
        if ejected is not None and self.on_eject is not None:
            self.on_eject(ejected)

    def _eject(self, replica: Replica) -> Replica:
        replica.ejections += 1
        replica.ejected_at = self._clock()
        self._set_state(replica, ReplicaState.EJECTED)
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_cluster_ejections_total", replica=replica.name)
        return replica

    def _maybe_probing(self, replica: Replica) -> None:
        if (replica.state is ReplicaState.EJECTED
                and self._clock() - replica.ejected_at
                >= self.readmit_seconds):
            self._set_state(replica, ReplicaState.PROBING)

    def _set_state(self, replica: Replica, state: ReplicaState) -> None:
        replica.state = state
        if METRICS.enabled:
            METRICS.gauge_set(
                "repro_cluster_replica_state", _STATE_GAUGE[state],
                replica=replica.name)

    # ----- routing views ----------------------------------------------------

    def candidates(self, key: str) -> list[Replica]:
        """Replicas to try for ``key``: the ring's preference order,
        routable (non-EJECTED, with stale ejections re-opened) first."""
        with self._lock:
            for replica in self.replicas.values():
                self._maybe_probing(replica)
            ordered = [self.replicas[n] for n in self.ring.preference(key)
                       if n in self.replicas]
            routable = [r for r in ordered
                        if r.state is not ReplicaState.EJECTED]
            ejected = [r for r in ordered
                       if r.state is ReplicaState.EJECTED]
        return routable + ejected

    def healthy(self) -> list[Replica]:
        with self._lock:
            for replica in self.replicas.values():
                self._maybe_probing(replica)
            return [r for r in self.replicas.values()
                    if r.state is not ReplicaState.EJECTED]

    def describe(self) -> list[dict]:
        with self._lock:
            return [r.describe() for r in self.replicas.values()]


# ---------------------------------------------------------------------------
# the router


@dataclass
class RouterConfig:
    """Router knobs (CLI flags map 1:1).  Field names the HTTP layer
    reads (host/port/read_timeout/max_body_bytes) match ServeConfig."""

    host: str = "127.0.0.1"
    port: int = 8650
    name: str = "router"
    # Registry.
    failure_threshold: int = 3
    readmit_seconds: float = 5.0
    probe_interval: float = 1.0
    probe_timeout: float = 2.0
    # Forwarding.
    forward_timeout: float = 60.0
    route_deadline: float = 90.0   # total wall budget across failovers
    # Hedging is off by default: a hedged solve *may* run twice on two
    # replicas (first answer wins); both journal under the same
    # idempotency key so the verdict is single, but the duplicate work
    # is a real cost — opt in for latency-critical deployments.
    hedge_seconds: Optional[float] = None
    # Journal handoff.
    handoff: bool = True
    lease_ttl: float = 10.0
    workers: int = 4
    # HTTP hygiene (read by ReproServer).
    read_timeout: float = 5.0
    max_body_bytes: int = 1 << 20


class ClusterService:
    """The shard router: duck-types :class:`AnalysisService` for the
    HTTP layer, answers by forwarding along the consistent-hash ring.

    Read-path methods (``job_status`` …) are async and proxy to the
    replicas in ring-preference order off the event loop; the write
    path (``analyze``) walks the ring with failover under one total
    ``route_deadline``.  Every hop reuses the caller's traceparent, so
    the route → replica → solve spans stitch into one trace.
    """

    #: Chaos-injection slot (see repro.runtime.chaos.inject_faults).
    _chaos = None

    #: The single-flight handoff claim: at most one takeover per spool,
    #: ever, even across racing eject cycles.  Exists as a knob ONLY so
    #: the chaos regression test can disable it and demonstrate the
    #: duplicate-solve violation the claim prevents — never disable it
    #: in production.
    single_flight_handoff = True

    #: Read-path fallback rows kept per handed-off job.  A long-lived
    #: router sees many replica deaths; without a cap the records dict
    #: is a slow leak.  Oldest rows are evicted first — by then the
    #: restarted replica has reclaimed its spool and answers reads.
    _HANDOFF_RECORDS_MAX = 4096

    def __init__(
        self,
        config: RouterConfig,
        replicas: Sequence[Replica],
        *,
        registry: Optional[ReplicaRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.config = config
        self.name = config.name
        self._clock = clock
        self._sleep = sleep
        self.registry = registry or ReplicaRegistry(
            replicas,
            failure_threshold=config.failure_threshold,
            readmit_seconds=config.readmit_seconds,
            probe_interval=config.probe_interval,
            probe_timeout=config.probe_timeout,
            clock=clock,
        )
        self.registry.on_eject = self._on_eject
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, config.workers),
            thread_name_prefix="repro-route",
        )
        self.draining = False
        self.started_at = clock()
        self._counters_lock = threading.Lock()
        self.counters = {
            "requests": 0, "routed": 0, "failovers": 0, "hedges": 0,
            "no_replica": 0, "handoffs": 0, "handoff_jobs_adopted": 0,
            "handoff_jobs_resolved": 0, "handoff_refused": 0,
        }
        self._handoff_threads: list[threading.Thread] = []
        self._handoff_lock = threading.Lock()
        #: Spools already handed off (don't take over twice per death).
        self._handoff_done: set[str] = set()
        #: Spools with a handoff *in flight* right now.  The eject →
        #: readmit → failed-probe cycle re-fires on_eject while a slow
        #: handoff (peer waits + local solves) is still running; without
        #: this guard a second takeover of the same spool would succeed
        #: (the lease owner is already us) and two BatchRunners would
        #: solve the same journal concurrently.
        self._handoff_active: set[str] = set()
        #: job_id → final row for jobs we finished during handoff: the
        #: dead replica can no longer answer /v1/jobs/<id> for them, so
        #: the router serves these as a read-path fallback.  Bounded by
        #: ``_HANDOFF_RECORDS_MAX`` (oldest rows evicted first).
        self._handoff_records: dict[str, dict] = {}
        obs.enable()
        TRACER.max_records = 20_000

    def _count(self, key: str, n: int = 1) -> None:
        with self._counters_lock:
            self.counters[key] += n

    def _remember_handoff_rows(self, rows: Sequence[dict]) -> None:
        """Retain final rows for the read path, LRU-capped.  Caller
        holds ``_handoff_lock``."""
        for row in rows:
            # Re-insert so refreshed rows move to the young end.
            self._handoff_records.pop(row["job_id"], None)
            self._handoff_records[row["job_id"]] = dict(row)
        while len(self._handoff_records) > self._HANDOFF_RECORDS_MAX:
            self._handoff_records.pop(
                next(iter(self._handoff_records)))

    # ----- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self.registry.start()

    def drain(self) -> dict:
        self.draining = True
        self.registry.stop()
        for thread in list(self._handoff_threads):
            thread.join(timeout=30.0)
        self._pool.shutdown(wait=True)
        with self._counters_lock:
            counters = dict(self.counters)
        return {
            "drained": True,
            "router": self.name,
            "replicas": self.registry.describe(),
            "counters": counters,
        }

    def close(self) -> None:
        if not self.draining:
            self.drain()

    # ----- the write path ---------------------------------------------------

    async def analyze(self, payload: Any, tenant: str = "default",
                      traceparent: Optional[str] = None) -> tuple[int, dict]:
        """Route one analysis request; returns ``(status, body)``.

        The contract matches the replica's: every path out is terminal
        (a verdict, a reject with ``retry_after``, or a 400).  The
        routed request keeps the caller's traceparent, so the replica's
        ``serve-request`` span parents under our ``route-request``.
        """
        with TRACER.activate(traceparent), \
                TRACER.span("route-request", tenant=tenant) as span:
            ctx = contextvars.copy_context()
            loop = asyncio.get_running_loop()
            try:
                status, body = await loop.run_in_executor(
                    self._pool, ctx.run, self._forward, payload, tenant)
            except RuntimeError as exc:
                # Only the pool's shutdown refusal means "draining"; any
                # other RuntimeError is a bug and must surface as one.
                if not (self.draining
                        or "after shutdown" in str(exc)):
                    raise
                status, body = 503, {
                    "error": "draining", "retry_after": 5.0}
            if isinstance(body, dict):
                trace_id = TRACER.current_trace_id()
                if trace_id:
                    body.setdefault("trace_id", trace_id)
            span.set("status", status)
            return status, body

    def _forward(self, payload: Any, tenant: str) -> tuple[int, dict]:
        self._count("requests")
        if METRICS.enabled:
            METRICS.counter_inc("repro_cluster_requests_total")
        try:
            spec = AnalysisService._validate(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        priority = payload.get("priority") if isinstance(payload, dict) \
            else None
        job_id = job_id_for(spec)
        candidates = self.registry.candidates(job_id)
        if not candidates:
            self._count("no_replica")
            return 503, {"error": "no replicas configured",
                         "retry_after": 5.0}

        deadline = self._clock() + self.config.route_deadline
        failovers = 0
        last_doc: Optional[dict] = None
        if self.config.hedge_seconds is not None and len(candidates) > 1:
            result = self._forward_hedged(
                candidates[0], candidates[1], spec, tenant, priority,
                deadline)
            if result is not None:
                replica, status, doc, hedged = result
                if status is not None and status not in FAILOVER_STATUSES:
                    self._count("routed")
                    doc["replica"] = replica.name
                    if hedged:
                        doc["hedged"] = True
                    return status, doc
                last_doc = doc
            # Both raced replicas failed: continue the plain walk over
            # the rest of the ring.
            candidates = candidates[2:]
            failovers += 2
            self._count("failovers", 2)
        for replica in candidates:
            if self._clock() >= deadline:
                break
            status, doc = self._forward_once(
                replica, spec, tenant, priority, deadline)
            if status is None:
                failovers += 1
                self._count("failovers")
                if METRICS.enabled:
                    METRICS.counter_inc("repro_cluster_failovers_total",
                                        replica=replica.name)
                last_doc = doc
                continue
            if status in FAILOVER_STATUSES:
                # The replica is up but cannot take the job (draining,
                # not ready): same failover walk, but the probe loop —
                # not us — decides its health.
                failovers += 1
                self._count("failovers")
                last_doc = doc
                continue
            self._count("routed")
            doc["replica"] = replica.name
            if failovers:
                doc["failovers"] = failovers
            return status, doc
        self._count("no_replica")
        body = {
            "error": "no replica could take the job",
            "job_id": job_id,
            "failovers": failovers,
            "retry_after": max(1.0, self.config.readmit_seconds),
        }
        if last_doc is not None and "reason" in last_doc:
            body["reason"] = last_doc["reason"]
        return 503, body

    def _forward_hedged(
        self, primary: Replica, secondary: Replica, spec: dict,
        tenant: str, priority: Optional[int], deadline: float,
    ) -> Optional[tuple[Replica, Optional[int], dict, bool]]:
        """Race a second replica after ``hedge_seconds`` of silence
        from the first; the first definitive answer wins.

        Both submits carry the same content-addressed idempotency key,
        so even if both replicas solve, each journals one verdict for
        one job — the *response* is single either way.  The duplicate
        solve is the documented cost of hedging (off by default).
        """
        answers: "queue.Queue" = queue.Queue()

        def attempt(replica: Replica) -> None:
            status, doc = self._forward_once(
                replica, spec, tenant, priority, deadline)
            answers.put((replica, status, doc))

        threading.Thread(target=attempt, args=(primary,), daemon=True,
                         name="repro-hedge-0").start()
        collected = 0
        last: Optional[tuple[Replica, Optional[int], dict]] = None
        try:
            item = answers.get(timeout=self.config.hedge_seconds)
            collected += 1
            if item[1] is not None and item[1] not in FAILOVER_STATUSES:
                return item[0], item[1], item[2], False
            last = item
        except queue.Empty:
            pass
        self._count("hedges")
        if METRICS.enabled:
            METRICS.counter_inc("repro_cluster_hedges_total")
        threading.Thread(target=attempt, args=(secondary,), daemon=True,
                         name="repro-hedge-1").start()
        while collected < 2:
            try:
                item = answers.get(
                    timeout=max(0.1, deadline - self._clock()))
            except queue.Empty:
                break
            collected += 1
            if item[1] is not None and item[1] not in FAILOVER_STATUSES:
                return item[0], item[1], item[2], True
            last = item
        if last is None:
            return None
        return last[0], last[1], last[2], True

    def _forward_once(
        self, replica: Replica, spec: dict, tenant: str,
        priority: Optional[int], deadline: float,
    ) -> tuple[Optional[int], dict]:
        """One forward attempt.  ``(None, doc)`` means transport-level
        failure (dead replica): the caller fails over."""
        chaos = self._chaos
        if chaos is not None and chaos.should_kill_replica():
            self.registry.note_failure(replica)
            return None, {"error": f"injected replica kill {replica.name}"}
        if chaos is not None and chaos.is_partitioned(
                f"router->{replica.name}"):
            # A partitioned link looks exactly like a dead replica to
            # the router: the connection attempt never completes.
            self.registry.note_failure(replica)
            return None, {"error": f"injected partition"
                                   f" router->{replica.name}"}
        timeout = min(self.config.forward_timeout,
                      max(0.1, deadline - self._clock()))
        client = ServiceClient(
            replica.host, replica.port, tenant=tenant, timeout=timeout)
        started = self._clock()
        try:
            doc = client.analyze(
                spec["source"], backend=spec["backend"],
                steps=spec["steps"], consts=spec["consts"] or None,
                prove=spec["prove"], options=spec["options"] or None,
                label=spec["label"], priority=priority, retry=False,
            )
        except ServiceUnavailable as exc:
            self.registry.note_failure(replica)
            return None, {"error": str(exc)}
        status = doc.pop("status", 200)
        if status in FAILOVER_STATUSES:
            # Up, but not taking work — not a liveness failure.
            return status, doc
        self.registry.note_success(replica, self._clock() - started)
        return status, doc

    # ----- journal handoff --------------------------------------------------

    def _on_eject(self, replica: Replica) -> None:
        """Registry callback: a replica was declared dead.  Handoff runs
        on its own thread — ejection happens on probe/forward paths that
        must not block on a batch resume."""
        if not self.config.handoff or replica.spool is None:
            return
        if self.draining:
            return
        with self._handoff_lock:
            # Cheap pre-check so repeated eject cycles don't pile up
            # no-op threads; handoff() re-checks atomically.
            if (replica.name in self._handoff_done
                    or replica.name in self._handoff_active):
                return
        thread = threading.Thread(
            target=self._handoff_guarded, args=(replica,),
            name=f"repro-handoff-{replica.name}", daemon=True)
        with self._handoff_lock:
            self._handoff_threads.append(thread)
        thread.start()

    def _handoff_guarded(self, replica: Replica) -> None:
        try:
            self.handoff(replica)
        except Exception:
            # A failed handoff must never take the router down; the
            # spool is still on disk for a manual `repro batch resume`.
            if METRICS.enabled:
                METRICS.counter_inc("repro_cluster_handoff_errors_total")
        finally:
            with self._handoff_lock:
                try:
                    self._handoff_threads.remove(threading.current_thread())
                except ValueError:
                    pass

    def handoff(self, replica: Replica) -> Optional[dict]:
        """Finish a dead replica's backlog from its journal.

        1. Take the spool lease — :class:`LeaseHeld` (fresh heartbeat)
           aborts: the replica is slow, not dead, and must keep sole
           ownership of its journal.
        2. For every non-terminal job, ask the surviving replicas for a
           journaled verdict first (the job may have failed over and
           been solved there already) and **adopt** it — at-least-once
           execution, at-most-once *solving* per idempotency key.
        3. ``run(resume=True)`` the remainder here; each job re-adopts
           the traceparent journaled at submission, so the recovery
           spans join the original request's trace.
        """
        spool = replica.spool
        if spool is None:
            return None
        with self._handoff_lock:
            # Atomic claim: one handoff per spool, ever.  A concurrent
            # eject cycle must not start a second takeover while this
            # one is mid-flight (see _handoff_active above); a finished
            # one must not repeat (_handoff_done).  The claim is
            # released in the finally so a *refused or failed* handoff
            # can retry on the next eject cycle.
            if self.single_flight_handoff and (
                    replica.name in self._handoff_done
                    or replica.name in self._handoff_active):
                return None
            self._handoff_active.add(replica.name)
        try:
            return self._handoff_claimed(replica, spool)
        finally:
            with self._handoff_lock:
                self._handoff_active.discard(replica.name)

    def _handoff_claimed(self, replica: Replica,
                         spool: Path) -> Optional[dict]:
        with TRACER.span("cluster-handoff", replica=replica.name) as span:
            runner = BatchRunner(
                spool, owner=self.name, lease_ttl=self.config.lease_ttl)
            try:
                runner.lease.takeover(self.name)
            except LeaseHeld:
                self._count("handoff_refused")
                if METRICS.enabled:
                    METRICS.counter_inc(
                        "repro_cluster_handoff_refused_total",
                        replica=replica.name)
                span.set("refused", True)
                runner.close()
                return None
            self._count("handoffs")
            if METRICS.enabled:
                METRICS.counter_inc("repro_cluster_handoffs_total",
                                    replica=replica.name)
            adopted = self._adopt_from_peers(runner, replica)
            has_journal = ((spool / BatchRunner.JOURNAL).exists()
                           or (spool / BatchRunner.SNAPSHOT).exists())
            report = runner.run(resume=has_journal)
            rows = runner.status().to_json().get("jobs", ())
            runner.close()
            # Hand the spool back: releasing the takeover lease lets a
            # restarted (or fenced-but-alive) replica reacquire its own
            # spool with a plain acquire instead of staying locked out
            # until the router's lease goes stale.
            runner.lease.release()
            with self._handoff_lock:
                self._handoff_done.add(replica.name)
                # The dead replica can no longer answer reads for these
                # jobs; keep the final rows so /v1/jobs stays truthful.
                self._remember_handoff_rows(rows)
            resolved = report.executed
            self._count("handoff_jobs_adopted", adopted)
            self._count("handoff_jobs_resolved", resolved)
            if METRICS.enabled:
                METRICS.counter_inc("repro_cluster_handoff_jobs_total",
                                    mode="adopted", n=adopted)
                METRICS.counter_inc("repro_cluster_handoff_jobs_total",
                                    mode="resolved", n=resolved)
            span.set("adopted", adopted)
            span.set("resolved", resolved)
            return {"replica": replica.name, "adopted": adopted,
                    "resolved": resolved,
                    "counts": report.by_state()}

    def _adopt_from_peers(self, runner: BatchRunner,
                          dead: Replica) -> int:
        """Copy verdicts that already exist on surviving replicas into
        the dead spool's journal (the no-duplicate-solve half).

        A job a survivor merely *knows* (failed over mid-burst, still
        pending or running there) is in flight elsewhere: solving it
        here too would duplicate the solve, so the handoff waits for
        the peer's verdict — bounded by ``forward_timeout``, after
        which the job falls back to local resolution (at-least-once
        beats never)."""
        jobs, order = runner.load()
        pending = [jobs[j] for j in order
                   if jobs[j].state not in ("done", "deadletter")]
        if not pending:
            return 0
        survivors = [r for r in self.registry.healthy()
                     if r.name != dead.name]
        adopted = 0
        #: job_id -> (rec, peer): in flight on a survivor, await it.
        waiting: dict[str, tuple] = {}
        for rec in pending:
            # Scan every survivor: a 'done' verdict anywhere wins over a
            # merely-pending copy on an earlier peer (a job can be
            # journaled on several replicas after failover, and only
            # one of them has finished it).
            in_flight = None
            done_doc = None
            for peer in survivors:
                doc = self._peer_job(peer, rec.job_id)
                if doc is None or doc.get("status") != 200:
                    continue
                if doc.get("state") == "done" and doc.get("verdict"):
                    done_doc = (peer, doc)
                    break
                if in_flight is None:
                    in_flight = peer
            if done_doc is not None:
                peer, doc = done_doc
                runner.adopt_verdict(
                    rec, doc["verdict"], doc.get("exit_code"),
                    source=peer.name)
                adopted += 1
            elif in_flight is not None:
                waiting[rec.job_id] = (rec, in_flight)
        deadline = self._clock() + self.config.forward_timeout
        while waiting and self._clock() < deadline and not self.draining:
            self._sleep(0.2)
            for job_id, (rec, peer) in list(waiting.items()):
                doc = self._peer_job(peer, job_id)
                if doc is None or doc.get("status") == 404:
                    # The peer lost it after all: resolve locally.
                    del waiting[job_id]
                elif doc.get("state") == "done" and doc.get("verdict"):
                    runner.adopt_verdict(
                        rec, doc["verdict"], doc.get("exit_code"),
                        source=peer.name)
                    adopted += 1
                    del waiting[job_id]
        return adopted

    def _peer_job(self, peer: Replica, job_id: str) -> Optional[dict]:
        chaos = self._chaos
        if chaos is not None and chaos.is_partitioned(
                f"router->{peer.name}"):
            return None
        client = ServiceClient(
            peer.host, peer.port, timeout=self.config.probe_timeout)
        try:
            return client.job(job_id)
        except ServiceUnavailable:
            return None

    # ----- the read path (proxied) ------------------------------------------

    async def job_status(self, job_id: str) -> tuple[int, dict]:
        status, doc = await self._proxy_get(job_id, f"/v1/jobs/{job_id}")
        if status != 200:
            with self._handoff_lock:
                row = self._handoff_records.get(job_id)
            if row is not None:
                return 200, dict(row, replica=self.name, handoff=True)
        return status, doc

    async def job_trace(self, job_id: str) -> tuple[int, dict]:
        return await self._proxy_get(job_id, f"/v1/jobs/{job_id}/trace")

    async def job_progress(self, job_id: str) -> tuple[int, dict]:
        return await self._proxy_get(job_id, f"/v1/jobs/{job_id}/progress")

    async def _proxy_get(self, key: str, path: str) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, self._proxy_get_sync, key, path)

    def _proxy_get_sync(self, key: str, path: str) -> tuple[int, dict]:
        """Try replicas in ring-preference order; first non-404 wins —
        after a handoff the answer may live on a different replica than
        the ring says, so 404s keep walking."""
        last: Optional[dict] = None
        for replica in self.registry.candidates(key):
            client = ServiceClient(
                replica.host, replica.port,
                timeout=self.config.probe_timeout)
            try:
                doc = client.request("GET", path, retry=False)
            except ServiceUnavailable:
                continue
            status = doc.pop("status", 200)
            if status == 404:
                last = doc
                continue
            doc["replica"] = replica.name
            return status, doc
        if last is not None:
            return 404, last
        return 503, {"error": "no replica reachable", "retry_after": 5.0}

    async def jobs_index(self) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self._jobs_index_sync)

    def _jobs_index_sync(self) -> tuple[int, dict]:
        """Merged job table across every reachable replica."""
        rows: dict[str, dict] = {}
        reached = 0
        for replica in self.registry.healthy():
            client = ServiceClient(
                replica.host, replica.port,
                timeout=self.config.probe_timeout)
            try:
                doc = client.jobs()
            except ServiceUnavailable:
                continue
            if doc.get("status") != 200:
                continue
            reached += 1
            for row in doc.get("jobs", ()):
                row = dict(row)
                row["replica"] = replica.name
                # A done row wins over any other replica's view of the
                # same job (failover can journal one job twice).
                prev = rows.get(row["job_id"])
                if prev is None or (row.get("state") == "done"
                                    and prev.get("state") != "done"):
                    rows[row["job_id"]] = row
        with self._handoff_lock:
            handed = [dict(r) for r in self._handoff_records.values()]
        for row in handed:
            row["replica"] = self.name
            row["handoff"] = True
            prev = rows.get(row["job_id"])
            if prev is None or (row.get("state") == "done"
                                and prev.get("state") != "done"):
                rows[row["job_id"]] = row
        counts: dict[str, int] = {}
        for row in rows.values():
            counts[row.get("state", "?")] = \
                counts.get(row.get("state", "?"), 0) + 1
        return 200, {
            "router": self.name,
            "replicas_reachable": reached,
            "counts": counts,
            "jobs": sorted(rows.values(), key=lambda r: r["job_id"]),
        }

    # ----- control plane ----------------------------------------------------

    def cluster_info(self) -> tuple[int, dict]:
        """`GET /v1/cluster`: topology, health, and handoff counters."""
        with self._counters_lock:
            counters = dict(self.counters)
        return 200, {
            "router": self.name,
            "ring": {
                "nodes": self.registry.ring.nodes(),
                "vnodes": self.registry.ring.vnodes,
            },
            "replicas": self.registry.describe(),
            "counters": counters,
        }

    def health(self) -> tuple[int, dict]:
        with self._counters_lock:
            counters = dict(self.counters)
        healthy = len(self.registry.healthy())
        return 200, {
            "state": "draining" if self.draining else "ok",
            "router": self.name,
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "replicas": len(self.registry.replicas),
            "replicas_healthy": healthy,
            "counters": counters,
        }

    def ready(self) -> tuple[int, dict]:
        """Ready iff at least one replica is routable."""
        healthy = len(self.registry.healthy())
        ok = healthy > 0 and not self.draining
        body = {
            "ready": ok,
            "router": self.name,
            "replicas_healthy": healthy,
            "draining": self.draining,
        }
        if not ok:
            body["retry_after"] = max(1.0, self.config.readmit_seconds)
        return (200 if ok else 503), body

    def metrics_text(self) -> str:
        return obs.capture().to_prometheus()
