"""Static types for the Buffy language.

§7 of the paper: "Buffy only supports integers, boolean, and buffers,
and array and list data structures."  All aggregate types carry static
size bounds so every program can be finitized (unrolled / flattened)
for the back-end solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Type:
    """Base class for Buffy types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class BufferType(Type):
    """A packet buffer.

    ``fields`` are the packet fields filters may reference; every
    packet implicitly carries ``flow`` (its traffic class / input index)
    and ``size`` (bytes).  ``capacity`` bounds the number of packets the
    symbolic list model tracks.
    """

    fields: Tuple[str, ...] = ("flow", "size")
    capacity: Optional[int] = None

    def __str__(self) -> str:
        return "buffer"


@dataclass(frozen=True)
class ListType(Type):
    """A bounded FIFO list of integers (queue-pointer lists in FQ)."""

    capacity: Optional[int] = None

    def __str__(self) -> str:
        return "list"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-size array (``buffer[N]``, ``int[N]``)."""

    elem: Type
    size: int

    def __str__(self) -> str:
        return f"{self.elem}[{self.size}]"


INT_T = IntType()
BOOL_T = BoolType()
BUFFER_T = BufferType()
LIST_T = ListType()


def is_numeric(t: Type) -> bool:
    return isinstance(t, IntType)


def element_type(t: Type) -> Type:
    if isinstance(t, ArrayType):
        return t.elem
    raise TypeError(f"{t} is not indexable")
