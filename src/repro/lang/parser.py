"""Recursive-descent parser for the Buffy concrete syntax.

The grammar follows Figure 3 of the paper with the usual C-like
precedence, except that (as in Figure 4) comparisons bind *tighter*
than ``&`` / ``|``, so ``backlog-p(b) > 0 & !nq.has(i)`` parses as
``(backlog-p(b) > 0) & (!nq.has(i))``.

Array sizes in types may reference named constants (``buffer[N] ibs``);
they are resolved against ``const`` declarations in the program plus
any constants supplied to :func:`parse_program`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from .ast import (
    Assert,
    Assign,
    Assume,
    Backlog,
    BinOp,
    BinOpKind,
    BoolLit,
    BuffyError,
    Call,
    Cmd,
    Decl,
    Expr,
    FilterExpr,
    For,
    Havoc,
    If,
    Index,
    IntLit,
    ListEmpty,
    ListHas,
    ListLen,
    Move,
    Param,
    PopFront,
    Procedure,
    Program,
    PushBack,
    Seq,
    Skip,
    UnOp,
    UnOpKind,
    Var,
    VarKind,
)
from ..obs import TRACER
from .lexer import EOF, Token, tokenize
from .types import (
    BOOL_T,
    BUFFER_T,
    INT_T,
    LIST_T,
    ArrayType,
    BufferType,
    ListType,
    Type,
)


class ParseError(BuffyError):
    pass


RawSize = Union[int, str]


@dataclass(frozen=True)
class _RawArray(Type):
    """Array type with a possibly-symbolic size, resolved after parsing."""

    elem: Type
    size: RawSize

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.elem}[{self.size}]"


@dataclass(frozen=True)
class _RawList(Type):
    size: Optional[RawSize]

    def __str__(self) -> str:  # pragma: no cover
        return f"list[{self.size}]"


@dataclass(frozen=True)
class _PopFrontMarker(Expr):
    target: Expr


@dataclass(frozen=True)
class _PushBackMarker(Expr):
    target: Expr
    value: Expr


@dataclass(frozen=True)
class _CallMarker(Expr):
    name: str
    args: tuple


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._i = 0

    # ----- token plumbing ---------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._i]

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._i + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not EOF:
            self._i += 1
        return tok

    def _check(self, kind: str) -> bool:
        return self._cur.kind == kind

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str, what: str = "") -> Token:
        if not self._check(kind):
            want = what or kind
            raise ParseError(
                f"expected {want}, found {self._cur.text or self._cur.kind!r}",
                self._cur.pos,
            )
        return self._advance()

    # ----- program ------------------------------------------------------------

    def parse_program(self) -> tuple[Program, dict[str, RawSize]]:
        name = self._expect("IDENT", "program name").text
        self._expect("LPAREN")
        params: list[tuple[str, Type, Optional[VarKind]]] = []
        if not self._check("RPAREN"):
            params.append(self._param())
            while self._accept("COMMA"):
                params.append(self._param())
        self._expect("RPAREN")
        self._expect("LBRACE")
        decls: list[Decl] = []
        procedures: list[Procedure] = []
        body: list[Cmd] = []
        while not self._check("RBRACE"):
            if self._check("DEF"):
                procedures.append(self._procedure())
                continue
            stmt = self._statement()
            if isinstance(stmt, Decl) and stmt.kind in (
                VarKind.GLOBAL,
                VarKind.MONITOR,
                VarKind.CONST,
            ):
                decls.append(stmt)
            else:
                body.append(stmt)
        self._expect("RBRACE")
        raw_params = tuple(
            Param(n, t, k if k is not None else VarKind.PARAM_IN)
            for (n, t, k) in params
        )
        # Remember which params had no explicit direction for inference.
        unannotated = {n for (n, _, k) in params if k is None}
        program = Program(
            name=name,
            params=raw_params,
            decls=tuple(decls),
            body=Seq(tuple(body)),
            procedures=tuple(procedures),
        )
        return program, {"__unannotated__": unannotated}  # type: ignore[dict-item]

    def _param(self) -> tuple[str, Type, Optional[VarKind]]:
        kind: Optional[VarKind] = None
        if self._accept("IN"):
            kind = VarKind.PARAM_IN
        elif self._accept("OUT"):
            kind = VarKind.PARAM_OUT
        self._expect("BUFFER", "'buffer'")
        typ: Type = BUFFER_T
        if self._accept("LBRACK"):
            size = self._raw_size()
            self._expect("RBRACK")
            typ = _RawArray(BUFFER_T, size)
        name = self._expect("IDENT", "parameter name").text
        return name, typ, kind

    def _raw_size(self) -> RawSize:
        if self._check("NUMBER"):
            return int(self._advance().text)
        return self._expect("IDENT", "array size").text

    def _procedure(self) -> Procedure:
        self._expect("DEF")
        name = self._expect("IDENT", "procedure name").text
        self._expect("LPAREN")
        params: list[Decl] = []
        if not self._check("RPAREN"):
            params.append(self._proc_param())
            while self._accept("COMMA"):
                params.append(self._proc_param())
        self._expect("RPAREN")
        requires: list[Expr] = []
        ensures: list[Expr] = []
        while True:
            if self._accept("REQUIRES"):
                requires.append(self._expr())
                self._accept("SEMI")
            elif self._accept("ENSURES"):
                ensures.append(self._expr())
                self._accept("SEMI")
            else:
                break
        body = self._block()
        return Procedure(
            name=name,
            params=tuple(params),
            body=body,
            requires=tuple(requires),
            ensures=tuple(ensures),
        )

    def _proc_param(self) -> Decl:
        typ = self._type()
        name = self._expect("IDENT", "parameter name").text
        return Decl(name=name, type=typ, kind=VarKind.LOCAL)

    def _type(self) -> Type:
        if self._accept("INT"):
            base: Type = INT_T
        elif self._accept("BOOL"):
            base = BOOL_T
        elif self._accept("BUFFER"):
            base = BUFFER_T
        elif self._accept("LIST"):
            if self._accept("LBRACK"):
                size = self._raw_size()
                self._expect("RBRACK")
                return _RawList(size)
            return LIST_T
        else:
            raise ParseError(
                f"expected a type, found {self._cur.text!r}", self._cur.pos
            )
        while self._accept("LBRACK"):
            size = self._raw_size()
            self._expect("RBRACK")
            base = _RawArray(base, size)
        return base

    # ----- statements --------------------------------------------------------------

    def _block(self) -> Cmd:
        if self._accept("LBRACE"):
            commands: list[Cmd] = []
            while not self._check("RBRACE"):
                commands.append(self._statement())
            self._expect("RBRACE")
            if len(commands) == 1:
                return commands[0]
            return Seq(tuple(commands))
        return self._statement()

    def _statement(self) -> Cmd:
        tok = self._cur
        if tok.kind in ("GLOBAL", "LOCAL", "MONITOR", "CONST"):
            return self._decl()
        if tok.kind == "IF":
            return self._if()
        if tok.kind == "FOR":
            return self._for()
        if tok.kind == "BUILTIN":
            return self._move()
        if tok.kind == "ASSERT":
            self._advance()
            self._expect("LPAREN")
            cond = self._expr()
            self._expect("RPAREN")
            self._expect("SEMI")
            return Assert(cond, pos=tok.pos)
        if tok.kind == "ASSUME":
            self._advance()
            self._expect("LPAREN")
            cond = self._expr()
            self._expect("RPAREN")
            self._expect("SEMI")
            return Assume(cond, pos=tok.pos)
        if tok.kind == "HAVOC":
            self._advance()
            target = self._postfix()
            lo = hi = None
            if self._accept("IN"):
                lo = self._expr_nocmp()
                self._expect("DOTDOT")
                hi = self._expr_nocmp()
            self._expect("SEMI")
            return Havoc(target, lo, hi, pos=tok.pos)
        if tok.kind == "SEMI":
            self._advance()
            return Skip(pos=tok.pos)
        if tok.kind == "LBRACE":
            return self._block()
        # Expression-led statements: assignment / push_back / pop_front / call.
        return self._expr_statement()

    def _decl(self) -> Cmd:
        kind_tok = self._advance()
        kind = VarKind(kind_tok.text)
        # "global list nq;" — type follows the kind keyword.
        typ = self._type()
        name = self._expect("IDENT", "variable name").text
        init = None
        if self._accept("ASSIGN"):
            init = self._expr()
        self._expect("SEMI")
        return Decl(name=name, type=typ, kind=kind, init=init, pos=kind_tok.pos)

    def _if(self) -> Cmd:
        tok = self._expect("IF")
        self._expect("LPAREN")
        cond = self._expr()
        self._expect("RPAREN")
        then = self._block()
        els: Cmd = Skip()
        if self._accept("ELSE"):
            els = self._block()
        return If(cond, then, els, pos=tok.pos)

    def _for(self) -> Cmd:
        tok = self._expect("FOR")
        self._expect("LPAREN")
        var = self._expect("IDENT", "loop variable").text
        self._expect("IN")
        lo = self._expr()
        self._expect("DOTDOT")
        hi = self._expr()
        self._expect("RPAREN")
        invariants: list[Expr] = []
        while self._accept("INVARIANT"):
            invariants.append(self._expr())
            self._accept("SEMI")
        self._accept("DO")
        body = self._block()
        return For(var, lo, hi, body, tuple(invariants), pos=tok.pos)

    def _move(self) -> Cmd:
        tok = self._advance()  # BUILTIN
        if not tok.text.startswith("move"):
            raise ParseError(f"{tok.text} is an expression, not a statement", tok.pos)
        in_bytes = tok.text.endswith("b")
        self._expect("LPAREN")
        src = self._expr()
        self._expect("COMMA")
        dst = self._expr()
        self._expect("COMMA")
        amount = self._expr()
        self._expect("RPAREN")
        self._expect("SEMI")
        return Move(src, dst, amount, in_bytes=in_bytes, pos=tok.pos)

    def _expr_statement(self) -> Cmd:
        pos = self._cur.pos
        lhs = self._postfix()
        if isinstance(lhs, _PushBackMarker):
            self._expect("SEMI")
            return PushBack(lhs.target, lhs.value, pos=pos)
        if isinstance(lhs, _CallMarker):
            self._expect("SEMI")
            return Call(lhs.name, lhs.args, pos=pos)
        if self._accept("ASSIGN"):
            rhs = self._expr_or_pop()
            self._expect("SEMI")
            if isinstance(rhs, _PopFrontMarker):
                return PopFront(lhs, rhs.target, pos=pos)
            return Assign(lhs, rhs, pos=pos)
        raise ParseError(
            f"expected a statement, found {self._cur.text!r}", self._cur.pos
        )

    def _expr_or_pop(self) -> Expr:
        expr = self._expr()
        return expr

    # ----- expressions ----------------------------------------------------------------

    def _expr(self) -> Expr:
        return self._implies()

    def _expr_nocmp(self) -> Expr:
        """Expression without comparison (for havoc ranges: lo..hi)."""
        return self._addsub()

    def _implies(self) -> Expr:
        left = self._or()
        if self._accept("IMPLIES"):
            right = self._implies()  # right-associative
            return BinOp(BinOpKind.IMPLIES, left, right)
        return left

    def _or(self) -> Expr:
        left = self._and()
        while True:
            tok = self._cur
            if tok.kind in ("PIPE", "OROR"):
                self._advance()
                left = BinOp(BinOpKind.OR, left, self._and(), pos=tok.pos)
            else:
                return left

    def _and(self) -> Expr:
        left = self._cmp()
        while True:
            tok = self._cur
            if tok.kind in ("AMP", "ANDAND"):
                self._advance()
                left = BinOp(BinOpKind.AND, left, self._cmp(), pos=tok.pos)
            else:
                return left

    _CMP = {
        "LT": BinOpKind.LT,
        "LE": BinOpKind.LE,
        "GT": BinOpKind.GT,
        "GE": BinOpKind.GE,
        "EQ": BinOpKind.EQ,
        "NE": BinOpKind.NE,
    }

    def _cmp(self) -> Expr:
        left = self._addsub()
        tok = self._cur
        kind = self._CMP.get(tok.kind)
        if kind is not None:
            self._advance()
            return BinOp(kind, left, self._addsub(), pos=tok.pos)
        return left

    def _addsub(self) -> Expr:
        left = self._mul()
        while True:
            tok = self._cur
            if tok.kind == "PLUS":
                self._advance()
                left = BinOp(BinOpKind.ADD, left, self._mul(), pos=tok.pos)
            elif tok.kind == "MINUS":
                self._advance()
                left = BinOp(BinOpKind.SUB, left, self._mul(), pos=tok.pos)
            else:
                return left

    def _mul(self) -> Expr:
        left = self._unary()
        while self._check("STAR"):
            tok = self._advance()
            left = BinOp(BinOpKind.MUL, left, self._unary(), pos=tok.pos)
        return left

    def _unary(self) -> Expr:
        tok = self._cur
        if tok.kind == "BANG":
            self._advance()
            return UnOp(UnOpKind.NOT, self._unary(), pos=tok.pos)
        if tok.kind == "MINUS":
            self._advance()
            return UnOp(UnOpKind.NEG, self._unary(), pos=tok.pos)
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            tok = self._cur
            if tok.kind == "LBRACK":
                self._advance()
                index = self._expr()
                self._expect("RBRACK")
                expr = Index(expr, index, pos=tok.pos)
            elif tok.kind == "DOT":
                self._advance()
                expr = self._method(expr)
            elif tok.kind == "PIPEGT":
                self._advance()
                fieldname = self._expect("IDENT", "packet field name").text
                self._expect("EQ", "'=='")
                value = self._unary()
                expr = FilterExpr(expr, fieldname, value, pos=tok.pos)
            else:
                return expr

    def _method(self, target: Expr) -> Expr:
        name_tok = self._expect("IDENT", "method name")
        name = name_tok.text
        self._expect("LPAREN")
        args: list[Expr] = []
        if not self._check("RPAREN"):
            args.append(self._expr())
            while self._accept("COMMA"):
                args.append(self._expr())
        self._expect("RPAREN")
        pos = name_tok.pos

        def arity(n: int) -> None:
            if len(args) != n:
                raise ParseError(f".{name}() takes {n} argument(s)", pos)

        if name == "has":
            arity(1)
            return ListHas(target, args[0], pos=pos)
        if name == "empty":
            arity(0)
            return ListEmpty(target, pos=pos)
        if name == "len":
            arity(0)
            return ListLen(target, pos=pos)
        if name in ("push_back", "enq"):
            arity(1)
            return _PushBackMarker(target, args[0], pos=pos)
        if name == "pop_front":
            arity(0)
            return _PopFrontMarker(target, pos=pos)
        raise ParseError(f"unknown method .{name}()", pos)

    def _primary(self) -> Expr:
        tok = self._cur
        if tok.kind == "NUMBER":
            self._advance()
            return IntLit(int(tok.text), pos=tok.pos)
        if tok.kind == "TRUE":
            self._advance()
            return BoolLit(True, pos=tok.pos)
        if tok.kind == "FALSE":
            self._advance()
            return BoolLit(False, pos=tok.pos)
        if tok.kind == "BUILTIN":
            self._advance()
            if not tok.text.startswith("backlog"):
                raise ParseError(f"{tok.text} is a statement, not an expression", tok.pos)
            self._expect("LPAREN")
            buf = self._expr()
            self._expect("RPAREN")
            return Backlog(buf, in_bytes=tok.text.endswith("b"), pos=tok.pos)
        if tok.kind == "IDENT":
            self._advance()
            if self._check("LPAREN"):
                self._advance()
                args: list[Expr] = []
                if not self._check("RPAREN"):
                    args.append(self._expr())
                    while self._accept("COMMA"):
                        args.append(self._expr())
                self._expect("RPAREN")
                return _CallMarker(tok.text, tuple(args), pos=tok.pos)
            return Var(tok.text, pos=tok.pos)
        if tok.kind == "LPAREN":
            self._advance()
            expr = self._expr()
            self._expect("RPAREN")
            return expr
        raise ParseError(f"expected an expression, found {tok.text!r}", tok.pos)


# =============================================================================
# Size resolution and public API
# =============================================================================


def _resolve_type(typ: Type, consts: dict[str, int]) -> Type:
    if isinstance(typ, _RawArray):
        elem = _resolve_type(typ.elem, consts)
        return ArrayType(elem, _resolve_size(typ.size, consts))
    if isinstance(typ, _RawList):
        size = None if typ.size is None else _resolve_size(typ.size, consts)
        return ListType(capacity=size)
    return typ


def _resolve_size(size: RawSize, consts: dict[str, int]) -> int:
    if isinstance(size, int):
        return size
    if size not in consts:
        raise ParseError(f"unknown constant {size!r} used as array size")
    return consts[size]


def _resolve_cmd(cmd: Cmd, consts: dict[str, int]) -> Cmd:
    if isinstance(cmd, Decl):
        return Decl(
            name=cmd.name,
            type=_resolve_type(cmd.type, consts),
            kind=cmd.kind,
            init=cmd.init,
            pos=cmd.pos,
        )
    if isinstance(cmd, Seq):
        return Seq(tuple(_resolve_cmd(c, consts) for c in cmd.commands))
    if isinstance(cmd, If):
        return If(cmd.cond, _resolve_cmd(cmd.then, consts),
                  _resolve_cmd(cmd.els, consts), pos=cmd.pos)
    if isinstance(cmd, For):
        return For(cmd.var, cmd.lo, cmd.hi, _resolve_cmd(cmd.body, consts),
                   cmd.invariants, pos=cmd.pos)
    return cmd


def parse_program(
    source: str, consts: Optional[dict[str, int]] = None
) -> Program:
    """Parse Buffy source text into a :class:`Program`.

    ``consts`` supplies values for named array sizes (e.g. ``N`` in
    ``buffer[N] ibs``) in addition to ``const`` declarations inside the
    program; supplied values take precedence.
    """
    with TRACER.span("parse", source_bytes=len(source)) as sp:
        program = _parse_program(source, consts)
        sp.set("program", program.name)
    return program


def _parse_program(
    source: str, consts: Optional[dict[str, int]]
) -> Program:
    parser = _Parser(tokenize(source))
    program, extra = parser.parse_program()
    if not parser._check(EOF):
        raise ParseError(
            f"unexpected trailing input {parser._cur.text!r}", parser._cur.pos
        )
    unannotated: set = extra.pop("__unannotated__", set())  # type: ignore[assignment]

    all_consts = dict(program.constants())
    all_consts.update(consts or {})

    params = tuple(
        Param(p.name, _resolve_type(p.type, all_consts), p.kind)
        for p in program.params
    )
    # Externally supplied constants become const declarations so that the
    # checker and interpreter resolve them exactly like in-program consts.
    declared_names = {d.name for d in program.decls}
    synthetic = tuple(
        Decl(name, INT_T, VarKind.CONST, IntLit(value))
        for name, value in (consts or {}).items()
        if name not in declared_names
    )
    decls = synthetic + tuple(
        Decl(
            d.name,
            _resolve_type(d.type, all_consts),
            d.kind,
            # Supplied constants override in-program initializers.
            IntLit(all_consts[d.name]) if d.kind is VarKind.CONST else d.init,
            pos=d.pos,
        )
        for d in program.decls
    )
    procedures = tuple(
        Procedure(
            pr.name,
            tuple(
                Decl(d.name, _resolve_type(d.type, all_consts), d.kind, d.init)
                for d in pr.params
            ),
            _resolve_cmd(pr.body, all_consts),
            pr.requires,
            pr.ensures,
        )
        for pr in program.procedures
    )
    resolved = Program(
        name=program.name,
        params=params,
        decls=decls,
        body=_resolve_cmd(program.body, all_consts),
        procedures=procedures,
    )
    # Attach direction-inference hints for the checker.
    object.__setattr__(resolved, "_unannotated_params", frozenset(unannotated))
    return resolved


def parse_expr(source: str) -> Expr:
    """Parse a standalone Buffy expression (queries, assumptions)."""
    parser = _Parser(tokenize(source))
    expr = parser._expr()
    if not parser._check(EOF):
        raise ParseError(
            f"unexpected trailing input {parser._cur.text!r}", parser._cur.pos
        )
    if isinstance(expr, (_PushBackMarker, _PopFrontMarker, _CallMarker)):
        raise ParseError("statement-only construct used as an expression")
    return expr
