"""Static checking for Buffy programs.

Beyond conventional type checking, the checker enforces the language
restrictions the paper relies on for solver-friendliness (§7):

* loop bounds must be compile-time constants (bounded loops),
* arrays and lists have constant sizes (bounded data structures),
* output buffers are write-only (§3: "write-only buffers as output"),
* monitors are ghost state: they may observe the program but cannot
  influence it (no monitor reads in conditions, moves, or assignments
  to non-monitor state),
* procedure calls are non-recursive (so inlining terminates).

It also infers buffer parameter directions when not annotated, from
``move`` usage (Figure 4 omits in/out qualifiers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .ast import (
    Assert,
    Assign,
    Assume,
    Backlog,
    BinOp,
    BinOpKind,
    BoolLit,
    BuffyError,
    Call,
    Cmd,
    Decl,
    Expr,
    FilterExpr,
    For,
    Havoc,
    If,
    Index,
    IntLit,
    ListEmpty,
    ListHas,
    ListLen,
    Move,
    Param,
    PopFront,
    Procedure,
    Program,
    PushBack,
    Seq,
    Skip,
    UnOp,
    UnOpKind,
    Var,
    VarKind,
    walk_exprs,
)
from ..obs import TRACER
from .types import (
    BOOL_T,
    INT_T,
    ArrayType,
    BoolType,
    BufferType,
    IntType,
    ListType,
    Type,
)


class CheckError(BuffyError):
    pass


@dataclass
class Binding:
    type: Type
    kind: VarKind


class Scope:
    """A lexical scope chain."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.bindings: dict[str, Binding] = {}

    def declare(self, name: str, binding: Binding, pos=None) -> None:
        if name in self.bindings:
            raise CheckError(f"duplicate declaration of {name!r}", pos)
        self.bindings[name] = binding

    def lookup(self, name: str) -> Optional[Binding]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(self)


@dataclass
class CheckedProgram:
    """A validated program plus derived metadata."""

    program: Program
    consts: dict[str, int]
    globals: dict[str, Type] = field(default_factory=dict)
    monitors: dict[str, Type] = field(default_factory=dict)
    buffer_fields: tuple = ("flow", "size")

    @property
    def name(self) -> str:
        return self.program.name


def check_program(program: Program) -> CheckedProgram:
    """Validate a program; returns it with inferred parameter directions."""
    with TRACER.span("typecheck", program=program.name):
        return _check_program(program)


def _check_program(program: Program) -> CheckedProgram:
    checker = _Checker(program)
    checker.run()
    resolved = Program(
        name=program.name,
        params=tuple(checker.final_params),
        decls=program.decls,
        body=program.body,
        procedures=program.procedures,
    )
    return CheckedProgram(
        program=resolved,
        consts=checker.consts,
        globals=checker.globals_,
        monitors=checker.monitors,
    )


class _Checker:
    def __init__(self, program: Program):
        self.program = program
        self.consts = dict(program.constants())
        self.globals_: dict[str, Type] = {}
        self.monitors: dict[str, Type] = {}
        self.unannotated: frozenset = getattr(
            program, "_unannotated_params", frozenset()
        )
        self.used_as_src: set[str] = set()
        self.used_as_dst: set[str] = set()
        self.final_params: list[Param] = []
        self.procs = {p.name: p for p in program.procedures}
        self._proc_stack: list[str] = []

    # ----- driver -------------------------------------------------------------

    def run(self) -> None:
        top = Scope()
        for param in self.program.params:
            self._check_param_type(param)
            top.declare(param.name, Binding(param.type, param.kind))
        for decl in self.program.decls:
            self._declare(top, decl)
        body_scope = top.child()
        self._cmd(self.program.body, body_scope, ghost=False)
        for proc in self.program.procedures:
            self._procedure(proc, top)
        self._finalize_directions()

    def _check_param_type(self, param: Param) -> None:
        base = param.type.elem if isinstance(param.type, ArrayType) else param.type
        if not isinstance(base, BufferType):
            raise CheckError(
                f"parameter {param.name!r} must be a buffer or buffer array"
            )

    def _declare(self, scope: Scope, decl: Decl) -> None:
        if decl.kind is VarKind.CONST:
            if not isinstance(decl.init, IntLit):
                raise CheckError(
                    f"constant {decl.name!r} needs an integer literal initializer",
                    decl.pos,
                )
            scope.declare(decl.name, Binding(INT_T, VarKind.CONST), decl.pos)
            return
        self._check_bounded(decl.type, decl.pos, decl.name)
        scope.declare(decl.name, Binding(decl.type, decl.kind), decl.pos)
        if decl.kind is VarKind.GLOBAL:
            self.globals_[decl.name] = decl.type
        elif decl.kind is VarKind.MONITOR:
            self.monitors[decl.name] = decl.type
        if decl.init is not None:
            init_t = self._expr(decl.init, scope, ghost=decl.kind is VarKind.MONITOR)
            self._require_assignable(decl.type, init_t, decl.pos)

    def _check_bounded(self, typ: Type, pos, name: str) -> None:
        if isinstance(typ, ArrayType):
            if typ.size <= 0:
                raise CheckError(f"array {name!r} must have positive size", pos)
            self._check_bounded(typ.elem, pos, name)

    # ----- commands ------------------------------------------------------------------

    def _cmd(self, cmd: Cmd, scope: Scope, ghost: bool) -> None:
        if isinstance(cmd, Skip):
            return
        if isinstance(cmd, Seq):
            for c in cmd.commands:
                self._cmd(c, scope, ghost)
            return
        if isinstance(cmd, Decl):
            if cmd.kind is not VarKind.LOCAL:
                raise CheckError(
                    f"{cmd.kind.value} declaration of {cmd.name!r} must be at"
                    " program level",
                    cmd.pos,
                )
            self._declare(scope, cmd)
            return
        if isinstance(cmd, Assign):
            target_t, target_kind = self._lvalue(cmd.target, scope)
            is_ghost_write = target_kind is VarKind.MONITOR
            value_t = self._expr(cmd.value, scope, ghost=ghost or is_ghost_write)
            self._require_assignable(target_t, value_t, cmd.pos)
            if target_kind is VarKind.CONST:
                raise CheckError("cannot assign to a constant", cmd.pos)
            return
        if isinstance(cmd, If):
            cond_t = self._expr(cmd.cond, scope, ghost)
            self._require(cond_t, BoolType, "if condition", cmd.pos)
            self._cmd(cmd.then, scope.child(), ghost)
            self._cmd(cmd.els, scope.child(), ghost)
            return
        if isinstance(cmd, For):
            self._const_expr(cmd.lo, "loop lower bound")
            self._const_expr(cmd.hi, "loop upper bound")
            inner = scope.child()
            inner.declare(cmd.var, Binding(INT_T, VarKind.LOCAL), cmd.pos)
            for inv in cmd.invariants:
                inv_t = self._expr(inv, inner, ghost=True)
                self._require(inv_t, BoolType, "loop invariant", cmd.pos)
            self._cmd(cmd.body, inner, ghost)
            return
        if isinstance(cmd, Move):
            self._buffer_operand(cmd.src, scope, role="src")
            self._buffer_operand(cmd.dst, scope, role="dst")
            amount_t = self._expr(cmd.amount, scope, ghost)
            self._require(amount_t, IntType, "move amount", cmd.pos)
            return
        if isinstance(cmd, PushBack):
            target_t = self._expr(cmd.target, scope, ghost, allow_aggregate=True)
            if not isinstance(target_t, ListType):
                raise CheckError("push_back target must be a list", cmd.pos)
            value_t = self._expr(cmd.value, scope, ghost)
            self._require(value_t, IntType, "push_back value", cmd.pos)
            return
        if isinstance(cmd, PopFront):
            var_t, var_kind = self._lvalue(cmd.var, scope)
            if not isinstance(var_t, IntType):
                raise CheckError("pop_front result must go to an int", cmd.pos)
            target_t = self._expr(cmd.target, scope, ghost, allow_aggregate=True)
            if not isinstance(target_t, ListType):
                raise CheckError("pop_front target must be a list", cmd.pos)
            return
        if isinstance(cmd, (Assert, Assume)):
            cond_t = self._expr(cmd.cond, scope, ghost=True)
            kind = "assert" if isinstance(cmd, Assert) else "assume"
            self._require(cond_t, BoolType, f"{kind} condition", cmd.pos)
            return
        if isinstance(cmd, Havoc):
            target_t, target_kind = self._lvalue(cmd.target, scope)
            if not isinstance(target_t, (IntType, BoolType)):
                raise CheckError("havoc target must be int or bool", cmd.pos)
            for bound in (cmd.lo, cmd.hi):
                if bound is not None:
                    bound_t = self._expr(bound, scope, ghost)
                    self._require(bound_t, IntType, "havoc bound", cmd.pos)
            return
        if isinstance(cmd, Call):
            self._call(cmd, scope, ghost)
            return
        raise CheckError(f"unsupported command {type(cmd).__name__}", cmd.pos)

    def _call(self, cmd: Call, scope: Scope, ghost: bool) -> None:
        proc = self.procs.get(cmd.name)
        if proc is None:
            raise CheckError(f"unknown procedure {cmd.name!r}", cmd.pos)
        if cmd.name in self._proc_stack:
            raise CheckError(
                f"recursive call to {cmd.name!r} is not allowed", cmd.pos
            )
        if len(cmd.args) != len(proc.params):
            raise CheckError(
                f"{cmd.name!r} expects {len(proc.params)} argument(s),"
                f" got {len(cmd.args)}",
                cmd.pos,
            )
        for arg, param in zip(cmd.args, proc.params):
            arg_t = self._expr(arg, scope, ghost, allow_aggregate=True)
            self._require_assignable(param.type, arg_t, cmd.pos)
            # Aggregates are by-reference: require an lvalue-ish argument.
            if isinstance(param.type, (ListType, BufferType, ArrayType)):
                if not isinstance(arg, (Var, Index)):
                    raise CheckError(
                        f"by-reference argument for {param.name!r} must be a"
                        " variable or array element",
                        cmd.pos,
                    )

    def _procedure(self, proc: Procedure, top: Scope) -> None:
        self._proc_stack.append(proc.name)
        scope = top.child()
        for param in proc.params:
            scope.declare(param.name, Binding(param.type, VarKind.LOCAL))
        for spec in proc.requires + proc.ensures:
            spec_t = self._expr(spec, scope, ghost=True)
            self._require(spec_t, BoolType, "contract clause", None)
        self._cmd(proc.body, scope.child(), ghost=False)
        self._proc_stack.pop()

    # ----- expressions ----------------------------------------------------------------

    def _expr(
        self,
        expr: Expr,
        scope: Scope,
        ghost: bool,
        allow_aggregate: bool = False,
    ) -> Type:
        typ = self._type_of(expr, scope, ghost)
        if not allow_aggregate and not isinstance(typ, (IntType, BoolType)):
            raise CheckError(
                f"expected a scalar expression, got {typ}", expr.pos
            )
        return typ

    def _type_of(self, expr: Expr, scope: Scope, ghost: bool) -> Type:
        if isinstance(expr, IntLit):
            return INT_T
        if isinstance(expr, BoolLit):
            return BOOL_T
        if isinstance(expr, Var):
            binding = scope.lookup(expr.name)
            if binding is None:
                raise CheckError(f"undeclared variable {expr.name!r}", expr.pos)
            if binding.kind is VarKind.MONITOR and not ghost:
                raise CheckError(
                    f"monitor {expr.name!r} is ghost state and cannot influence"
                    " program behaviour (only assert/assume/monitor updates may"
                    " read it)",
                    expr.pos,
                )
            return binding.type
        if isinstance(expr, Index):
            base_t = self._type_of(expr.base, scope, ghost)
            if not isinstance(base_t, ArrayType):
                raise CheckError(f"cannot index into {base_t}", expr.pos)
            index_t = self._type_of(expr.index, scope, ghost)
            self._require(index_t, IntType, "array index", expr.pos)
            return base_t.elem
        if isinstance(expr, BinOp):
            return self._binop(expr, scope, ghost)
        if isinstance(expr, UnOp):
            operand_t = self._type_of(expr.operand, scope, ghost)
            if expr.kind is UnOpKind.NOT:
                self._require(operand_t, BoolType, "'!' operand", expr.pos)
                return BOOL_T
            self._require(operand_t, IntType, "'-' operand", expr.pos)
            return INT_T
        if isinstance(expr, Backlog):
            self._buffer_expr(expr.buffer, scope, ghost)
            return INT_T
        if isinstance(expr, FilterExpr):
            buffer_t = self._buffer_expr(expr.buffer, scope, ghost)
            if expr.fieldname not in buffer_t.fields:
                raise CheckError(
                    f"unknown packet field {expr.fieldname!r}"
                    f" (buffer has {', '.join(buffer_t.fields)})",
                    expr.pos,
                )
            value_t = self._type_of(expr.value, scope, ghost)
            self._require(value_t, IntType, "filter value", expr.pos)
            return buffer_t
        if isinstance(expr, (ListHas, ListEmpty, ListLen)):
            target_t = self._type_of(expr.target, scope, ghost)
            if not isinstance(target_t, ListType):
                raise CheckError("list method on a non-list", expr.pos)
            if isinstance(expr, ListHas):
                item_t = self._type_of(expr.item, scope, ghost)
                self._require(item_t, IntType, "has() argument", expr.pos)
                return BOOL_T
            return BOOL_T if isinstance(expr, ListEmpty) else INT_T
        raise CheckError(f"unsupported expression {type(expr).__name__}", expr.pos)

    def _binop(self, expr: BinOp, scope: Scope, ghost: bool) -> Type:
        left_t = self._type_of(expr.left, scope, ghost)
        right_t = self._type_of(expr.right, scope, ghost)
        kind = expr.kind
        if kind in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL):
            self._require(left_t, IntType, f"'{kind.value}' operand", expr.pos)
            self._require(right_t, IntType, f"'{kind.value}' operand", expr.pos)
            return INT_T
        if kind in (BinOpKind.LT, BinOpKind.LE, BinOpKind.GT, BinOpKind.GE):
            self._require(left_t, IntType, f"'{kind.value}' operand", expr.pos)
            self._require(right_t, IntType, f"'{kind.value}' operand", expr.pos)
            return BOOL_T
        if kind in (BinOpKind.EQ, BinOpKind.NE):
            if type(left_t) is not type(right_t) or not isinstance(
                left_t, (IntType, BoolType)
            ):
                raise CheckError(
                    f"'{kind.value}' needs two ints or two bools", expr.pos
                )
            return BOOL_T
        if kind in (BinOpKind.AND, BinOpKind.OR, BinOpKind.IMPLIES):
            self._require(left_t, BoolType, f"'{kind.value}' operand", expr.pos)
            self._require(right_t, BoolType, f"'{kind.value}' operand", expr.pos)
            return BOOL_T
        raise CheckError(f"unsupported operator {kind}", expr.pos)  # pragma: no cover

    def _buffer_expr(self, expr: Expr, scope: Scope, ghost: bool) -> BufferType:
        typ = self._type_of(expr, scope, ghost)
        if isinstance(typ, BufferType):
            return typ
        raise CheckError(f"expected a buffer, got {typ}", expr.pos)

    def _buffer_operand(self, expr: Expr, scope: Scope, role: str) -> None:
        """Check a move operand and record direction usage for inference."""
        if isinstance(expr, FilterExpr):
            raise CheckError(
                "move operates on plain buffers, not filtered views", expr.pos
            )
        self._buffer_expr(expr, scope, ghost=False)
        root = expr
        while isinstance(root, Index):
            root = root.base
        if isinstance(root, Var):
            binding = scope.lookup(root.name)
            if binding is not None and binding.kind in (
                VarKind.PARAM_IN,
                VarKind.PARAM_OUT,
            ):
                (self.used_as_src if role == "src" else self.used_as_dst).add(
                    root.name
                )
                # Write-only outputs: an annotated out-buffer cannot be a source.
                if (
                    role == "src"
                    and binding.kind is VarKind.PARAM_OUT
                    and root.name not in self.unannotated
                ):
                    raise CheckError(
                        f"output buffer {root.name!r} is write-only", expr.pos
                    )

    def _lvalue(self, expr: Expr, scope: Scope) -> tuple[Type, VarKind]:
        if isinstance(expr, Var):
            binding = scope.lookup(expr.name)
            if binding is None:
                raise CheckError(f"undeclared variable {expr.name!r}", expr.pos)
            return binding.type, binding.kind
        if isinstance(expr, Index):
            base_t, base_kind = self._lvalue(expr.base, scope)
            if not isinstance(base_t, ArrayType):
                raise CheckError(f"cannot index into {base_t}", expr.pos)
            index_t = self._type_of(expr.index, scope, ghost=False)
            self._require(index_t, IntType, "array index", expr.pos)
            return base_t.elem, base_kind
        raise CheckError("assignment target must be a variable or element", expr.pos)

    def _require(self, typ: Type, cls: type, what: str, pos) -> None:
        if not isinstance(typ, cls):
            raise CheckError(f"{what} must be {cls().__str__()}, got {typ}", pos)

    def _require_assignable(self, target: Type, value: Type, pos) -> None:
        if type(target) is not type(value):
            raise CheckError(f"cannot assign {value} to {target}", pos)
        if isinstance(target, ArrayType):
            assert isinstance(value, ArrayType)
            if target.size != value.size:
                raise CheckError(
                    f"array size mismatch: {target} vs {value}", pos
                )
            self._require_assignable(target.elem, value.elem, pos)

    def _const_expr(self, expr: Expr, what: str) -> int:
        """Evaluate a compile-time constant expression (loop bounds)."""
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, Var) and expr.name in self.consts:
            return self.consts[expr.name]
        if isinstance(expr, BinOp):
            left = self._const_expr(expr.left, what)
            right = self._const_expr(expr.right, what)
            if expr.kind is BinOpKind.ADD:
                return left + right
            if expr.kind is BinOpKind.SUB:
                return left - right
            if expr.kind is BinOpKind.MUL:
                return left * right
        if isinstance(expr, UnOp) and expr.kind is UnOpKind.NEG:
            return -self._const_expr(expr.operand, what)
        raise CheckError(
            f"{what} must be a compile-time constant (§7: bounded loops)",
            expr.pos,
        )

    # ----- direction inference ------------------------------------------------------

    def _finalize_directions(self) -> None:
        for param in self.program.params:
            kind = param.kind
            if param.name in self.unannotated:
                src = param.name in self.used_as_src
                dst = param.name in self.used_as_dst
                if src and dst:
                    raise CheckError(
                        f"buffer {param.name!r} is used as both a move source"
                        " and destination; annotate it with in/out"
                    )
                kind = VarKind.PARAM_OUT if dst else VarKind.PARAM_IN
            self.final_params.append(Param(param.name, param.type, kind))
