"""Pretty printer: Buffy ASTs back to concrete syntax.

Supports round-trip testing (``parse(pretty(parse(src)))`` is
structurally equal to ``parse(src)``) and makes builder-constructed
programs inspectable.
"""

from __future__ import annotations

from .ast import (
    Assert,
    Assign,
    Assume,
    Backlog,
    BinOp,
    BoolLit,
    Call,
    Cmd,
    Decl,
    Expr,
    FilterExpr,
    For,
    Havoc,
    If,
    Index,
    IntLit,
    ListEmpty,
    ListHas,
    ListLen,
    Move,
    Param,
    PopFront,
    Procedure,
    Program,
    PushBack,
    Seq,
    Skip,
    UnOp,
    Var,
    VarKind,
)
from .types import ArrayType, BufferType, ListType, Type

_INDENT = "  "


def pretty_expr(expr: Expr) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Index):
        return f"{pretty_expr(expr.base)}[{pretty_expr(expr.index)}]"
    if isinstance(expr, BinOp):
        return (
            f"({pretty_expr(expr.left)} {expr.kind.value}"
            f" {pretty_expr(expr.right)})"
        )
    if isinstance(expr, UnOp):
        return f"{expr.kind.value}{pretty_expr(expr.operand)}"
    if isinstance(expr, Backlog):
        op = "backlog-b" if expr.in_bytes else "backlog-p"
        return f"{op}({pretty_expr(expr.buffer)})"
    if isinstance(expr, FilterExpr):
        return (
            f"({pretty_expr(expr.buffer)} |> {expr.fieldname}"
            f" == {pretty_expr(expr.value)})"
        )
    if isinstance(expr, ListHas):
        return f"{pretty_expr(expr.target)}.has({pretty_expr(expr.item)})"
    if isinstance(expr, ListEmpty):
        return f"{pretty_expr(expr.target)}.empty()"
    if isinstance(expr, ListLen):
        return f"{pretty_expr(expr.target)}.len()"
    raise ValueError(f"cannot print {type(expr).__name__}")


def pretty_type(typ: Type) -> str:
    if isinstance(typ, ArrayType):
        return f"{pretty_type(typ.elem)}[{typ.size}]"
    if isinstance(typ, ListType):
        if typ.capacity is not None:
            return f"list[{typ.capacity}]"
        return "list"
    return str(typ)


def pretty_cmd(cmd: Cmd, depth: int = 0) -> str:
    pad = _INDENT * depth
    if isinstance(cmd, Skip):
        return f"{pad};"
    if isinstance(cmd, Seq):
        return "\n".join(pretty_cmd(c, depth) for c in cmd.commands)
    if isinstance(cmd, Decl):
        init = f" = {pretty_expr(cmd.init)}" if cmd.init is not None else ""
        return f"{pad}{cmd.kind.value} {pretty_type(cmd.type)} {cmd.name}{init};"
    if isinstance(cmd, Assign):
        return f"{pad}{pretty_expr(cmd.target)} = {pretty_expr(cmd.value)};"
    if isinstance(cmd, If):
        out = [f"{pad}if ({pretty_expr(cmd.cond)}) {{"]
        out.append(pretty_cmd(cmd.then, depth + 1))
        if not isinstance(cmd.els, Skip):
            out.append(f"{pad}}} else {{")
            out.append(pretty_cmd(cmd.els, depth + 1))
        out.append(f"{pad}}}")
        return "\n".join(out)
    if isinstance(cmd, For):
        header = (
            f"{pad}for ({cmd.var} in {pretty_expr(cmd.lo)}"
            f"..{pretty_expr(cmd.hi)})"
        )
        invs = "".join(
            f"\n{pad}{_INDENT}invariant {pretty_expr(inv)};"
            for inv in cmd.invariants
        )
        body = pretty_cmd(cmd.body, depth + 1)
        return f"{header}{invs} do {{\n{body}\n{pad}}}"
    if isinstance(cmd, Move):
        op = "move-b" if cmd.in_bytes else "move-p"
        return (
            f"{pad}{op}({pretty_expr(cmd.src)}, {pretty_expr(cmd.dst)},"
            f" {pretty_expr(cmd.amount)});"
        )
    if isinstance(cmd, PushBack):
        return (
            f"{pad}{pretty_expr(cmd.target)}"
            f".push_back({pretty_expr(cmd.value)});"
        )
    if isinstance(cmd, PopFront):
        return (
            f"{pad}{pretty_expr(cmd.var)} ="
            f" {pretty_expr(cmd.target)}.pop_front();"
        )
    if isinstance(cmd, Assert):
        return f"{pad}assert({pretty_expr(cmd.cond)});"
    if isinstance(cmd, Assume):
        return f"{pad}assume({pretty_expr(cmd.cond)});"
    if isinstance(cmd, Havoc):
        if cmd.lo is not None and cmd.hi is not None:
            return (
                f"{pad}havoc {pretty_expr(cmd.target)} in"
                f" {pretty_expr(cmd.lo)}..{pretty_expr(cmd.hi)};"
            )
        return f"{pad}havoc {pretty_expr(cmd.target)};"
    if isinstance(cmd, Call):
        args = ", ".join(pretty_expr(a) for a in cmd.args)
        return f"{pad}{cmd.name}({args});"
    raise ValueError(f"cannot print {type(cmd).__name__}")


def pretty_param(param: Param) -> str:
    qualifier = "in" if param.kind is VarKind.PARAM_IN else "out"
    if isinstance(param.type, ArrayType):
        return f"{qualifier} buffer[{param.type.size}] {param.name}"
    return f"{qualifier} buffer {param.name}"


def pretty_procedure(proc: Procedure, depth: int = 1) -> str:
    pad = _INDENT * depth
    params = ", ".join(
        f"{pretty_type(p.type)} {p.name}" for p in proc.params
    )
    out = [f"{pad}def {proc.name}({params})"]
    for clause in proc.requires:
        out.append(f"{pad}{_INDENT}requires {pretty_expr(clause)};")
    for clause in proc.ensures:
        out.append(f"{pad}{_INDENT}ensures {pretty_expr(clause)};")
    out.append(f"{pad}{{")
    out.append(pretty_cmd(proc.body, depth + 1))
    out.append(f"{pad}}}")
    return "\n".join(out)


def pretty_program(program: Program) -> str:
    """Render a full program as parseable Buffy source."""
    params = ", ".join(pretty_param(p) for p in program.params)
    lines = [f"{program.name}({params}){{"]
    for decl in program.decls:
        lines.append(pretty_cmd(decl, 1))
    for proc in program.procedures:
        lines.append(pretty_procedure(proc))
    lines.append(pretty_cmd(program.body, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"
