"""The Buffy language: AST, parser, checker, interpreter, builder."""

from .ast import BuffyError, Program
from .builder import EB, ProgramBuilder
from .checker import CheckedProgram, CheckError, check_program
from .interp import Interpreter, RandomOracle, ScriptedOracle, TraceInfeasible
from .lexer import LexError, tokenize
from .parser import ParseError, parse_expr, parse_program
from .pretty import pretty_expr, pretty_program

__all__ = [
    "BuffyError", "CheckError", "CheckedProgram", "EB", "Interpreter",
    "LexError", "ParseError", "Program", "ProgramBuilder", "RandomOracle",
    "ScriptedOracle", "TraceInfeasible", "check_program", "parse_expr",
    "parse_program", "pretty_expr", "pretty_program", "tokenize",
]
