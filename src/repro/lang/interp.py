"""Reference interpreter: executable semantics for Buffy programs.

The interpreter runs a checked program one *time step* at a time over
concrete buffer models.  It serves three roles in the reproduction:

1. the ground-truth semantics the symbolic back ends must agree with
   (differential tests run random workloads through both);
2. the replay engine that validates counterexample traces produced by
   the SMT back end;
3. a straightforward simulator for the example scripts.

``assume`` failures abort the step with :class:`TraceInfeasible`
(the trace is outside the modelled workload); ``assert`` failures are
*recorded* and execution continues, so a run collects every violation.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from ..buffers.base import ConcreteBufferModel
from ..buffers.concrete import ListBuffer
from ..buffers.packets import Packet
from .ast import (
    Assert,
    Assign,
    Assume,
    Backlog,
    BinOp,
    BinOpKind,
    BoolLit,
    BuffyError,
    Call,
    Cmd,
    Decl,
    Expr,
    FilterExpr,
    For,
    Havoc,
    If,
    Index,
    IntLit,
    ListEmpty,
    ListHas,
    ListLen,
    Move,
    PopFront,
    Procedure,
    Program,
    PushBack,
    Seq,
    Skip,
    UnOp,
    UnOpKind,
    Var,
    VarKind,
)
from .checker import CheckedProgram
from .types import ArrayType, BoolType, BufferType, IntType, ListType, Type

Value = Union[int, bool, deque, list, ConcreteBufferModel]


class TraceInfeasible(BuffyError):
    """An ``assume`` evaluated to false: the trace is outside the workload."""


class InterpError(BuffyError):
    """Runtime error in the interpreted program (checker should prevent most)."""


@dataclass
class Violation:
    """A failed ``assert``."""

    step: int
    label: Optional[str]
    pos: Optional[tuple]

    def __str__(self) -> str:
        where = f" at {self.pos[0]}:{self.pos[1]}" if self.pos else ""
        name = self.label or "assert"
        return f"step {self.step}: {name} violated{where}"


class HavocOracle:
    """Supplies values for ``havoc`` commands during concrete execution."""

    def choose(self, step: int, name: str, lo: Optional[int], hi: Optional[int],
               is_bool: bool) -> Union[int, bool]:
        raise NotImplementedError


class RandomOracle(HavocOracle):
    """Random havoc values — used for simulation and differential testing."""

    def __init__(self, seed: int = 0, default_range: tuple[int, int] = (0, 8)):
        self._rng = random.Random(seed)
        self._default = default_range

    def choose(self, step, name, lo, hi, is_bool):
        if is_bool:
            return bool(self._rng.getrandbits(1))
        actual_lo = self._default[0] if lo is None else lo
        actual_hi = self._default[1] if hi is None else hi
        if actual_lo >= actual_hi:
            return actual_lo
        return self._rng.randrange(actual_lo, actual_hi)


class ScriptedOracle(HavocOracle):
    """Replays havoc values from a counterexample model.

    Values are keyed ``(step, name, occurrence)`` where ``occurrence``
    counts havocs of the same variable within a step.
    """

    def __init__(self, values: dict, default: int = 0):
        self._values = dict(values)
        self._default = default
        self._counters: dict[tuple, int] = {}

    def choose(self, step, name, lo, hi, is_bool):
        occurrence = self._counters.get((step, name), 0)
        self._counters[(step, name)] = occurrence + 1
        key = (step, name, occurrence)
        if key in self._values:
            return self._values[key]
        if is_bool:
            return bool(self._default)
        return self._default if lo is None else max(lo, self._default)


@dataclass
class StepRecord:
    """Observables from one executed time step."""

    step: int
    arrivals: dict[str, list[Packet]] = field(default_factory=dict)
    departures: dict[str, list[Packet]] = field(default_factory=dict)
    monitors: dict[str, Value] = field(default_factory=dict)
    buffer_backlogs: dict[str, int] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)


@dataclass
class Trace:
    """The full observable history of a bounded run."""

    steps: list[StepRecord] = field(default_factory=list)

    @property
    def violations(self) -> list[Violation]:
        return [v for s in self.steps for v in s.violations]

    def monitor_series(self, name: str) -> list[Value]:
        return [s.monitors[name] for s in self.steps]

    def ok(self) -> bool:
        return not self.violations


def _scalar_default(typ: Type) -> Value:
    if isinstance(typ, IntType):
        return 0
    if isinstance(typ, BoolType):
        return False
    raise InterpError(f"no default for {typ}")


class BoundedIntList(deque):
    """A FIFO int list honoring the declared capacity.

    Matches the symbolic list semantics: ``push_back`` on a full list
    is a no-op; ``pop_front`` on an empty list yields ``-1`` (callers
    handle the sentinel).  ``capacity`` of ``None`` means unbounded.
    """

    def __init__(self, capacity: Optional[int] = None, iterable=()):
        super().__init__(iterable)
        self.capacity = capacity

    def push_back(self, value: int) -> bool:
        if self.capacity is not None and len(self) >= self.capacity:
            return False
        self.append(value)
        return True


def default_value(typ: Type, buffer_factory: Callable[..., ConcreteBufferModel],
                  buffer_capacity: Optional[int]) -> Value:
    if isinstance(typ, (IntType, BoolType)):
        return _scalar_default(typ)
    if isinstance(typ, ListType):
        return BoundedIntList(typ.capacity)
    if isinstance(typ, BufferType):
        capacity = typ.capacity if typ.capacity is not None else buffer_capacity
        return buffer_factory(capacity=capacity)
    if isinstance(typ, ArrayType):
        return [
            default_value(typ.elem, buffer_factory, buffer_capacity)
            for _ in range(typ.size)
        ]
    raise InterpError(f"cannot build a default value for {typ}")


class Interpreter:
    """Executes a checked Buffy program step by step."""

    def __init__(
        self,
        checked: CheckedProgram,
        buffer_factory: Callable[..., ConcreteBufferModel] = ListBuffer,
        buffer_capacity: Optional[int] = 64,
        oracle: Optional[HavocOracle] = None,
    ):
        self.checked = checked
        self.program: Program = checked.program
        self.buffer_factory = buffer_factory
        self.buffer_capacity = buffer_capacity
        self.oracle = oracle or RandomOracle()
        self._procs: dict[str, Procedure] = {
            p.name: p for p in self.program.procedures
        }
        self.step_index = 0
        self.buffers: dict[str, Value] = {}
        self.globals: dict[str, Value] = {}
        self.reset()

    # ----- state management --------------------------------------------------

    def reset(self) -> None:
        """(Re)initialize buffers, globals and monitors."""
        self.step_index = 0
        self.buffers = {}
        for param in self.program.params:
            self.buffers[param.name] = default_value(
                param.type, self.buffer_factory, self.buffer_capacity
            )
        self.globals = {}
        for decl in self.program.decls:
            if decl.kind is VarKind.CONST:
                continue
            if decl.init is not None and isinstance(decl.init, (IntLit, BoolLit)):
                self.globals[decl.name] = decl.init.value
            else:
                self.globals[decl.name] = default_value(
                    decl.type, self.buffer_factory, self.buffer_capacity
                )

    def buffer(self, name: str, index: Optional[int] = None) -> ConcreteBufferModel:
        value = self.buffers[name]
        if index is not None:
            value = value[index]
        if not isinstance(value, ConcreteBufferModel):
            raise InterpError(f"{name!r} is not a buffer")
        return value

    # ----- step execution --------------------------------------------------------

    def run_step(
        self, arrivals: Optional[dict[str, Sequence[Packet]]] = None
    ) -> StepRecord:
        """Flush arrivals into the input buffers, then run the body once."""
        record = StepRecord(step=self.step_index)
        arrivals = arrivals or {}
        for key, packets in arrivals.items():
            name, index = _parse_buffer_key(key)
            target = self.buffers.get(name)
            if target is None:
                raise InterpError(f"unknown input buffer {name!r}")
            if isinstance(target, list):
                if index is None:
                    raise InterpError(
                        f"{name!r} is a buffer array; address elements as"
                        f" '{name}[i]'"
                    )
                target = target[index]
            elif index is not None:
                raise InterpError(f"{name!r} is not a buffer array")
            target.flush_in(list(packets))
            record.arrivals[str(key)] = list(packets)

        env: dict[str, Value] = {}
        frame = _Frame(self, env, record)
        frame.exec_cmd(self.program.body)

        for name in self.checked.monitors:
            record.monitors[name] = _copy_value(self.globals[name])
        for param in self.program.params:
            value = self.buffers[param.name]
            if isinstance(value, list):
                for i, buf in enumerate(value):
                    record.buffer_backlogs[f"{param.name}[{i}]"] = buf.backlog_p()
            else:
                record.buffer_backlogs[param.name] = value.backlog_p()
        self.step_index += 1
        return record

    def run(
        self,
        workload: Sequence[dict[str, Sequence[Packet]]],
    ) -> Trace:
        """Run one step per workload entry; returns the collected trace."""
        trace = Trace()
        for arrivals in workload:
            trace.steps.append(self.run_step(arrivals))
        return trace

    def drain_outputs(self) -> dict[str, list[Packet]]:
        """Remove and return the contents of all output buffers.

        Composition uses this at the end of each step to flush outputs
        into downstream programs' inputs (§3, Composition).
        """
        out: dict[str, list[Packet]] = {}
        for param in self.program.output_params():
            value = self.buffers[param.name]
            if isinstance(value, list):
                for i, buf in enumerate(value):
                    out[f"{param.name}[{i}]"] = buf.drain_all()
            else:
                out[param.name] = value.drain_all()
        return out


def _parse_buffer_key(key) -> tuple[str, Optional[int]]:
    """Accept 'name', 'name[3]' or ('name', 3) buffer addresses."""
    if isinstance(key, tuple):
        return key[0], key[1]
    if isinstance(key, str) and key.endswith("]") and "[" in key:
        name, _, rest = key.partition("[")
        return name, int(rest[:-1])
    return key, None


def _copy_value(value: Value) -> Value:
    if isinstance(value, deque):
        return deque(value)
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    return value


class _Frame:
    """One step's execution context: locals + access to program state."""

    def __init__(self, interp: Interpreter, env: dict[str, Value],
                 record: StepRecord):
        self.interp = interp
        self.env = env
        self.record = record

    # ----- name resolution -------------------------------------------------------

    def _lookup(self, name: str):
        if name in self.env:
            return self.env, name
        interp = self.interp
        if name in interp.globals:
            return interp.globals, name
        if name in interp.buffers:
            return interp.buffers, name
        consts = interp.checked.consts
        if name in consts:
            return consts, name
        raise InterpError(f"undefined variable {name!r}")

    def _read(self, name: str) -> Value:
        table, key = self._lookup(name)
        return table[key]

    def _write(self, target: Expr, value: Value) -> None:
        if isinstance(target, Var):
            table, key = self._lookup(target.name)
            table[key] = value
            return
        if isinstance(target, Index):
            container = self.eval(target.base, aggregate=True)
            index = self.eval(target.index)
            if not isinstance(container, list):
                raise InterpError("indexed assignment into a non-array", target.pos)
            if not 0 <= index < len(container):
                raise InterpError(
                    f"array index {index} out of range [0, {len(container)})",
                    target.pos,
                )
            container[index] = value
            return
        raise InterpError("invalid assignment target", target.pos)

    # ----- expression evaluation ----------------------------------------------------

    def eval(self, expr: Expr, aggregate: bool = False) -> Value:
        value = self._eval(expr)
        if not aggregate and isinstance(value, (deque, list, ConcreteBufferModel)):
            raise InterpError("aggregate used where a scalar is expected", expr.pos)
        return value

    def _eval(self, expr: Expr) -> Value:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, Var):
            return self._read(expr.name)
        if isinstance(expr, Index):
            container = self.eval(expr.base, aggregate=True)
            index = self.eval(expr.index)
            if not isinstance(container, list):
                raise InterpError("indexing into a non-array", expr.pos)
            if not 0 <= index < len(container):
                raise InterpError(
                    f"array index {index} out of range [0, {len(container)})",
                    expr.pos,
                )
            return container[index]
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, UnOp):
            operand = self.eval(expr.operand)
            if expr.kind is UnOpKind.NOT:
                return not operand
            return -operand
        if isinstance(expr, Backlog):
            buf, fieldname, value = self._eval_buffer(expr.buffer)
            if expr.in_bytes:
                return buf.backlog_b(fieldname, value)
            return buf.backlog_p(fieldname, value)
        if isinstance(expr, ListHas):
            target = self.eval(expr.target, aggregate=True)
            return self.eval(expr.item) in target
        if isinstance(expr, ListEmpty):
            target = self.eval(expr.target, aggregate=True)
            return len(target) == 0
        if isinstance(expr, ListLen):
            target = self.eval(expr.target, aggregate=True)
            return len(target)
        if isinstance(expr, FilterExpr):
            raise InterpError(
                "filtered buffers may only appear under backlog", expr.pos
            )
        raise InterpError(f"cannot evaluate {type(expr).__name__}", expr.pos)

    def _eval_binop(self, expr: BinOp) -> Value:
        kind = expr.kind
        if kind is BinOpKind.AND:
            return bool(self.eval(expr.left)) and bool(self.eval(expr.right))
        if kind is BinOpKind.OR:
            return bool(self.eval(expr.left)) or bool(self.eval(expr.right))
        if kind is BinOpKind.IMPLIES:
            return (not self.eval(expr.left)) or bool(self.eval(expr.right))
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if kind is BinOpKind.ADD:
            return left + right
        if kind is BinOpKind.SUB:
            return left - right
        if kind is BinOpKind.MUL:
            return left * right
        if kind is BinOpKind.LT:
            return left < right
        if kind is BinOpKind.LE:
            return left <= right
        if kind is BinOpKind.GT:
            return left > right
        if kind is BinOpKind.GE:
            return left >= right
        if kind is BinOpKind.EQ:
            return left == right
        if kind is BinOpKind.NE:
            return left != right
        raise InterpError(f"unsupported operator {kind}", expr.pos)

    def _eval_buffer(self, expr: Expr):
        """Resolve a buffer expression to (model, filter_field, filter_value)."""
        if isinstance(expr, FilterExpr):
            buf, fieldname, value = self._eval_buffer(expr.buffer)
            if fieldname is not None:
                raise InterpError("nested filters are not supported", expr.pos)
            return buf, expr.fieldname, self.eval(expr.value)
        value = self.eval(expr, aggregate=True)
        if not isinstance(value, ConcreteBufferModel):
            raise InterpError("expected a buffer", expr.pos)
        return value, None, None

    # ----- command execution -----------------------------------------------------------

    def exec_cmd(self, cmd: Cmd) -> None:
        if isinstance(cmd, Skip):
            return
        if isinstance(cmd, Seq):
            for c in cmd.commands:
                self.exec_cmd(c)
            return
        if isinstance(cmd, Decl):
            if cmd.init is not None:
                self.env[cmd.name] = self.eval(cmd.init)
            else:
                self.env[cmd.name] = default_value(
                    cmd.type, self.interp.buffer_factory,
                    self.interp.buffer_capacity,
                )
            return
        if isinstance(cmd, Assign):
            self._write(cmd.target, self.eval(cmd.value))
            return
        if isinstance(cmd, If):
            if self.eval(cmd.cond):
                self.exec_cmd(cmd.then)
            else:
                self.exec_cmd(cmd.els)
            return
        if isinstance(cmd, For):
            lo = self.eval(cmd.lo)
            hi = self.eval(cmd.hi)
            saved = self.env.get(cmd.var, _MISSING)
            for i in range(lo, hi):
                self.env[cmd.var] = i
                self.exec_cmd(cmd.body)
            if saved is _MISSING:
                self.env.pop(cmd.var, None)
            else:
                self.env[cmd.var] = saved
            return
        if isinstance(cmd, Move):
            self._exec_move(cmd)
            return
        if isinstance(cmd, PushBack):
            target = self.eval(cmd.target, aggregate=True)
            value = self.eval(cmd.value)
            if isinstance(target, BoundedIntList):
                target.push_back(value)
            else:
                target.append(value)
            return
        if isinstance(cmd, PopFront):
            target = self.eval(cmd.target, aggregate=True)
            value = target.popleft() if target else -1
            self._write(cmd.var, value)
            return
        if isinstance(cmd, Assert):
            if not self.eval(cmd.cond):
                self.record.violations.append(
                    Violation(self.record.step, cmd.label, cmd.pos)
                )
            return
        if isinstance(cmd, Assume):
            if not self.eval(cmd.cond):
                raise TraceInfeasible(
                    f"assume violated at step {self.record.step}", cmd.pos
                )
            return
        if isinstance(cmd, Havoc):
            lo = None if cmd.lo is None else self.eval(cmd.lo)
            hi = None if cmd.hi is None else self.eval(cmd.hi)
            name = _havoc_name(cmd.target)
            is_bool = isinstance(self._havoc_current(cmd.target), bool)
            value = self.interp.oracle.choose(
                self.record.step, name, lo, hi, is_bool
            )
            self._write(cmd.target, value)
            return
        if isinstance(cmd, Call):
            self._exec_call(cmd)
            return
        raise InterpError(f"unsupported command {type(cmd).__name__}", cmd.pos)

    def _havoc_current(self, target: Expr) -> Value:
        try:
            return self.eval(target)
        except InterpError:
            return 0

    def _exec_move(self, cmd: Move) -> None:
        src, src_field, _ = self._eval_buffer(cmd.src)
        dst, _, _ = self._eval_buffer(cmd.dst)
        if src_field is not None:
            raise InterpError("move source cannot be filtered", cmd.pos)
        amount = self.eval(cmd.amount)
        if cmd.in_bytes:
            packets = src.dequeue_bytes(amount)
        else:
            packets = src.dequeue_packets(amount)
        for packet in packets:
            dst.enqueue(packet)
        dst_name = _buffer_label(cmd.dst)
        self.record.departures.setdefault(dst_name, []).extend(packets)

    def _exec_call(self, cmd: Call) -> None:
        proc = self.interp._procs.get(cmd.name)
        if proc is None:
            raise InterpError(f"unknown procedure {cmd.name!r}", cmd.pos)
        callee_env: dict[str, Value] = {}
        for param, arg in zip(proc.params, cmd.args):
            if isinstance(param.type, (ListType, BufferType, ArrayType)):
                callee_env[param.name] = self.eval(arg, aggregate=True)
            else:
                callee_env[param.name] = self.eval(arg)
        frame = _Frame(self.interp, callee_env, self.record)
        frame.exec_cmd(proc.body)


class _Missing:
    pass


_MISSING = _Missing()


def _havoc_name(target: Expr) -> str:
    if isinstance(target, Var):
        return target.name
    if isinstance(target, Index):
        return _havoc_name(target.base)
    return "<havoc>"


def _buffer_label(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Index):
        base = _buffer_label(expr.base)
        return f"{base}[.]"
    return "<buffer>"
