"""Lexer for the Buffy concrete syntax.

The token set follows Figure 3/4 of the paper, including the
hyphenated buffer builtins (``backlog-p``, ``move-p``...).  Underscore
spellings (``backlog_p``) are accepted as aliases since hyphens are
awkward in a C-like language.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional

from .ast import BuffyError, Pos


class LexError(BuffyError):
    pass


KEYWORDS = {
    "if", "else", "for", "in", "do", "true", "false",
    "global", "local", "monitor", "const", "havoc",
    "int", "bool", "list", "buffer",
    "assert", "assume", "out",
    "def", "requires", "ensures", "invariant",
}

# Hyphenated builtins must be matched before IDENT and MINUS.
_BUILTIN = r"(?:backlog|move)[-_][pb]\b"

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*"),
    ("WS", r"[ \t\r]+"),
    ("NL", r"\n"),
    ("BUILTIN", _BUILTIN),
    ("NUMBER", r"\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("DOTDOT", r"\.\."),
    ("IMPLIES", r"==>"),
    ("PIPEGT", r"\|>"),
    ("EQ", r"=="),
    ("NE", r"!="),
    ("LE", r"<="),
    ("GE", r">="),
    ("ANDAND", r"&&"),
    ("OROR", r"\|\|"),
    ("LPAREN", r"\("), ("RPAREN", r"\)"),
    ("LBRACE", r"\{"), ("RBRACE", r"\}"),
    ("LBRACK", r"\["), ("RBRACK", r"\]"),
    ("COMMA", r","), ("SEMI", r";"), ("DOT", r"\."),
    ("ASSIGN", r"="),
    ("PLUS", r"\+"), ("MINUS", r"-"), ("STAR", r"\*"),
    ("LT", r"<"), ("GT", r">"),
    ("AMP", r"&"), ("PIPE", r"\|"),
    ("BANG", r"!"),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: Pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.pos})"


EOF = "EOF"


def tokenize(source: str) -> list[Token]:
    """Tokenize Buffy source text; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    index = 0
    n = len(source)
    while index < n:
        match = _MASTER.match(source, index)
        if match is None:
            col = index - line_start + 1
            raise LexError(f"unexpected character {source[index]!r}", (line, col))
        kind = match.lastgroup or ""
        text = match.group(0)
        if kind == "NL":
            line += 1
            line_start = match.end()
        elif kind not in ("WS", "COMMENT"):
            col = match.start() - line_start + 1
            if kind == "IDENT" and text in KEYWORDS:
                kind = text.upper()
            if kind == "BUILTIN":
                text = text.replace("_", "-")  # canonical hyphen form
            tokens.append(Token(kind, text, (line, col)))
        index = match.end()
    tokens.append(Token(EOF, "", (line, n - line_start + 1)))
    return tokens
