"""Embedded builder API: construct Buffy programs from Python.

The concrete syntax (:mod:`repro.lang.parser`) is the primary front
end; the builder is the programmatic alternative for generated models
(parameter sweeps, ablations) and for users who prefer staying in
Python::

    b = ProgramBuilder("prio")
    ibs = b.in_buffers("ibs", 3)
    ob = b.out_buffer("ob")
    done = b.local_bool("dequeued")
    b.assign(done, b.false)
    with b.for_("i", 0, 3) as i:
        with b.if_((~done) & (b.backlog_p(ibs[i]) > b.int(0))):
            b.move_p(ibs[i], ob, b.int(1))
            b.assign(done, b.true)
    program = b.build()           # a checked Program

Expression operators are overloaded on :class:`EB` wrappers; command
context managers (``if_`` / ``for_`` / ``else_``) nest naturally.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Union

from .ast import (
    Assert,
    Assign,
    Assume,
    Backlog,
    BinOp,
    BinOpKind,
    BoolLit,
    Call,
    Cmd,
    Decl,
    Expr,
    FilterExpr,
    For,
    Havoc,
    If,
    Index,
    IntLit,
    ListEmpty,
    ListHas,
    ListLen,
    Move,
    Param,
    PopFront,
    Program,
    PushBack,
    Seq,
    Skip,
    UnOp,
    UnOpKind,
    Var,
    VarKind,
)
from .checker import CheckedProgram, check_program
from .types import BOOL_T, BUFFER_T, INT_T, LIST_T, ArrayType, ListType

ExprLike = Union["EB", Expr, int, bool]


def _expr(value: ExprLike) -> Expr:
    if isinstance(value, EB):
        return value.node
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolLit(value)
    if isinstance(value, int):
        return IntLit(value)
    raise TypeError(f"cannot use {value!r} as a Buffy expression")


class EB:
    """Expression builder: wraps an AST node with Python operators."""

    __slots__ = ("node",)

    def __init__(self, node: Expr):
        self.node = node

    def _bin(self, kind: BinOpKind, other: ExprLike, swap: bool = False) -> "EB":
        left, right = _expr(self), _expr(other)
        if swap:
            left, right = right, left
        return EB(BinOp(kind, left, right))

    def __add__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.ADD, other)

    def __radd__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.ADD, other, swap=True)

    def __sub__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.SUB, other)

    def __rsub__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.SUB, other, swap=True)

    def __mul__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.MUL, other)

    def __lt__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.LT, other)

    def __le__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.LE, other)

    def __gt__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.GT, other)

    def __ge__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.GE, other)

    def eq(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.EQ, other)

    def ne(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.NE, other)

    def __and__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.AND, other)

    def __or__(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.OR, other)

    def implies(self, other: ExprLike) -> "EB":
        return self._bin(BinOpKind.IMPLIES, other)

    def __invert__(self) -> "EB":
        return EB(UnOp(UnOpKind.NOT, _expr(self)))

    def __neg__(self) -> "EB":
        return EB(UnOp(UnOpKind.NEG, _expr(self)))

    def __getitem__(self, index: ExprLike) -> "EB":
        return EB(Index(self.node, _expr(index)))

    # list methods
    def has(self, item: ExprLike) -> "EB":
        return EB(ListHas(self.node, _expr(item)))

    def empty(self) -> "EB":
        return EB(ListEmpty(self.node))

    def len(self) -> "EB":
        return EB(ListLen(self.node))

    def filter(self, fieldname: str, value: ExprLike) -> "EB":
        return EB(FilterExpr(self.node, fieldname, _expr(value)))

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "Buffy expressions are symbolic; use b.if_(...) for branching"
        )


def _of(value: ExprLike) -> Expr:
    return _expr(value)


class ProgramBuilder:
    """Accumulates declarations and commands into a checked Program."""

    true = EB(BoolLit(True))
    false = EB(BoolLit(False))

    def __init__(self, name: str):
        self.name = name
        self._params: list[Param] = []
        self._decls: list[Decl] = []
        self._frames: list[list[Cmd]] = [[]]

    # ----- declarations -----------------------------------------------------

    def in_buffer(self, name: str) -> EB:
        self._params.append(Param(name, BUFFER_T, VarKind.PARAM_IN))
        return EB(Var(name))

    def out_buffer(self, name: str) -> EB:
        self._params.append(Param(name, BUFFER_T, VarKind.PARAM_OUT))
        return EB(Var(name))

    def in_buffers(self, name: str, count: int) -> EB:
        self._params.append(
            Param(name, ArrayType(BUFFER_T, count), VarKind.PARAM_IN)
        )
        return EB(Var(name))

    def out_buffers(self, name: str, count: int) -> EB:
        self._params.append(
            Param(name, ArrayType(BUFFER_T, count), VarKind.PARAM_OUT)
        )
        return EB(Var(name))

    def _decl(self, name: str, typ, kind: VarKind,
              init: Optional[ExprLike] = None) -> EB:
        decl = Decl(name, typ, kind, None if init is None else _of(init))
        if kind is VarKind.LOCAL:
            self._emit(decl)
        else:
            self._decls.append(decl)
        return EB(Var(name))

    def global_int(self, name: str, init: Optional[int] = None) -> EB:
        return self._decl(name, INT_T, VarKind.GLOBAL,
                          None if init is None else init)

    def global_bool(self, name: str, init: Optional[bool] = None) -> EB:
        return self._decl(name, BOOL_T, VarKind.GLOBAL,
                          None if init is None else init)

    def global_list(self, name: str, capacity: Optional[int] = None) -> EB:
        typ = ListType(capacity) if capacity else LIST_T
        return self._decl(name, typ, VarKind.GLOBAL)

    def monitor_int(self, name: str) -> EB:
        return self._decl(name, INT_T, VarKind.MONITOR)

    def monitor_int_array(self, name: str, size: int) -> EB:
        return self._decl(name, ArrayType(INT_T, size), VarKind.MONITOR)

    def const_int(self, name: str, value: int) -> EB:
        return self._decl(name, INT_T, VarKind.CONST, value)

    def local_int(self, name: str) -> EB:
        return self._decl(name, INT_T, VarKind.LOCAL)

    def local_bool(self, name: str) -> EB:
        return self._decl(name, BOOL_T, VarKind.LOCAL)

    # ----- expressions -------------------------------------------------------------

    @staticmethod
    def int(value: int) -> EB:
        return EB(IntLit(value))

    @staticmethod
    def backlog_p(buffer: ExprLike) -> EB:
        return EB(Backlog(_of(buffer), in_bytes=False))

    @staticmethod
    def backlog_b(buffer: ExprLike) -> EB:
        return EB(Backlog(_of(buffer), in_bytes=True))

    # ----- commands -------------------------------------------------------------------

    def _emit(self, cmd: Cmd) -> None:
        self._frames[-1].append(cmd)

    def assign(self, target: ExprLike, value: ExprLike) -> None:
        self._emit(Assign(_of(target), _of(value)))

    def move_p(self, src: ExprLike, dst: ExprLike, amount: ExprLike) -> None:
        self._emit(Move(_of(src), _of(dst), _of(amount), in_bytes=False))

    def move_b(self, src: ExprLike, dst: ExprLike, amount: ExprLike) -> None:
        self._emit(Move(_of(src), _of(dst), _of(amount), in_bytes=True))

    def push_back(self, target: ExprLike, value: ExprLike) -> None:
        self._emit(PushBack(_of(target), _of(value)))

    def pop_front(self, var: ExprLike, target: ExprLike) -> None:
        self._emit(PopFront(_of(var), _of(target)))

    def assert_(self, cond: ExprLike, label: Optional[str] = None) -> None:
        self._emit(Assert(_of(cond), label))

    def assume(self, cond: ExprLike) -> None:
        self._emit(Assume(_of(cond)))

    def havoc(self, target: ExprLike, lo: Optional[ExprLike] = None,
              hi: Optional[ExprLike] = None) -> None:
        self._emit(Havoc(
            _of(target),
            None if lo is None else _of(lo),
            None if hi is None else _of(hi),
        ))

    def call(self, name: str, *args: ExprLike) -> None:
        self._emit(Call(name, tuple(_of(a) for a in args)))

    @contextlib.contextmanager
    def if_(self, cond: ExprLike):
        self._frames.append([])
        yield
        then_cmds = self._frames.pop()
        self._emit(If(_of(cond), Seq(tuple(then_cmds))))

    @contextlib.contextmanager
    def if_else(self, cond: ExprLike):
        """Yields (then_scope, else_scope) entry functions; see tests."""
        then_cmds: list[Cmd] = []
        else_cmds: list[Cmd] = []

        @contextlib.contextmanager
        def scope(target: list[Cmd]):
            self._frames.append([])
            yield
            target.extend(self._frames.pop())

        yield scope(then_cmds), scope(else_cmds)
        self._emit(If(_of(cond), Seq(tuple(then_cmds)), Seq(tuple(else_cmds))))

    @contextlib.contextmanager
    def for_(self, var: str, lo: ExprLike, hi: ExprLike):
        self._frames.append([])
        yield EB(Var(var))
        body = self._frames.pop()
        self._emit(For(var, _of(lo), _of(hi), Seq(tuple(body))))

    # ----- finalization ------------------------------------------------------------------

    def build(self, check: bool = True) -> Union[Program, CheckedProgram]:
        program = Program(
            name=self.name,
            params=tuple(self._params),
            decls=tuple(self._decls),
            body=Seq(tuple(self._frames[0])),
        )
        if check:
            return check_program(program)
        return program
