"""Abstract syntax for the Buffy language (Figure 3 of the paper).

A Buffy *program* describes how packets move between buffers in one
"time step".  It combines a conventional imperative core (variables,
assignments, conditionals, bounded loops) with buffer-centric
constructs:

* ``backlog-p(B)`` / ``backlog-b(B)`` — packets/bytes in a buffer,
* ``B |> f == n`` — filter a buffer by a packet-field predicate,
* ``move-p(src, dst, E)`` / ``move-b(src, dst, E)`` — move packets/bytes,
* bounded lists with ``push_back`` / ``pop_front`` / ``has`` / ``empty``.

On top of the figure's grammar the implementation carries the features
§3–§6 describe in prose: ``global`` / ``local`` / ``monitor`` (ghost)
declarations, ``assume`` / ``assert``, ``havoc`` (symbolic inputs),
procedures with optional ``requires`` / ``ensures`` contracts, and loop
``invariant`` annotations for the Dafny-style back end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from .types import BOOL_T, BUFFER_T, INT_T, ArrayType, BufferType, ListType, Type

Pos = Tuple[int, int]  # (line, column), 1-based


class BuffyError(Exception):
    """Base class for user-facing language errors."""

    def __init__(self, message: str, pos: Optional[Pos] = None):
        self.pos = pos
        prefix = f"{pos[0]}:{pos[1]}: " if pos else ""
        super().__init__(prefix + message)


# =============================================================================
# Expressions
# =============================================================================


@dataclass(frozen=True)
class Expr:
    """Base class for expressions.  ``pos`` is for diagnostics only."""

    pos: Optional[Pos] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Var(Expr):
    """A reference to any named entity (scalar, list, buffer, array)."""

    name: str


@dataclass(frozen=True)
class Index(Expr):
    """Array indexing: ``ibs[i]``, ``cdeq[head]``."""

    base: Expr
    index: Expr


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&"
    OR = "|"
    IMPLIES = "==>"


class UnOpKind(enum.Enum):
    NOT = "!"
    NEG = "-"


@dataclass(frozen=True)
class BinOp(Expr):
    kind: BinOpKind
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    kind: UnOpKind
    operand: Expr


@dataclass(frozen=True)
class Backlog(Expr):
    """``backlog-p(B)`` (packets) or ``backlog-b(B)`` (bytes)."""

    buffer: Expr
    in_bytes: bool = False


@dataclass(frozen=True)
class FilterExpr(Expr):
    """``B |> field == value`` — the sub-buffer passing the filter."""

    buffer: Expr
    fieldname: str
    value: Expr


@dataclass(frozen=True)
class ListHas(Expr):
    """``l.has(E)``."""

    target: Expr
    item: Expr


@dataclass(frozen=True)
class ListEmpty(Expr):
    """``l.empty()``."""

    target: Expr


@dataclass(frozen=True)
class ListLen(Expr):
    """``l.len()`` — number of elements (extension used by monitors)."""

    target: Expr


# =============================================================================
# Commands
# =============================================================================


@dataclass(frozen=True)
class Cmd:
    pos: Optional[Pos] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class Skip(Cmd):
    pass


@dataclass(frozen=True)
class Seq(Cmd):
    commands: Tuple[Cmd, ...]

    @staticmethod
    def of(*commands: Cmd) -> "Seq":
        return Seq(tuple(commands))


@dataclass(frozen=True)
class Assign(Cmd):
    """``x = E`` or ``a[i] = E``."""

    target: Expr  # Var or Index
    value: Expr


@dataclass(frozen=True)
class If(Cmd):
    cond: Expr
    then: Cmd
    els: Cmd = field(default_factory=Skip)


@dataclass(frozen=True)
class For(Cmd):
    """``for (i in lo..hi) do { body }`` — half-open, constant bounds.

    Bounds may reference program constants; the checker verifies they
    resolve to compile-time integers (§7: bounded loops only).
    ``invariants`` feed the Dafny-style back end.
    """

    var: str
    lo: Expr
    hi: Expr
    body: Cmd
    invariants: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Move(Cmd):
    """``move-p(src, dst, E)`` / ``move-b(src, dst, E)``.

    Moves ``min(E, backlog(src))`` packets (or bytes) from the head of
    ``src`` to the tail of ``dst``; arrivals beyond ``dst``'s capacity
    are dropped (and counted in the destination's drop statistic).
    """

    src: Expr
    dst: Expr
    amount: Expr
    in_bytes: bool = False


@dataclass(frozen=True)
class PushBack(Cmd):
    """``l.push_back(E)`` (alias ``l.enq(E)``)."""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class PopFront(Cmd):
    """``x = l.pop_front()``.

    Popping an empty list yields the sentinel ``-1`` and leaves the
    list unchanged (total semantics; see DESIGN.md).
    """

    var: Expr  # Var or Index, int-typed
    target: Expr


@dataclass(frozen=True)
class Assert(Cmd):
    """``assert(E)`` — a query/property check (§3, "Assumptions and queries")."""

    cond: Expr
    label: Optional[str] = None


@dataclass(frozen=True)
class Assume(Cmd):
    """``assume(E)`` — restricts the traces considered by the back ends."""

    cond: Expr


@dataclass(frozen=True)
class Havoc(Cmd):
    """``havoc x`` — give ``x`` a non-deterministic (symbolic) value.

    With optional bounds: ``havoc x in lo..hi`` (inclusive lo, exclusive
    hi), the "structured havoc" transformation of §6.1.
    """

    target: Expr  # Var or Index, int- or bool-typed
    lo: Optional[Expr] = None
    hi: Optional[Expr] = None


@dataclass(frozen=True)
class Call(Cmd):
    """Procedure call: ``name(arg, ...)``.

    Buffers, lists and arrays are passed by reference; ints and bools
    by value.  The SMT back end inlines calls; the Dafny back end can
    instead use the callee's contract (§5, modular analysis).
    """

    name: str
    args: Tuple[Expr, ...]


class VarKind(enum.Enum):
    """Declaration kinds (Figure 4 uses global/local; monitors are §3)."""

    GLOBAL = "global"   # persists across time steps
    LOCAL = "local"     # scoped to a single time step
    MONITOR = "monitor" # ghost: persists, cannot influence behaviour
    CONST = "const"     # compile-time constant
    PARAM_IN = "in"     # input buffer parameter
    PARAM_OUT = "out"   # output (write-only) buffer parameter


@dataclass(frozen=True)
class Decl(Cmd):
    """A declaration, also usable as a command for local decls."""

    name: str
    type: Type
    kind: VarKind
    init: Optional[Expr] = None


# =============================================================================
# Program structure
# =============================================================================


@dataclass(frozen=True)
class Param:
    """A buffer parameter: ``in buffer[N] ibs`` or ``out buffer ob``."""

    name: str
    type: Type  # BufferType or ArrayType of BufferType
    kind: VarKind  # PARAM_IN or PARAM_OUT

    @property
    def count(self) -> int:
        return self.type.size if isinstance(self.type, ArrayType) else 1


@dataclass(frozen=True)
class Procedure:
    """A named procedure with optional Dafny-style contracts."""

    name: str
    params: Tuple[Decl, ...]
    body: Cmd
    requires: Tuple[Expr, ...] = ()
    ensures: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Program:
    """A Buffy program: one time step of a network component.

    * ``params`` — input and output buffers (Figure 5 schematics).
    * ``decls`` — globals, monitors and constants (locals live in the body).
    * ``body`` — the per-step command.
    * ``procedures`` — helper procedures callable from the body.
    """

    name: str
    params: Tuple[Param, ...]
    decls: Tuple[Decl, ...]
    body: Cmd
    procedures: Tuple[Procedure, ...] = ()

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"no parameter {name!r} in program {self.name!r}")

    def input_params(self) -> list[Param]:
        return [p for p in self.params if p.kind is VarKind.PARAM_IN]

    def output_params(self) -> list[Param]:
        return [p for p in self.params if p.kind is VarKind.PARAM_OUT]

    def decl(self, name: str) -> Decl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(f"no declaration {name!r} in program {self.name!r}")

    def constants(self) -> dict[str, int]:
        """Compile-time constants declared in the program."""
        out: dict[str, int] = {}
        for d in self.decls:
            if d.kind is VarKind.CONST:
                if not isinstance(d.init, IntLit):
                    raise BuffyError(
                        f"constant {d.name!r} must have an integer literal initializer"
                    )
                out[d.name] = d.init.value
        return out


# =============================================================================
# Traversal helpers
# =============================================================================


def children_of(cmd: Cmd) -> Sequence[Cmd]:
    if isinstance(cmd, Seq):
        return cmd.commands
    if isinstance(cmd, If):
        return (cmd.then, cmd.els)
    if isinstance(cmd, For):
        return (cmd.body,)
    return ()


def walk_commands(cmd: Cmd):
    """Pre-order traversal over a command tree."""
    yield cmd
    for child in children_of(cmd):
        yield from walk_commands(child)


def walk_exprs(root: Expr):
    """Pre-order traversal over an expression tree."""
    yield root
    if isinstance(root, Index):
        yield from walk_exprs(root.base)
        yield from walk_exprs(root.index)
    elif isinstance(root, BinOp):
        yield from walk_exprs(root.left)
        yield from walk_exprs(root.right)
    elif isinstance(root, UnOp):
        yield from walk_exprs(root.operand)
    elif isinstance(root, Backlog):
        yield from walk_exprs(root.buffer)
    elif isinstance(root, FilterExpr):
        yield from walk_exprs(root.buffer)
        yield from walk_exprs(root.value)
    elif isinstance(root, ListHas):
        yield from walk_exprs(root.target)
        yield from walk_exprs(root.item)
    elif isinstance(root, (ListEmpty, ListLen)):
        yield from walk_exprs(root.target)


def exprs_of(cmd: Cmd) -> Sequence[Expr]:
    """Direct expressions of a single command (not recursing into children)."""
    if isinstance(cmd, Assign):
        return (cmd.target, cmd.value)
    if isinstance(cmd, If):
        return (cmd.cond,)
    if isinstance(cmd, For):
        return (cmd.lo, cmd.hi) + cmd.invariants
    if isinstance(cmd, Move):
        return (cmd.src, cmd.dst, cmd.amount)
    if isinstance(cmd, PushBack):
        return (cmd.target, cmd.value)
    if isinstance(cmd, PopFront):
        return (cmd.var, cmd.target)
    if isinstance(cmd, (Assert, Assume)):
        return (cmd.cond,)
    if isinstance(cmd, Havoc):
        out = [cmd.target]
        if cmd.lo is not None:
            out.append(cmd.lo)
        if cmd.hi is not None:
            out.append(cmd.hi)
        return tuple(out)
    if isinstance(cmd, Call):
        return cmd.args
    if isinstance(cmd, Decl) and cmd.init is not None:
        return (cmd.init,)
    return ()
