"""Conjunctive normal form representation and DIMACS I/O.

Literals follow the DIMACS convention: variables are positive integers
``1..num_vars``; a literal is ``v`` (positive) or ``-v`` (negated).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, TextIO


@dataclass
class CNF:
    """A CNF formula: a clause database plus a variable counter."""

    num_vars: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate a fresh variable and return it (as a positive literal)."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause, dropping duplicate literals and tautologies."""
        clause: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references unallocated variable")
            if -lit in seen:
                return  # tautology: p or not p
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for cl in clauses:
            self.add_clause(cl)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.clauses)

    # ----- DIMACS ---------------------------------------------------------

    def to_dimacs(self, out: Optional[TextIO] = None) -> str:
        """Serialize as DIMACS CNF; returns the text if ``out`` is None."""
        buf = out if out is not None else io.StringIO()
        buf.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
        for clause in self.clauses:
            buf.write(" ".join(map(str, clause)))
            buf.write(" 0\n")
        if out is None:
            return buf.getvalue()  # type: ignore[union-attr]
        return ""

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text (comments and header tolerated)."""
        cnf = cls()
        declared_vars = 0
        pending: list[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed DIMACS header: {line!r}")
                declared_vars = int(parts[2])
                cnf.num_vars = declared_vars
                continue
            for tok in line.split():
                lit = int(tok)
                if lit == 0:
                    cnf.num_vars = max(cnf.num_vars, *(abs(p) for p in pending), 0) \
                        if pending else cnf.num_vars
                    cnf.clauses.append(pending)
                    pending = []
                else:
                    cnf.num_vars = max(cnf.num_vars, abs(lit))
                    pending.append(lit)
        if pending:
            cnf.clauses.append(pending)
        return cnf


def check_assignment(cnf: CNF, assignment: Sequence[bool]) -> bool:
    """Check a full assignment against a CNF.

    ``assignment[v]`` is the value of variable ``v`` (index 0 unused).
    """
    if len(assignment) < cnf.num_vars + 1:
        raise ValueError("assignment too short for CNF")
    for clause in cnf.clauses:
        if not any(assignment[l] if l > 0 else not assignment[-l] for l in clause):
            return False
    return True
