"""The user-facing SMT solver: the repo's stand-in for Z3.

:class:`SmtSolver` exposes the familiar assert/check/model/push/pop
interface over the pipeline *terms → intervals → bit-blasting → CDCL*.
Because Buffy's fragment is bounded integers + booleans, this pipeline
is a complete decision procedure (see DESIGN.md, substitution table).

Example::

    solver = SmtSolver()
    x = mk_int_var("x")
    solver.set_bounds("x", 0, 10)
    solver.add(x * x <= mk_int(16), x >= mk_int(3))
    assert solver.check() is CheckResult.SAT
    assert solver.model()[x] in (3, 4)

Resource governance: construct with a :class:`repro.runtime.Budget`
and every phase of ``check()`` — encoding and search — becomes
cancellable; an exhausted run answers :attr:`CheckResult.UNKNOWN` with
:attr:`SmtSolver.last_report` populated instead of hanging or raising.
An optional :class:`repro.runtime.EscalationPolicy` retries retryable
UNKNOWNs (per-call conflict caps) with varied CDCL configurations
before giving up.

The solving engine (:mod:`repro.engine`) adds three opt-in modes under
this same facade:

* ``parallelism=N`` (or ``REPRO_JOBS=N``) races the escalation ladder's
  configurations concurrently in a shared process pool — first SAT or
  UNSAT wins, losers are cancelled.  Verdicts are deterministic (every
  configuration decides the same theory); models and timings may vary.
* ``cache=`` consults a content-addressed result cache *before*
  encoding; identical (formulas, bounds) queries answer in microseconds.
* ``incremental=True`` keeps one bit-blasted CNF and one CDCL solver
  alive across ``check()`` calls: assumptions become SAT-level
  assumption literals, push/pop frames become activation literals, and
  learned clauses survive — the mode `DafnyBackend` and Houdini use to
  discharge many near-identical queries against one shared encoding.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..obs import METRICS, TRACER, phase_scope
from ..runtime.budget import (
    Budget,
    BudgetExhausted,
    ExhaustionReason,
    ResourceReport,
    SolverFault,
)
from ..trust import Certificate, DratChecker, DratError, ProofLog, certify_default
from .bitblast import BitBlaster
from .intervals import BoundsEnv, Interval
from .model import Model
from .sat.cdcl import CDCLConfig, CDCLSolver, SatResult
from .stats import SatStats, SolverStats
from .sorts import BOOL
from .terms import TRUE, Term, evaluate, free_vars, mk_and

if TYPE_CHECKING:
    from ..engine.cache import ResultCache
    from ..persist.checkpoint import CheckpointStore
    from ..runtime.chaos import ChaosMonkey
    from ..runtime.portfolio import EscalationPolicy


class CheckResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "CheckResult is not a boolean; compare against CheckResult.SAT"
        )


# SolverStats lives in repro.smt.stats (the unified schema);
# re-exported here because this was its historical home.


@dataclass
class _SolveOutcome:
    """Internal: what the (sequential or parallel) search produced."""

    result: SatResult
    model: Optional[list[bool]] = None
    stats: SatStats = field(default_factory=SatStats)
    exhaust_report: Optional[ResourceReport] = None
    attempts: int = 1
    # Certified runs: the winning solver's DRAT proof steps and (for
    # UNSAT-under-assumptions) the failing assumption literals.
    proof: Optional[list] = None
    core: tuple = ()


class _IncFrame:
    """Bookkeeping for one assertion-stack frame in incremental mode."""

    __slots__ = ("act", "encoded")

    def __init__(self, act: Optional[int]):
        self.act = act      # activation literal; None for the root frame
        self.encoded = 0    # formulas of this frame already encoded


class _IncrementalSession:
    """One live (BitBlaster, CDCLSolver) pair reused across checks.

    Push frames get an *activation literal*: every formula ``f`` of the
    frame is encoded as the guard clause ``(-act ∨ lit(f))`` and ``act``
    is assumed during solves.  Popping retires the frame by permanently
    asserting ``-act`` — its clauses become vacuous, while everything
    learned from them stays valid (learnt clauses can only mention
    ``-act``, which is now true).
    """

    def __init__(self, bounds: BoundsEnv, config: Optional[CDCLConfig],
                 budget: Optional[Budget],
                 proof: Optional[ProofLog] = None):
        self.blaster = BitBlaster(bounds=bounds, budget=budget)
        self.proof = proof
        self.sat = CDCLSolver(0, config, budget=budget, proof=proof)
        self.frames: list[_IncFrame] = [_IncFrame(act=None)]
        self.retired_acts: list[int] = []
        self.loaded_clauses = 0
        self.budget = budget
        # Live incremental DRAT checker: certified UNSAT answers feed it
        # only the clauses/steps that appeared since the last check, so
        # certifying N answers on one growing formula stays linear.
        self.checker: Optional[DratChecker] = None
        self.checked_clauses = 0
        self.checked_steps = 0

    def retire_to(self, depth: int) -> None:
        """Drop frames beyond ``depth`` (called from ``pop()``)."""
        while len(self.frames) > depth:
            frame = self.frames.pop()
            if frame.act is not None:
                self.retired_acts.append(frame.act)
                if METRICS.enabled:
                    METRICS.counter_inc(
                        "repro_incremental_frames_retired_total")

    def sync(self, stack: Sequence[Sequence[Term]], assumptions: Sequence[Term],
             simplify_terms: bool) -> list[int]:
        """Encode everything new; return the assumption literals to solve under."""
        blaster = self.blaster
        for act in self.retired_acts:
            blaster.cnf.add_clause([-act])
        self.retired_acts.clear()
        while len(self.frames) < len(stack):
            self.frames.append(_IncFrame(act=blaster.cnf.new_var()))
            if METRICS.enabled:
                METRICS.counter_inc("repro_incremental_frames_pushed_total")
        if simplify_terms:
            from .simplify import simplify
        else:
            simplify = None
        for frame, formulas in zip(self.frames, stack):
            while frame.encoded < len(formulas):
                f = formulas[frame.encoded]
                if simplify is not None:
                    f = simplify(f)
                if frame.act is None:
                    blaster.assert_formula(f)
                else:
                    blaster.cnf.add_clause([-frame.act, blaster.literal_for(f)])
                frame.encoded += 1
        lits = [frame.act for frame in self.frames if frame.act is not None]
        for a in assumptions:
            f = simplify(a) if simplify is not None else a
            lits.append(blaster.literal_for(f))
        self._load_clauses()
        return lits

    def _load_clauses(self) -> None:
        """Feed clauses added since the last solve into the live CDCL."""
        sat = self.sat
        sat.backtrack_to_root()
        while sat.num_vars < self.blaster.cnf.num_vars:
            sat.new_var()
        clauses = self.blaster.cnf.clauses
        i = self.loaded_clauses
        while i < len(clauses):
            if self.budget is not None and (i & 0xFFF) == 0xFFF:
                self.budget.checkpoint("loading CNF into CDCL (incremental)")
            sat.add_clause(clauses[i])  # False only on root-level unsat
            i += 1
            self.loaded_clauses = i

    @property
    def root_unsat(self) -> bool:
        return not self.sat._ok


class SmtSolver:
    """SMT solver for quantifier-free bounded-integer/boolean formulas."""

    # Installed by repro.runtime.chaos.inject_faults for fault testing.
    # Read through ``self._chaos`` so an instance-level monkey (threaded
    # in by a back end's ``chaos=`` parameter) overrides the class hook.
    _chaos: Optional["ChaosMonkey"] = None

    def __init__(
        self,
        sat_config: Optional[CDCLConfig] = None,
        default_bounds: Interval = Interval(-(1 << 15), (1 << 15) - 1),
        validate_models: bool = True,
        simplify_terms: bool = False,
        budget: Optional[Budget] = None,
        escalation: Optional["EscalationPolicy"] = None,
        parallelism: Optional[int] = None,
        cache: Union["ResultCache", None, bool] = None,
        incremental: bool = False,
        certify: Optional[bool] = None,
        checkpoints: Union["CheckpointStore", str, None, bool] = None,
    ):
        self.sat_config = sat_config
        self.validate_models = validate_models
        self.simplify_terms = simplify_terms
        self.budget = budget
        self.escalation = escalation
        # None defers to REPRO_JOBS at check() time; an int pins it.
        self.parallelism = parallelism
        # None defers to REPRO_CACHE/REPRO_CACHE_DIR; False disables;
        # a ResultCache instance is used directly.
        self.cache = cache
        self.incremental = incremental
        # None defers to REPRO_CERTIFY at check() time; a bool pins it.
        # When active, every UNSAT answer must carry a DRAT certificate
        # accepted by the independent repro.trust checker, else the
        # answer degrades to UNKNOWN(certification_failed).
        self.certify = certify
        # None defers to REPRO_CHECKPOINT_DIR; False disables; a path or
        # CheckpointStore enables solver checkpoint/resume on the
        # sequential one-shot path (see repro.persist.checkpoint).
        self.checkpoints = checkpoints
        # Learned clauses re-installed from a checkpoint by the last
        # check(); > 0 proves a resume actually reused prior work.
        self.last_restored_learnts = 0
        self.certificate: Optional[Certificate] = None
        self._bounds = BoundsEnv(default=default_bounds)
        self._stack: list[list[Term]] = [[]]
        self._inc: Optional[_IncrementalSession] = None
        self._model: Optional[Model] = None
        self._last_result: Optional[CheckResult] = None
        self.last_report: Optional[ResourceReport] = None
        self.stats = SolverStats()
        # Portfolio slots cancelled during the most recent parallel solve;
        # folded into resource reports so timeouts say what was tried.
        self._last_cancelled = 0
        # Supervision and trust counters for resource reports.
        self._last_respawned = 0
        self._last_quarantined = 0
        self._proofs_checked = 0
        self._proofs_failed = 0
        # Assumption terms behind the last UNSAT (incremental mode only).
        self._last_core_terms: Optional[list[Term]] = None

    # ----- assertions -------------------------------------------------------

    def add(self, *formulas: Term) -> None:
        """Assert one or more boolean formulas."""
        for f in formulas:
            if not isinstance(f, Term) or f.sort is not BOOL:
                raise TypeError(f"can only assert Bool terms, got {f!r}")
            self._stack[-1].append(f)

    def set_bounds(self, var: Union[Term, str], lo: int, hi: int) -> None:
        """Declare the interval of an integer variable.

        Tighter bounds mean narrower bit-vectors and faster solving; any
        variable without declared bounds uses the solver default.
        """
        name = var.name if isinstance(var, Term) else var
        if (
            self._inc is not None
            and name in self._inc.blaster.varmap.int_vars
            and self._bounds.get(name) != Interval(lo, hi)
        ):
            raise RuntimeError(
                f"cannot change bounds of {name!r}: it is already encoded"
                " in this incremental session"
            )
        self._bounds.set(name, lo, hi)

    def assertions(self) -> list[Term]:
        return [f for frame in self._stack for f in frame]

    # ----- scopes --------------------------------------------------------------

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("pop without matching push")
        self._stack.pop()
        if self._inc is not None:
            self._inc.retire_to(len(self._stack))

    # ----- engine knobs ---------------------------------------------------------

    def _effective_jobs(self) -> int:
        if self.parallelism is not None:
            return max(1, self.parallelism)
        from ..engine.parallel import default_jobs

        return default_jobs()

    def _effective_cache(self) -> Optional["ResultCache"]:
        from ..engine.cache import resolve_cache

        return resolve_cache(self.cache)

    def _effective_certify(self) -> bool:
        if self.certify is not None:
            return self.certify
        return certify_default()

    def _effective_checkpoints(self):
        from ..persist.checkpoint import resolve_checkpoints

        return resolve_checkpoints(self.checkpoints)

    # ----- solving ---------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the asserted formulas (+ assumptions).

        Never hangs under a budget: the encode and search phases poll it
        cooperatively, and exhaustion yields UNKNOWN with
        :attr:`last_report` describing the spend.  Timing stats are
        recorded even for exhausted runs.
        """
        self._model = None
        self._last_result = None
        self.last_report = None
        self.certificate = None
        self._last_core_terms = None
        formulas = self.assertions() + [
            a for a in assumptions if a is not TRUE
        ]
        for a in assumptions:
            if a.sort is not BOOL:
                raise TypeError("assumptions must be Bool terms")

        if self.budget is not None:
            self.budget.start()
            self.budget.charge_solver_call()
            reason = self.budget.exhausted()
            if reason is not None:
                return self._exhausted(
                    self.budget.report(reason, "refused before encoding"),
                    SolverStats(),
                )

        monkey = self._chaos
        if monkey is not None:
            # May sleep or raise InjectedFault; "unknown" short-circuits.
            if monkey.intercept() == "unknown":
                report = ResourceReport(
                    reason=ExhaustionReason.INJECTED,
                    message="chaos harness injected UNKNOWN",
                )
                return self._exhausted(report, SolverStats())
            # An injected delay may have consumed the deadline.
            if self.budget is not None:
                reason = self.budget.exhausted()
                if reason is not None:
                    return self._exhausted(
                        self.budget.report(reason, "refused before encoding"),
                        SolverStats(),
                    )

        path = "incremental" if self.incremental else "oneshot"
        if METRICS.enabled:
            METRICS.counter_inc("repro_solver_checks_total", path=path)
        with TRACER.span("check", path=path):
            if self.incremental:
                return self._check_incremental(list(assumptions))
            return self._check_oneshot(formulas)

    # ----- one-shot path (with cache and parallel portfolio) -------------------

    def _check_oneshot(self, formulas: list[Term]) -> CheckResult:
        certify = self._effective_certify()
        cache = self._effective_cache()
        cache_key: Optional[str] = None
        if cache is not None:
            from ..engine.cache import formula_fingerprint

            cache_key = formula_fingerprint(formulas, self._bounds)
            hit = cache.get(cache_key)
            if hit is not None:
                result = self._replay_cached(formulas, hit, certify)
                if result is not None:
                    return result

        t0 = time.perf_counter()
        original_formulas = formulas
        if self.simplify_terms:
            from .simplify import simplify

            formulas = [simplify(f) for f in formulas]
        blaster = BitBlaster(bounds=self._bounds, budget=self.budget)
        try:
            with TRACER.span("bitblast", formulas=len(formulas)) as sp:
                for f in formulas:
                    blaster.assert_formula(f)
                sp.set("cnf_vars", blaster.cnf.num_vars)
                sp.set("cnf_clauses", len(blaster.cnf.clauses))
        except BudgetExhausted as exc:
            return self._exhausted(
                exc.report,
                SolverStats(
                    encode_seconds=time.perf_counter() - t0,
                    cnf_vars=blaster.cnf.num_vars,
                    cnf_clauses=len(blaster.cnf.clauses),
                ),
            )
        t1 = time.perf_counter()

        outcome = self._solve_with_escalation(blaster, certify)
        t2 = time.perf_counter()

        self.stats = SolverStats(
            encode_seconds=t1 - t0,
            solve_seconds=t2 - t1,
            cnf_vars=blaster.cnf.num_vars,
            cnf_clauses=len(blaster.cnf.clauses),
            attempts=outcome.attempts,
            sat=outcome.stats,
            sat_lifetime=outcome.stats,  # one-shot: per-call == lifetime
        )

        if outcome.result is SatResult.UNKNOWN:
            self._last_result = CheckResult.UNKNOWN
            self.last_report = self._unknown_report(outcome)
            return CheckResult.UNKNOWN
        if outcome.result is SatResult.UNSAT:
            if certify:
                failure = self._certify_unsat(
                    blaster.cnf.num_vars, blaster.cnf.clauses,
                    outcome.proof, outcome.core,
                )
                if failure is not None:
                    return failure
            if cache is not None and cache_key is not None:
                self._cache_store(cache, cache_key, "unsat", None)
            self._last_result = CheckResult.UNSAT
            return CheckResult.UNSAT

        assert outcome.model is not None
        assignment = blaster.varmap.decode(outcome.model)
        model = Model(assignment)
        if self.validate_models:
            # Validate against the *original* terms: this also checks the
            # simplifier preserved semantics on this model.
            self._validate(original_formulas, model)
        if cache is not None and cache_key is not None:
            self._cache_store(cache, cache_key, "sat", dict(assignment))
        self._model = model
        self._last_result = CheckResult.SAT
        return CheckResult.SAT

    def _replay_cached(self, formulas: list[Term],
                       hit, certify: bool = False) -> Optional[CheckResult]:
        """Answer from a cache entry, or None when the entry is unusable.

        SAT entries are always re-validated by evaluating the query's
        own terms under the stored assignment, so a stale or corrupted
        disk entry degrades to a miss, never to a wrong answer.  A
        certified run treats UNSAT hits as misses: cache entries carry
        no proof, and an uncheckable answer must be re-derived.
        """
        t0 = time.perf_counter()
        if hit.verdict == "unsat":
            if certify:
                return None
            self.stats = SolverStats(
                solve_seconds=time.perf_counter() - t0,
                cnf_vars=hit.cnf_vars,
                cnf_clauses=hit.cnf_clauses,
                cache_hit=True,
            )
            self._last_result = CheckResult.UNSAT
            return CheckResult.UNSAT
        assignment = hit.assignment or {}
        model = Model(assignment)
        for f in formulas:
            if model.eval(f) is not True:
                return None  # corrupt/colliding entry: fall through to solve
        self.stats = SolverStats(
            solve_seconds=time.perf_counter() - t0,
            cnf_vars=hit.cnf_vars,
            cnf_clauses=hit.cnf_clauses,
            cache_hit=True,
        )
        self._model = model
        self._last_result = CheckResult.SAT
        return CheckResult.SAT

    def _cache_store(self, cache, key: str, verdict: str,
                     assignment: Optional[dict]) -> None:
        from ..engine.cache import CacheEntry

        cache.put(key, CacheEntry(
            verdict=verdict,
            assignment=assignment,
            cnf_vars=self.stats.cnf_vars,
            cnf_clauses=self.stats.cnf_clauses,
        ))

    def _certify_unsat(self, num_vars: int, clauses, proof,
                       core) -> Optional[CheckResult]:
        """Check an UNSAT answer's DRAT certificate.

        Returns None on success (with :attr:`certificate` populated) or
        the degraded UNKNOWN answer when the proof is rejected — a
        certified run never reports an UNSAT it cannot replay.
        """
        cert = Certificate(
            num_vars=num_vars,
            clauses=clauses,
            steps=list(proof or ()),
            core=tuple(core or ()),
        )
        monkey = self._chaos
        if monkey is not None:
            monkey.corrupt_proof(cert)
        with TRACER.span("proof-check", steps=len(cert.steps),
                         clauses=len(cert.clauses)):
            ok = cert.verify()
        self._proofs_checked += 1
        if METRICS.enabled:
            METRICS.counter_inc("repro_trust_proofs_checked_total")
        if ok:
            self.certificate = cert
            return None
        self._proofs_failed += 1
        if METRICS.enabled:
            METRICS.counter_inc("repro_trust_proofs_failed_total")
        report = ResourceReport(
            reason=ExhaustionReason.CERTIFICATION_FAILED,
            message=f"UNSAT answer failed proof check: {cert.error}",
        )
        return self._exhausted(report, self.stats)

    def _solve_with_escalation(self, blaster: BitBlaster,
                               certify: bool = False) -> _SolveOutcome:
        """Run CDCL over the escalation ladder, sequentially or in parallel.

        Only a per-call conflict-cap UNKNOWN is retried (with a varied
        configuration on the same CNF); a hard budget exhaustion —
        deadline, cumulative caps, cancellation — always stops the
        ladder immediately.  With ``parallelism > 1`` the whole ladder
        races concurrently in the shared worker pool instead; the pool
        falling over (unlikely) falls back to the sequential climb.
        """
        configs: list[Optional[CDCLConfig]] = [self.sat_config]
        if self.escalation is not None:
            configs.extend(
                self.escalation.ladder(self.sat_config, self.budget)
            )
        self.last_restored_learnts = 0
        if self._effective_jobs() > 1:
            # The parallel portfolio does not checkpoint: workers race
            # non-deterministically, so there is no canonical state to
            # serialize.  Sequential fallback below still does.
            try:
                return self._solve_parallel(blaster, configs, certify)
            except Exception as exc:
                from ..engine.parallel import PoolUnavailable

                if not isinstance(exc, PoolUnavailable):
                    raise
                # fall through to the sequential ladder

        # Checkpoint/resume (repro.persist): a previous budget-exhausted
        # solve of this exact CNF left its learned clauses on disk —
        # restore them into the first rung.  Certified runs skip both
        # directions: a DRAT log cannot replay clause derivations made
        # by a previous process, so restored learnts would be
        # uncertifiable and a saved proof-logging state unusable.
        ck_store = None if certify else self._effective_checkpoints()
        ck_key: Optional[str] = None
        if ck_store is not None:
            from ..persist.checkpoint import cnf_fingerprint

            ck_key = cnf_fingerprint(
                blaster.cnf.num_vars, blaster.cnf.clauses
            )

        attempts = 0
        outcome = _SolveOutcome(SatResult.UNKNOWN)
        last_sat: Optional[CDCLSolver] = None
        last_seconds = 0.0
        for config in configs:
            if attempts > 0 and not self.escalation.can_afford(
                self.budget, last_seconds
            ):
                break  # the next (larger) rung cannot fit in the deadline
            attempts += 1
            t0 = time.perf_counter()
            with TRACER.span("portfolio-rung", rung=attempts,
                             mode="sequential") as rung_span, \
                    phase_scope(rung=attempts):
                sat = CDCLSolver(
                    blaster.cnf.num_vars, config, budget=self.budget,
                    proof=ProofLog() if certify else None,
                )
                last_sat = sat
                try:
                    ok = sat.add_cnf(blaster.cnf)
                except BudgetExhausted as exc:
                    return _SolveOutcome(
                        SatResult.UNKNOWN, stats=sat.stats,
                        exhaust_report=exc.report, attempts=attempts,
                    )
                if ok and attempts == 1 and ck_store is not None:
                    state = ck_store.load(ck_key)
                    if state is not None:
                        try:
                            restored = sat.restore_state(state)
                        except ValueError:
                            pass  # stale/incompatible: solve from scratch
                        else:
                            self.last_restored_learnts = restored
                            if METRICS.enabled:
                                METRICS.counter_inc(
                                    "repro_checkpoint_restores_total")
                            ok = sat._ok
                with TRACER.span("cdcl", rung=attempts) as cdcl_span:
                    result = (
                        sat.solve(budget=self.budget) if ok
                        else SatResult.UNSAT
                    )
                    cdcl_span.set("result", result.value)
                    cdcl_span.set("conflicts", sat.last_stats.conflicts)
                rung_span.set("result", result.value)
            last_seconds = time.perf_counter() - t0
            outcome = _SolveOutcome(
                result,
                model=sat.model() if result is SatResult.SAT else None,
                stats=sat.stats,
                exhaust_report=sat.exhaust_report,
                attempts=attempts,
                proof=(
                    list(sat.proof.steps) if sat.proof is not None else None
                ),
            )
            if result is not SatResult.UNKNOWN:
                break
            if sat.exhaust_report is not None:
                break  # hard budget exhaustion: escalating would be futile
        if ck_store is not None and last_sat is not None:
            if outcome.result is SatResult.UNKNOWN:
                # Exhausted: persist the search state so the next solve
                # of this CNF resumes instead of restarting.
                ck_store.save(ck_key, last_sat.checkpoint_state())
            else:
                ck_store.discard(ck_key)  # answered: checkpoint is spent
        return outcome

    def _solve_parallel(
        self, blaster: BitBlaster, configs: list[Optional[CDCLConfig]],
        certify: bool = False,
    ) -> _SolveOutcome:
        from ..engine.parallel import get_pool

        pool = get_pool(self._effective_jobs())
        monkey = self._chaos
        chaos = None
        if monkey is not None and monkey.config.worker_crash_rate > 0:
            chaos = (
                monkey.config.worker_crash_rate,
                monkey.config.seed,
                monkey.config.worker_max_crashes,
            )
        slot, attempts = pool.solve_portfolio(
            blaster.cnf, configs, budget=self.budget,
            certify=certify, chaos=chaos,
        )
        self._last_cancelled = pool.last_cancelled
        self._last_respawned = pool.last_respawned
        self._last_quarantined = pool.last_quarantined
        if slot.error is not None or slot.reason == "fault":
            raise SolverFault(
                f"portfolio worker failed: {slot.error or 'unknown fault'}"
            )
        exhaust_report: Optional[ResourceReport] = None
        if slot.verdict is SatResult.UNKNOWN and slot.reason not in (
            None, "cancelled",
        ):
            reason = ExhaustionReason(slot.reason)
            if self.budget is not None:
                exhaust_report = self.budget.report(
                    reason, "parallel portfolio", attempts=attempts
                )
            else:
                exhaust_report = ResourceReport(
                    reason=reason, message="parallel portfolio",
                    conflicts=slot.stats.conflicts, attempts=attempts,
                )
        return _SolveOutcome(
            slot.verdict,
            model=slot.model,
            stats=slot.stats,
            exhaust_report=exhaust_report,
            attempts=attempts,
            proof=slot.proof,
            core=slot.core,
        )

    # ----- incremental path -----------------------------------------------------

    def _check_incremental(self, assumptions: list[Term]) -> CheckResult:
        t0 = time.perf_counter()
        certify = self._effective_certify()
        inc = self._inc
        if inc is None or (certify and inc.proof is None):
            # A session created without proof logging cannot certify:
            # earlier calls' learned clauses would be missing from the
            # replay.  Rebuild from scratch when certification turns on
            # mid-session (the stack re-encodes via frame counters).
            inc = self._inc = _IncrementalSession(
                self._bounds, self.sat_config, self.budget,
                proof=ProofLog() if certify else None,
            )
        if METRICS.enabled:
            METRICS.counter_inc("repro_incremental_checks_total")
            # Clauses already loaded into the live CDCL solver are work
            # this check inherits instead of redoing.
            METRICS.counter_inc(
                "repro_incremental_clauses_reused_total", inc.loaded_clauses
            )
        try:
            lits = inc.sync(self._stack, assumptions, self.simplify_terms)
        except BudgetExhausted as exc:
            return self._exhausted(
                exc.report,
                SolverStats(
                    encode_seconds=time.perf_counter() - t0,
                    cnf_vars=inc.blaster.cnf.num_vars,
                    cnf_clauses=len(inc.blaster.cnf.clauses),
                ),
            )
        t1 = time.perf_counter()
        if inc.root_unsat:
            result = SatResult.UNSAT
        else:
            with TRACER.span("cdcl", path="incremental",
                             assumptions=len(lits)) as sp:
                result = inc.sat.solve(assumptions=lits, budget=self.budget)
                sp.set("result", result.value)
        t2 = time.perf_counter()
        self.stats = SolverStats(
            encode_seconds=t1 - t0,
            solve_seconds=t2 - t1,
            cnf_vars=inc.blaster.cnf.num_vars,
            cnf_clauses=len(inc.blaster.cnf.clauses),
            attempts=1,
            # Per-call delta: the session's CDCL solver lives across
            # checks, so its raw counters mix all previous queries.
            sat=inc.sat.last_stats,
            sat_lifetime=inc.sat.stats,
        )
        if result is SatResult.UNKNOWN:
            self._last_result = CheckResult.UNKNOWN
            self.last_report = self._unknown_report(_SolveOutcome(
                result, stats=inc.sat.last_stats,
                exhaust_report=inc.sat.exhaust_report,
            ))
            return CheckResult.UNKNOWN
        if result is SatResult.UNSAT:
            core_lits = [] if inc.root_unsat else inc.sat.unsat_assumptions()
            # Map the SAT-level core back to the caller's assumption
            # terms (activation literals of push frames are dropped).
            core_set = set(core_lits)
            pairs = (
                list(zip(lits[len(lits) - len(assumptions):], assumptions))
                if assumptions else []
            )
            self._last_core_terms = [t for (l, t) in pairs if l in core_set]
            if certify:
                failure = self._certify_incremental(inc, core_lits)
                if failure is not None:
                    return failure
            self._last_result = CheckResult.UNSAT
            return CheckResult.UNSAT
        assignment = inc.blaster.varmap.decode(inc.sat.model())
        model = Model(assignment)
        if self.validate_models:
            self._validate(self.assertions() + assumptions, model)
        self._model = model
        self._last_result = CheckResult.SAT
        return CheckResult.SAT

    def _certify_incremental(self, inc: _IncrementalSession,
                             core_lits: list[int]) -> Optional[CheckResult]:
        """Certify an incremental UNSAT against the session's live checker.

        The checker persists across calls; only clauses and proof steps
        that appeared since the last certification are replayed, then
        the core (or root refutation) is checked.  A rejected proof
        degrades the answer exactly like the one-shot path; the checker
        is discarded so the next certification rebuilds from scratch.
        """
        monkey = self._chaos
        corrupt = monkey is not None and monkey.should_corrupt_proof()
        clauses = inc.blaster.cnf.clauses
        steps = inc.proof.steps if inc.proof is not None else []
        error: Optional[str] = None
        with TRACER.span(
            "proof-check", path="incremental",
            steps=len(steps) - inc.checked_steps,
            clauses=len(clauses) - inc.checked_clauses,
        ):
            try:
                chk = inc.checker
                if chk is None:
                    chk = DratChecker(0)
                    inc.checked_clauses = 0
                    inc.checked_steps = 0
                while inc.checked_clauses < len(clauses):
                    chk.add_clause(clauses[inc.checked_clauses])
                    inc.checked_clauses += 1
                while inc.checked_steps < len(steps):
                    chk.apply_step(steps[inc.checked_steps])
                    inc.checked_steps += 1
                inc.checker = chk
                if corrupt:
                    # Chaos: feed a deterministically non-RUP step (a
                    # unit over a variable no clause mentions).
                    chk.apply_step(("a", (inc.blaster.cnf.num_vars + 1,)))
                if core_lits:
                    ok = chk.assumptions_conflict(core_lits)
                    if not ok:
                        error = ("assumption core does not propagate"
                                 " to a conflict")
                else:
                    ok = chk.refuted
                    if not ok:
                        error = "proof does not derive the empty clause"
            except DratError as exc:
                inc.checker = None  # suspect state: rebuild next time
                ok = False
                error = str(exc)
        self._proofs_checked += 1
        if METRICS.enabled:
            METRICS.counter_inc("repro_trust_proofs_checked_total")
        if ok:
            self.certificate = Certificate(
                num_vars=inc.blaster.cnf.num_vars,
                clauses=list(clauses),
                steps=list(steps),
                core=tuple(core_lits),
                verified=True,
            )
            return None
        self._proofs_failed += 1
        if METRICS.enabled:
            METRICS.counter_inc("repro_trust_proofs_failed_total")
        report = ResourceReport(
            reason=ExhaustionReason.CERTIFICATION_FAILED,
            message=f"UNSAT answer failed proof check: {error}",
        )
        return self._exhausted(report, self.stats)

    # ----- reporting ------------------------------------------------------------

    def _unknown_report(self, outcome: _SolveOutcome) -> ResourceReport:
        if outcome.exhaust_report is not None:
            report = outcome.exhaust_report
            report.attempts = outcome.attempts
        else:
            # Per-call conflict cap (CDCLConfig.max_conflicts), no Budget.
            max_conflicts = (
                self.sat_config.max_conflicts if self.sat_config else None
            )
            report = ResourceReport(
                reason=ExhaustionReason.CONFLICTS,
                message="per-call conflict cap (CDCLConfig.max_conflicts)",
                conflicts=outcome.stats.conflicts,
                max_conflicts=max_conflicts,
                solver_calls=self.budget.solver_calls if self.budget else 1,
                attempts=outcome.attempts,
            )
        self._attach_engine_counters(report)
        return report

    def _attach_engine_counters(self, report: ResourceReport) -> None:
        """Fold engine-level telemetry into a resource report.

        Cache traffic and cancelled portfolio slots tell a ``--timeout``
        user what was tried before the solver gave up.
        """
        cache = self._effective_cache()
        if cache is not None:
            report.cache_hits = cache.stats.hits
            report.cache_misses = cache.stats.misses
        report.cancelled_slots = self._last_cancelled
        report.workers_respawned = self._last_respawned
        report.quarantined_queries = self._last_quarantined
        report.proofs_checked = self._proofs_checked
        report.proofs_failed = self._proofs_failed

    def _exhausted(self, report: ResourceReport,
                   stats: SolverStats) -> CheckResult:
        self._attach_engine_counters(report)
        self.stats = stats
        self.last_report = report
        self._last_result = CheckResult.UNKNOWN
        return CheckResult.UNKNOWN

    def _validate(self, formulas: Sequence[Term], model: Model) -> None:
        """Cross-check the decoded model against the original terms.

        This guards the whole pipeline: if bit-blasting or the SAT solver
        mis-translated anything, evaluation of the *source* terms catches it.
        """
        for f in formulas:
            if model.eval(f) is not True:
                raise AssertionError(
                    f"internal error: model does not satisfy formula {f!r}"
                )

    def model(self) -> Model:
        if self._model is None:
            if self._last_result is CheckResult.UNKNOWN:
                why = (
                    f": {self.last_report.reason.value}"
                    if self.last_report is not None else ""
                )
                raise RuntimeError(
                    "model() is unavailable: the last check() returned"
                    f" UNKNOWN{why}; no (stale) model is retained"
                )
            raise RuntimeError("model() is only available after a SAT check()")
        return self._model

    def unsat_core(self) -> list[Term]:
        """The assumption terms the last UNSAT answer depended on.

        Computed by the CDCL final-conflict analysis over assumption
        literals, so it is a (not necessarily minimal, but usually
        small) subset of the ``check(*assumptions)`` arguments whose
        conjunction with the asserted stack is already unsatisfiable.
        Incremental mode only: the one-shot path folds assumptions into
        the encoding and has no assumption literals to trace.
        """
        if self._last_result is not CheckResult.UNSAT:
            raise RuntimeError(
                "unsat_core() is only available after an UNSAT check()"
            )
        if self._last_core_terms is None:
            raise RuntimeError(
                "unsat_core() requires incremental mode"
                " (SmtSolver(incremental=True))"
            )
        return list(self._last_core_terms)


def governed_check(
    solver: SmtSolver, *assumptions: Term
) -> tuple[CheckResult, Optional[ResourceReport]]:
    """``solver.check()`` with solver faults degraded to UNKNOWN.

    The back ends' failure-isolation primitive: a budget exhaustion or
    an (injected) :class:`SolverFault` becomes ``(UNKNOWN, report)`` for
    this one query instead of aborting the whole analysis.  Genuine
    bugs (any other exception) still propagate.
    """
    try:
        result = solver.check(*assumptions)
    except BudgetExhausted as exc:
        return CheckResult.UNKNOWN, exc.report
    except SolverFault as exc:
        return CheckResult.UNKNOWN, ResourceReport(
            reason=ExhaustionReason.FAULT, message=str(exc)
        )
    return result, solver.last_report


def is_satisfiable(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
                   **solver_kwargs) -> bool:
    """Convenience one-shot satisfiability test."""
    solver = SmtSolver(**solver_kwargs)
    for name, (lo, hi) in (bounds or {}).items():
        solver.set_bounds(name, lo, hi)
    solver.add(formula)
    result = solver.check()
    if result is CheckResult.UNKNOWN:
        raise RuntimeError("solver returned unknown")
    return result is CheckResult.SAT


def prove(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
          **solver_kwargs) -> bool:
    """Validity check: True iff ``formula`` holds for all bounded assignments."""
    from .terms import mk_not

    return not is_satisfiable(mk_not(formula), bounds, **solver_kwargs)
