"""The user-facing SMT solver: the repo's stand-in for Z3.

:class:`SmtSolver` exposes the familiar assert/check/model/push/pop
interface over the pipeline *terms → intervals → bit-blasting → CDCL*.
Because Buffy's fragment is bounded integers + booleans, this pipeline
is a complete decision procedure (see DESIGN.md, substitution table).

Example::

    solver = SmtSolver()
    x = mk_int_var("x")
    solver.set_bounds("x", 0, 10)
    solver.add(x * x <= mk_int(16), x >= mk_int(3))
    assert solver.check() is CheckResult.SAT
    assert solver.model()[x] in (3, 4)
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .bitblast import BitBlaster
from .intervals import BoundsEnv, Interval
from .model import Model
from .sat.cdcl import CDCLConfig, CDCLSolver, SatResult, SatStats
from .sorts import BOOL
from .terms import TRUE, Term, evaluate, free_vars, mk_and


class CheckResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "CheckResult is not a boolean; compare against CheckResult.SAT"
        )


@dataclass
class SolverStats:
    """Aggregate statistics from the last ``check()`` call."""

    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    sat: SatStats = field(default_factory=SatStats)


class SmtSolver:
    """SMT solver for quantifier-free bounded-integer/boolean formulas."""

    def __init__(
        self,
        sat_config: Optional[CDCLConfig] = None,
        default_bounds: Interval = Interval(-(1 << 15), (1 << 15) - 1),
        validate_models: bool = True,
        simplify_terms: bool = False,
    ):
        self.sat_config = sat_config
        self.validate_models = validate_models
        self.simplify_terms = simplify_terms
        self._bounds = BoundsEnv(default=default_bounds)
        self._stack: list[list[Term]] = [[]]
        self._model: Optional[Model] = None
        self.stats = SolverStats()

    # ----- assertions -------------------------------------------------------

    def add(self, *formulas: Term) -> None:
        """Assert one or more boolean formulas."""
        for f in formulas:
            if not isinstance(f, Term) or f.sort is not BOOL:
                raise TypeError(f"can only assert Bool terms, got {f!r}")
            self._stack[-1].append(f)

    def set_bounds(self, var: Union[Term, str], lo: int, hi: int) -> None:
        """Declare the interval of an integer variable.

        Tighter bounds mean narrower bit-vectors and faster solving; any
        variable without declared bounds uses the solver default.
        """
        name = var.name if isinstance(var, Term) else var
        self._bounds.set(name, lo, hi)

    def assertions(self) -> list[Term]:
        return [f for frame in self._stack for f in frame]

    # ----- scopes --------------------------------------------------------------

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("pop without matching push")
        self._stack.pop()

    # ----- solving ---------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the asserted formulas (+ assumptions)."""
        self._model = None
        formulas = self.assertions() + [
            a for a in assumptions if a is not TRUE
        ]
        for a in assumptions:
            if a.sort is not BOOL:
                raise TypeError("assumptions must be Bool terms")

        t0 = time.perf_counter()
        original_formulas = formulas
        if self.simplify_terms:
            from .simplify import simplify

            formulas = [simplify(f) for f in formulas]
        blaster = BitBlaster(bounds=self._bounds)
        for f in formulas:
            blaster.assert_formula(f)
        t1 = time.perf_counter()

        sat = CDCLSolver(blaster.cnf.num_vars, self.sat_config)
        ok = sat.add_cnf(blaster.cnf)
        result = sat.solve() if ok else SatResult.UNSAT
        t2 = time.perf_counter()

        self.stats = SolverStats(
            encode_seconds=t1 - t0,
            solve_seconds=t2 - t1,
            cnf_vars=blaster.cnf.num_vars,
            cnf_clauses=len(blaster.cnf.clauses),
            sat=sat.stats,
        )

        if result is SatResult.UNKNOWN:
            return CheckResult.UNKNOWN
        if result is SatResult.UNSAT:
            return CheckResult.UNSAT

        assignment = blaster.varmap.decode(sat.model())
        model = Model(assignment)
        if self.validate_models:
            # Validate against the *original* terms: this also checks the
            # simplifier preserved semantics on this model.
            self._validate(original_formulas, model)
        self._model = model
        return CheckResult.SAT

    def _validate(self, formulas: Sequence[Term], model: Model) -> None:
        """Cross-check the decoded model against the original terms.

        This guards the whole pipeline: if bit-blasting or the SAT solver
        mis-translated anything, evaluation of the *source* terms catches it.
        """
        for f in formulas:
            if model.eval(f) is not True:
                raise AssertionError(
                    f"internal error: model does not satisfy formula {f!r}"
                )

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("model() is only available after a SAT check()")
        return self._model


def is_satisfiable(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
                   **solver_kwargs) -> bool:
    """Convenience one-shot satisfiability test."""
    solver = SmtSolver(**solver_kwargs)
    for name, (lo, hi) in (bounds or {}).items():
        solver.set_bounds(name, lo, hi)
    solver.add(formula)
    result = solver.check()
    if result is CheckResult.UNKNOWN:
        raise RuntimeError("solver returned unknown")
    return result is CheckResult.SAT


def prove(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
          **solver_kwargs) -> bool:
    """Validity check: True iff ``formula`` holds for all bounded assignments."""
    from .terms import mk_not

    return not is_satisfiable(mk_not(formula), bounds, **solver_kwargs)
