"""The user-facing SMT solver: the repo's stand-in for Z3.

:class:`SmtSolver` exposes the familiar assert/check/model/push/pop
interface over the pipeline *terms → intervals → bit-blasting → CDCL*.
Because Buffy's fragment is bounded integers + booleans, this pipeline
is a complete decision procedure (see DESIGN.md, substitution table).

Example::

    solver = SmtSolver()
    x = mk_int_var("x")
    solver.set_bounds("x", 0, 10)
    solver.add(x * x <= mk_int(16), x >= mk_int(3))
    assert solver.check() is CheckResult.SAT
    assert solver.model()[x] in (3, 4)

Resource governance: construct with a :class:`repro.runtime.Budget`
and every phase of ``check()`` — encoding and search — becomes
cancellable; an exhausted run answers :attr:`CheckResult.UNKNOWN` with
:attr:`SmtSolver.last_report` populated instead of hanging or raising.
An optional :class:`repro.runtime.EscalationPolicy` retries retryable
UNKNOWNs (per-call conflict caps) with varied CDCL configurations
before giving up.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..runtime.budget import (
    Budget,
    BudgetExhausted,
    ExhaustionReason,
    ResourceReport,
    SolverFault,
)
from .bitblast import BitBlaster
from .intervals import BoundsEnv, Interval
from .model import Model
from .sat.cdcl import CDCLConfig, CDCLSolver, SatResult, SatStats
from .sorts import BOOL
from .terms import TRUE, Term, evaluate, free_vars, mk_and

if TYPE_CHECKING:
    from ..runtime.chaos import ChaosMonkey
    from ..runtime.portfolio import EscalationPolicy


class CheckResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "CheckResult is not a boolean; compare against CheckResult.SAT"
        )


@dataclass
class SolverStats:
    """Aggregate statistics from the last ``check()`` call."""

    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    attempts: int = 1
    sat: SatStats = field(default_factory=SatStats)


class SmtSolver:
    """SMT solver for quantifier-free bounded-integer/boolean formulas."""

    # Installed by repro.runtime.chaos.inject_faults for fault testing.
    _chaos: Optional["ChaosMonkey"] = None

    def __init__(
        self,
        sat_config: Optional[CDCLConfig] = None,
        default_bounds: Interval = Interval(-(1 << 15), (1 << 15) - 1),
        validate_models: bool = True,
        simplify_terms: bool = False,
        budget: Optional[Budget] = None,
        escalation: Optional["EscalationPolicy"] = None,
    ):
        self.sat_config = sat_config
        self.validate_models = validate_models
        self.simplify_terms = simplify_terms
        self.budget = budget
        self.escalation = escalation
        self._bounds = BoundsEnv(default=default_bounds)
        self._stack: list[list[Term]] = [[]]
        self._model: Optional[Model] = None
        self._last_result: Optional[CheckResult] = None
        self.last_report: Optional[ResourceReport] = None
        self.stats = SolverStats()

    # ----- assertions -------------------------------------------------------

    def add(self, *formulas: Term) -> None:
        """Assert one or more boolean formulas."""
        for f in formulas:
            if not isinstance(f, Term) or f.sort is not BOOL:
                raise TypeError(f"can only assert Bool terms, got {f!r}")
            self._stack[-1].append(f)

    def set_bounds(self, var: Union[Term, str], lo: int, hi: int) -> None:
        """Declare the interval of an integer variable.

        Tighter bounds mean narrower bit-vectors and faster solving; any
        variable without declared bounds uses the solver default.
        """
        name = var.name if isinstance(var, Term) else var
        self._bounds.set(name, lo, hi)

    def assertions(self) -> list[Term]:
        return [f for frame in self._stack for f in frame]

    # ----- scopes --------------------------------------------------------------

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("pop without matching push")
        self._stack.pop()

    # ----- solving ---------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the asserted formulas (+ assumptions).

        Never hangs under a budget: the encode and search phases poll it
        cooperatively, and exhaustion yields UNKNOWN with
        :attr:`last_report` describing the spend.  Timing stats are
        recorded even for exhausted runs.
        """
        self._model = None
        self._last_result = None
        self.last_report = None
        formulas = self.assertions() + [
            a for a in assumptions if a is not TRUE
        ]
        for a in assumptions:
            if a.sort is not BOOL:
                raise TypeError("assumptions must be Bool terms")

        if self.budget is not None:
            self.budget.start()
            self.budget.charge_solver_call()
            reason = self.budget.exhausted()
            if reason is not None:
                return self._exhausted(
                    self.budget.report(reason, "refused before encoding"),
                    SolverStats(),
                )

        monkey = type(self)._chaos
        if monkey is not None:
            # May sleep or raise InjectedFault; "unknown" short-circuits.
            if monkey.intercept() == "unknown":
                report = ResourceReport(
                    reason=ExhaustionReason.INJECTED,
                    message="chaos harness injected UNKNOWN",
                )
                return self._exhausted(report, SolverStats())
            # An injected delay may have consumed the deadline.
            if self.budget is not None:
                reason = self.budget.exhausted()
                if reason is not None:
                    return self._exhausted(
                        self.budget.report(reason, "refused before encoding"),
                        SolverStats(),
                    )

        t0 = time.perf_counter()
        original_formulas = formulas
        if self.simplify_terms:
            from .simplify import simplify

            formulas = [simplify(f) for f in formulas]
        blaster = BitBlaster(bounds=self._bounds, budget=self.budget)
        try:
            for f in formulas:
                blaster.assert_formula(f)
        except BudgetExhausted as exc:
            return self._exhausted(
                exc.report,
                SolverStats(
                    encode_seconds=time.perf_counter() - t0,
                    cnf_vars=blaster.cnf.num_vars,
                    cnf_clauses=len(blaster.cnf.clauses),
                ),
            )
        t1 = time.perf_counter()

        result, sat, attempts = self._solve_with_escalation(blaster)
        t2 = time.perf_counter()

        self.stats = SolverStats(
            encode_seconds=t1 - t0,
            solve_seconds=t2 - t1,
            cnf_vars=blaster.cnf.num_vars,
            cnf_clauses=len(blaster.cnf.clauses),
            attempts=attempts,
            sat=sat.stats,
        )

        if result is SatResult.UNKNOWN:
            self._last_result = CheckResult.UNKNOWN
            self.last_report = self._unknown_report(sat, attempts)
            return CheckResult.UNKNOWN
        if result is SatResult.UNSAT:
            self._last_result = CheckResult.UNSAT
            return CheckResult.UNSAT

        assignment = blaster.varmap.decode(sat.model())
        model = Model(assignment)
        if self.validate_models:
            # Validate against the *original* terms: this also checks the
            # simplifier preserved semantics on this model.
            self._validate(original_formulas, model)
        self._model = model
        self._last_result = CheckResult.SAT
        return CheckResult.SAT

    def _solve_with_escalation(
        self, blaster: BitBlaster
    ) -> tuple[SatResult, CDCLSolver, int]:
        """Run CDCL, re-running retryable UNKNOWNs per the portfolio.

        Only a per-call conflict-cap UNKNOWN is retried (with a varied
        configuration on the same CNF); a hard budget exhaustion —
        deadline, cumulative caps, cancellation — always stops the
        ladder immediately.
        """
        configs: list[Optional[CDCLConfig]] = [self.sat_config]
        if self.escalation is not None:
            configs.extend(self.escalation.ladder(self.sat_config))
        attempts = 0
        result = SatResult.UNKNOWN
        sat = CDCLSolver(0)
        for config in configs:
            attempts += 1
            sat = CDCLSolver(blaster.cnf.num_vars, config, budget=self.budget)
            try:
                ok = sat.add_cnf(blaster.cnf)
            except BudgetExhausted as exc:
                sat.exhaust_report = exc.report
                return SatResult.UNKNOWN, sat, attempts
            result = sat.solve(budget=self.budget) if ok else SatResult.UNSAT
            if result is not SatResult.UNKNOWN:
                break
            if sat.exhaust_report is not None:
                break  # hard budget exhaustion: escalating would be futile
        return result, sat, attempts

    def _unknown_report(self, sat: CDCLSolver, attempts: int) -> ResourceReport:
        if sat.exhaust_report is not None:
            report = sat.exhaust_report
            report.attempts = attempts
            return report
        # Per-call conflict cap (CDCLConfig.max_conflicts), no Budget.
        max_conflicts = (
            self.sat_config.max_conflicts if self.sat_config else None
        )
        return ResourceReport(
            reason=ExhaustionReason.CONFLICTS,
            message="per-call conflict cap (CDCLConfig.max_conflicts)",
            conflicts=sat.stats.conflicts,
            max_conflicts=max_conflicts,
            solver_calls=self.budget.solver_calls if self.budget else 1,
            attempts=attempts,
        )

    def _exhausted(self, report: ResourceReport,
                   stats: SolverStats) -> CheckResult:
        self.stats = stats
        self.last_report = report
        self._last_result = CheckResult.UNKNOWN
        return CheckResult.UNKNOWN

    def _validate(self, formulas: Sequence[Term], model: Model) -> None:
        """Cross-check the decoded model against the original terms.

        This guards the whole pipeline: if bit-blasting or the SAT solver
        mis-translated anything, evaluation of the *source* terms catches it.
        """
        for f in formulas:
            if model.eval(f) is not True:
                raise AssertionError(
                    f"internal error: model does not satisfy formula {f!r}"
                )

    def model(self) -> Model:
        if self._model is None:
            if self._last_result is CheckResult.UNKNOWN:
                why = (
                    f": {self.last_report.reason.value}"
                    if self.last_report is not None else ""
                )
                raise RuntimeError(
                    "model() is unavailable: the last check() returned"
                    f" UNKNOWN{why}; no (stale) model is retained"
                )
            raise RuntimeError("model() is only available after a SAT check()")
        return self._model


def governed_check(
    solver: SmtSolver, *assumptions: Term
) -> tuple[CheckResult, Optional[ResourceReport]]:
    """``solver.check()`` with solver faults degraded to UNKNOWN.

    The back ends' failure-isolation primitive: a budget exhaustion or
    an (injected) :class:`SolverFault` becomes ``(UNKNOWN, report)`` for
    this one query instead of aborting the whole analysis.  Genuine
    bugs (any other exception) still propagate.
    """
    try:
        result = solver.check(*assumptions)
    except BudgetExhausted as exc:
        return CheckResult.UNKNOWN, exc.report
    except SolverFault as exc:
        return CheckResult.UNKNOWN, ResourceReport(
            reason=ExhaustionReason.FAULT, message=str(exc)
        )
    return result, solver.last_report


def is_satisfiable(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
                   **solver_kwargs) -> bool:
    """Convenience one-shot satisfiability test."""
    solver = SmtSolver(**solver_kwargs)
    for name, (lo, hi) in (bounds or {}).items():
        solver.set_bounds(name, lo, hi)
    solver.add(formula)
    result = solver.check()
    if result is CheckResult.UNKNOWN:
        raise RuntimeError("solver returned unknown")
    return result is CheckResult.SAT


def prove(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
          **solver_kwargs) -> bool:
    """Validity check: True iff ``formula`` holds for all bounded assignments."""
    from .terms import mk_not

    return not is_satisfiable(mk_not(formula), bounds, **solver_kwargs)
