"""The user-facing SMT solver: the repo's stand-in for Z3.

:class:`SmtSolver` exposes the familiar assert/check/model/push/pop
interface over the pipeline *terms → intervals → bit-blasting → CDCL*.
Because Buffy's fragment is bounded integers + booleans, this pipeline
is a complete decision procedure (see DESIGN.md, substitution table).

Example::

    solver = SmtSolver()
    x = mk_int_var("x")
    solver.set_bounds("x", 0, 10)
    solver.add(x * x <= mk_int(16), x >= mk_int(3))
    assert solver.check() is CheckResult.SAT
    assert solver.model()[x] in (3, 4)

Resource governance: construct with a :class:`repro.runtime.Budget`
and every phase of ``check()`` — encoding and search — becomes
cancellable; an exhausted run answers :attr:`CheckResult.UNKNOWN` with
:attr:`SmtSolver.last_report` populated instead of hanging or raising.
An optional :class:`repro.runtime.EscalationPolicy` retries retryable
UNKNOWNs (per-call conflict caps) with varied CDCL configurations
before giving up.

The solving engine (:mod:`repro.engine`) adds three opt-in modes under
this same facade:

* ``parallelism=N`` (or ``REPRO_JOBS=N``) races the escalation ladder's
  configurations concurrently in a shared process pool — first SAT or
  UNSAT wins, losers are cancelled.  Verdicts are deterministic (every
  configuration decides the same theory); models and timings may vary.
* ``cache=`` consults a content-addressed result cache *before*
  encoding; identical (formulas, bounds) queries answer in microseconds.
* ``incremental=True`` keeps one bit-blasted CNF and one CDCL solver
  alive across ``check()`` calls: assumptions become SAT-level
  assumption literals, push/pop frames become activation literals, and
  learned clauses survive — the mode `DafnyBackend` and Houdini use to
  discharge many near-identical queries against one shared encoding.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..obs import METRICS, TRACER
from ..runtime.budget import (
    Budget,
    BudgetExhausted,
    ExhaustionReason,
    ResourceReport,
    SolverFault,
)
from .bitblast import BitBlaster
from .intervals import BoundsEnv, Interval
from .model import Model
from .sat.cdcl import CDCLConfig, CDCLSolver, SatResult, SatStats
from .sorts import BOOL
from .terms import TRUE, Term, evaluate, free_vars, mk_and

if TYPE_CHECKING:
    from ..engine.cache import ResultCache
    from ..runtime.chaos import ChaosMonkey
    from ..runtime.portfolio import EscalationPolicy


class CheckResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "CheckResult is not a boolean; compare against CheckResult.SAT"
        )


@dataclass
class SolverStats:
    """Aggregate statistics from the last ``check()`` call.

    ``sat`` is always the *per-call* view — on an incremental session it
    is the delta attributable to this check, not the session's running
    totals.  ``sat_lifetime`` carries the cumulative counters of the
    underlying CDCL solver (identical to ``sat`` on one-shot paths).
    """

    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    attempts: int = 1
    sat: SatStats = field(default_factory=SatStats)
    sat_lifetime: SatStats = field(default_factory=SatStats)
    cache_hit: bool = False


@dataclass
class _SolveOutcome:
    """Internal: what the (sequential or parallel) search produced."""

    result: SatResult
    model: Optional[list[bool]] = None
    stats: SatStats = field(default_factory=SatStats)
    exhaust_report: Optional[ResourceReport] = None
    attempts: int = 1


class _IncFrame:
    """Bookkeeping for one assertion-stack frame in incremental mode."""

    __slots__ = ("act", "encoded")

    def __init__(self, act: Optional[int]):
        self.act = act      # activation literal; None for the root frame
        self.encoded = 0    # formulas of this frame already encoded


class _IncrementalSession:
    """One live (BitBlaster, CDCLSolver) pair reused across checks.

    Push frames get an *activation literal*: every formula ``f`` of the
    frame is encoded as the guard clause ``(-act ∨ lit(f))`` and ``act``
    is assumed during solves.  Popping retires the frame by permanently
    asserting ``-act`` — its clauses become vacuous, while everything
    learned from them stays valid (learnt clauses can only mention
    ``-act``, which is now true).
    """

    def __init__(self, bounds: BoundsEnv, config: Optional[CDCLConfig],
                 budget: Optional[Budget]):
        self.blaster = BitBlaster(bounds=bounds, budget=budget)
        self.sat = CDCLSolver(0, config, budget=budget)
        self.frames: list[_IncFrame] = [_IncFrame(act=None)]
        self.retired_acts: list[int] = []
        self.loaded_clauses = 0
        self.budget = budget

    def retire_to(self, depth: int) -> None:
        """Drop frames beyond ``depth`` (called from ``pop()``)."""
        while len(self.frames) > depth:
            frame = self.frames.pop()
            if frame.act is not None:
                self.retired_acts.append(frame.act)
                if METRICS.enabled:
                    METRICS.counter_inc(
                        "repro_incremental_frames_retired_total")

    def sync(self, stack: Sequence[Sequence[Term]], assumptions: Sequence[Term],
             simplify_terms: bool) -> list[int]:
        """Encode everything new; return the assumption literals to solve under."""
        blaster = self.blaster
        for act in self.retired_acts:
            blaster.cnf.add_clause([-act])
        self.retired_acts.clear()
        while len(self.frames) < len(stack):
            self.frames.append(_IncFrame(act=blaster.cnf.new_var()))
            if METRICS.enabled:
                METRICS.counter_inc("repro_incremental_frames_pushed_total")
        if simplify_terms:
            from .simplify import simplify
        else:
            simplify = None
        for frame, formulas in zip(self.frames, stack):
            while frame.encoded < len(formulas):
                f = formulas[frame.encoded]
                if simplify is not None:
                    f = simplify(f)
                if frame.act is None:
                    blaster.assert_formula(f)
                else:
                    blaster.cnf.add_clause([-frame.act, blaster.literal_for(f)])
                frame.encoded += 1
        lits = [frame.act for frame in self.frames if frame.act is not None]
        for a in assumptions:
            f = simplify(a) if simplify is not None else a
            lits.append(blaster.literal_for(f))
        self._load_clauses()
        return lits

    def _load_clauses(self) -> None:
        """Feed clauses added since the last solve into the live CDCL."""
        sat = self.sat
        sat.backtrack_to_root()
        while sat.num_vars < self.blaster.cnf.num_vars:
            sat.new_var()
        clauses = self.blaster.cnf.clauses
        i = self.loaded_clauses
        while i < len(clauses):
            if self.budget is not None and (i & 0xFFF) == 0xFFF:
                self.budget.checkpoint("loading CNF into CDCL (incremental)")
            sat.add_clause(clauses[i])  # False only on root-level unsat
            i += 1
            self.loaded_clauses = i

    @property
    def root_unsat(self) -> bool:
        return not self.sat._ok


class SmtSolver:
    """SMT solver for quantifier-free bounded-integer/boolean formulas."""

    # Installed by repro.runtime.chaos.inject_faults for fault testing.
    # Read through ``self._chaos`` so an instance-level monkey (threaded
    # in by a back end's ``chaos=`` parameter) overrides the class hook.
    _chaos: Optional["ChaosMonkey"] = None

    def __init__(
        self,
        sat_config: Optional[CDCLConfig] = None,
        default_bounds: Interval = Interval(-(1 << 15), (1 << 15) - 1),
        validate_models: bool = True,
        simplify_terms: bool = False,
        budget: Optional[Budget] = None,
        escalation: Optional["EscalationPolicy"] = None,
        parallelism: Optional[int] = None,
        cache: Union["ResultCache", None, bool] = None,
        incremental: bool = False,
    ):
        self.sat_config = sat_config
        self.validate_models = validate_models
        self.simplify_terms = simplify_terms
        self.budget = budget
        self.escalation = escalation
        # None defers to REPRO_JOBS at check() time; an int pins it.
        self.parallelism = parallelism
        # None defers to REPRO_CACHE/REPRO_CACHE_DIR; False disables;
        # a ResultCache instance is used directly.
        self.cache = cache
        self.incremental = incremental
        self._bounds = BoundsEnv(default=default_bounds)
        self._stack: list[list[Term]] = [[]]
        self._inc: Optional[_IncrementalSession] = None
        self._model: Optional[Model] = None
        self._last_result: Optional[CheckResult] = None
        self.last_report: Optional[ResourceReport] = None
        self.stats = SolverStats()
        # Portfolio slots cancelled during the most recent parallel solve;
        # folded into resource reports so timeouts say what was tried.
        self._last_cancelled = 0

    # ----- assertions -------------------------------------------------------

    def add(self, *formulas: Term) -> None:
        """Assert one or more boolean formulas."""
        for f in formulas:
            if not isinstance(f, Term) or f.sort is not BOOL:
                raise TypeError(f"can only assert Bool terms, got {f!r}")
            self._stack[-1].append(f)

    def set_bounds(self, var: Union[Term, str], lo: int, hi: int) -> None:
        """Declare the interval of an integer variable.

        Tighter bounds mean narrower bit-vectors and faster solving; any
        variable without declared bounds uses the solver default.
        """
        name = var.name if isinstance(var, Term) else var
        if (
            self._inc is not None
            and name in self._inc.blaster.varmap.int_vars
            and self._bounds.get(name) != Interval(lo, hi)
        ):
            raise RuntimeError(
                f"cannot change bounds of {name!r}: it is already encoded"
                " in this incremental session"
            )
        self._bounds.set(name, lo, hi)

    def assertions(self) -> list[Term]:
        return [f for frame in self._stack for f in frame]

    # ----- scopes --------------------------------------------------------------

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("pop without matching push")
        self._stack.pop()
        if self._inc is not None:
            self._inc.retire_to(len(self._stack))

    # ----- engine knobs ---------------------------------------------------------

    def _effective_jobs(self) -> int:
        if self.parallelism is not None:
            return max(1, self.parallelism)
        from ..engine.parallel import default_jobs

        return default_jobs()

    def _effective_cache(self) -> Optional["ResultCache"]:
        from ..engine.cache import resolve_cache

        return resolve_cache(self.cache)

    # ----- solving ---------------------------------------------------------------

    def check(self, *assumptions: Term) -> CheckResult:
        """Decide satisfiability of the asserted formulas (+ assumptions).

        Never hangs under a budget: the encode and search phases poll it
        cooperatively, and exhaustion yields UNKNOWN with
        :attr:`last_report` describing the spend.  Timing stats are
        recorded even for exhausted runs.
        """
        self._model = None
        self._last_result = None
        self.last_report = None
        formulas = self.assertions() + [
            a for a in assumptions if a is not TRUE
        ]
        for a in assumptions:
            if a.sort is not BOOL:
                raise TypeError("assumptions must be Bool terms")

        if self.budget is not None:
            self.budget.start()
            self.budget.charge_solver_call()
            reason = self.budget.exhausted()
            if reason is not None:
                return self._exhausted(
                    self.budget.report(reason, "refused before encoding"),
                    SolverStats(),
                )

        monkey = self._chaos
        if monkey is not None:
            # May sleep or raise InjectedFault; "unknown" short-circuits.
            if monkey.intercept() == "unknown":
                report = ResourceReport(
                    reason=ExhaustionReason.INJECTED,
                    message="chaos harness injected UNKNOWN",
                )
                return self._exhausted(report, SolverStats())
            # An injected delay may have consumed the deadline.
            if self.budget is not None:
                reason = self.budget.exhausted()
                if reason is not None:
                    return self._exhausted(
                        self.budget.report(reason, "refused before encoding"),
                        SolverStats(),
                    )

        path = "incremental" if self.incremental else "oneshot"
        if METRICS.enabled:
            METRICS.counter_inc("repro_solver_checks_total", path=path)
        with TRACER.span("check", path=path):
            if self.incremental:
                return self._check_incremental(list(assumptions))
            return self._check_oneshot(formulas)

    # ----- one-shot path (with cache and parallel portfolio) -------------------

    def _check_oneshot(self, formulas: list[Term]) -> CheckResult:
        cache = self._effective_cache()
        cache_key: Optional[str] = None
        if cache is not None:
            from ..engine.cache import formula_fingerprint

            cache_key = formula_fingerprint(formulas, self._bounds)
            hit = cache.get(cache_key)
            if hit is not None:
                result = self._replay_cached(formulas, hit)
                if result is not None:
                    return result

        t0 = time.perf_counter()
        original_formulas = formulas
        if self.simplify_terms:
            from .simplify import simplify

            formulas = [simplify(f) for f in formulas]
        blaster = BitBlaster(bounds=self._bounds, budget=self.budget)
        try:
            with TRACER.span("bitblast", formulas=len(formulas)) as sp:
                for f in formulas:
                    blaster.assert_formula(f)
                sp.set("cnf_vars", blaster.cnf.num_vars)
                sp.set("cnf_clauses", len(blaster.cnf.clauses))
        except BudgetExhausted as exc:
            return self._exhausted(
                exc.report,
                SolverStats(
                    encode_seconds=time.perf_counter() - t0,
                    cnf_vars=blaster.cnf.num_vars,
                    cnf_clauses=len(blaster.cnf.clauses),
                ),
            )
        t1 = time.perf_counter()

        outcome = self._solve_with_escalation(blaster)
        t2 = time.perf_counter()

        self.stats = SolverStats(
            encode_seconds=t1 - t0,
            solve_seconds=t2 - t1,
            cnf_vars=blaster.cnf.num_vars,
            cnf_clauses=len(blaster.cnf.clauses),
            attempts=outcome.attempts,
            sat=outcome.stats,
            sat_lifetime=outcome.stats,  # one-shot: per-call == lifetime
        )

        if outcome.result is SatResult.UNKNOWN:
            self._last_result = CheckResult.UNKNOWN
            self.last_report = self._unknown_report(outcome)
            return CheckResult.UNKNOWN
        if outcome.result is SatResult.UNSAT:
            if cache is not None and cache_key is not None:
                self._cache_store(cache, cache_key, "unsat", None)
            self._last_result = CheckResult.UNSAT
            return CheckResult.UNSAT

        assert outcome.model is not None
        assignment = blaster.varmap.decode(outcome.model)
        model = Model(assignment)
        if self.validate_models:
            # Validate against the *original* terms: this also checks the
            # simplifier preserved semantics on this model.
            self._validate(original_formulas, model)
        if cache is not None and cache_key is not None:
            self._cache_store(cache, cache_key, "sat", dict(assignment))
        self._model = model
        self._last_result = CheckResult.SAT
        return CheckResult.SAT

    def _replay_cached(self, formulas: list[Term],
                       hit) -> Optional[CheckResult]:
        """Answer from a cache entry, or None when the entry is unusable.

        SAT entries are always re-validated by evaluating the query's
        own terms under the stored assignment, so a stale or corrupted
        disk entry degrades to a miss, never to a wrong answer.
        """
        t0 = time.perf_counter()
        if hit.verdict == "unsat":
            self.stats = SolverStats(
                solve_seconds=time.perf_counter() - t0,
                cnf_vars=hit.cnf_vars,
                cnf_clauses=hit.cnf_clauses,
                cache_hit=True,
            )
            self._last_result = CheckResult.UNSAT
            return CheckResult.UNSAT
        assignment = hit.assignment or {}
        model = Model(assignment)
        for f in formulas:
            if model.eval(f) is not True:
                return None  # corrupt/colliding entry: fall through to solve
        self.stats = SolverStats(
            solve_seconds=time.perf_counter() - t0,
            cnf_vars=hit.cnf_vars,
            cnf_clauses=hit.cnf_clauses,
            cache_hit=True,
        )
        self._model = model
        self._last_result = CheckResult.SAT
        return CheckResult.SAT

    def _cache_store(self, cache, key: str, verdict: str,
                     assignment: Optional[dict]) -> None:
        from ..engine.cache import CacheEntry

        cache.put(key, CacheEntry(
            verdict=verdict,
            assignment=assignment,
            cnf_vars=self.stats.cnf_vars,
            cnf_clauses=self.stats.cnf_clauses,
        ))

    def _solve_with_escalation(self, blaster: BitBlaster) -> _SolveOutcome:
        """Run CDCL over the escalation ladder, sequentially or in parallel.

        Only a per-call conflict-cap UNKNOWN is retried (with a varied
        configuration on the same CNF); a hard budget exhaustion —
        deadline, cumulative caps, cancellation — always stops the
        ladder immediately.  With ``parallelism > 1`` the whole ladder
        races concurrently in the shared worker pool instead; the pool
        falling over (unlikely) falls back to the sequential climb.
        """
        configs: list[Optional[CDCLConfig]] = [self.sat_config]
        if self.escalation is not None:
            configs.extend(
                self.escalation.ladder(self.sat_config, self.budget)
            )
        if self._effective_jobs() > 1:
            try:
                return self._solve_parallel(blaster, configs)
            except Exception as exc:
                from ..engine.parallel import PoolUnavailable

                if not isinstance(exc, PoolUnavailable):
                    raise
                # fall through to the sequential ladder

        attempts = 0
        outcome = _SolveOutcome(SatResult.UNKNOWN)
        last_seconds = 0.0
        for config in configs:
            if attempts > 0 and not self.escalation.can_afford(
                self.budget, last_seconds
            ):
                break  # the next (larger) rung cannot fit in the deadline
            attempts += 1
            t0 = time.perf_counter()
            with TRACER.span("portfolio-rung", rung=attempts,
                             mode="sequential") as rung_span:
                sat = CDCLSolver(
                    blaster.cnf.num_vars, config, budget=self.budget
                )
                try:
                    ok = sat.add_cnf(blaster.cnf)
                except BudgetExhausted as exc:
                    return _SolveOutcome(
                        SatResult.UNKNOWN, stats=sat.stats,
                        exhaust_report=exc.report, attempts=attempts,
                    )
                with TRACER.span("cdcl", rung=attempts) as cdcl_span:
                    result = (
                        sat.solve(budget=self.budget) if ok
                        else SatResult.UNSAT
                    )
                    cdcl_span.set("result", result.value)
                    cdcl_span.set("conflicts", sat.last_stats.conflicts)
                rung_span.set("result", result.value)
            last_seconds = time.perf_counter() - t0
            outcome = _SolveOutcome(
                result,
                model=sat.model() if result is SatResult.SAT else None,
                stats=sat.stats,
                exhaust_report=sat.exhaust_report,
                attempts=attempts,
            )
            if result is not SatResult.UNKNOWN:
                break
            if sat.exhaust_report is not None:
                break  # hard budget exhaustion: escalating would be futile
        return outcome

    def _solve_parallel(
        self, blaster: BitBlaster, configs: list[Optional[CDCLConfig]]
    ) -> _SolveOutcome:
        from ..engine.parallel import get_pool

        pool = get_pool(self._effective_jobs())
        slot, attempts = pool.solve_portfolio(
            blaster.cnf, configs, budget=self.budget
        )
        self._last_cancelled = pool.last_cancelled
        if slot.error is not None or slot.reason == "fault":
            raise SolverFault(
                f"portfolio worker failed: {slot.error or 'unknown fault'}"
            )
        exhaust_report: Optional[ResourceReport] = None
        if slot.verdict is SatResult.UNKNOWN and slot.reason not in (
            None, "cancelled",
        ):
            reason = ExhaustionReason(slot.reason)
            if self.budget is not None:
                exhaust_report = self.budget.report(
                    reason, "parallel portfolio", attempts=attempts
                )
            else:
                exhaust_report = ResourceReport(
                    reason=reason, message="parallel portfolio",
                    conflicts=slot.stats.conflicts, attempts=attempts,
                )
        return _SolveOutcome(
            slot.verdict,
            model=slot.model,
            stats=slot.stats,
            exhaust_report=exhaust_report,
            attempts=attempts,
        )

    # ----- incremental path -----------------------------------------------------

    def _check_incremental(self, assumptions: list[Term]) -> CheckResult:
        t0 = time.perf_counter()
        inc = self._inc
        if inc is None:
            inc = self._inc = _IncrementalSession(
                self._bounds, self.sat_config, self.budget
            )
        if METRICS.enabled:
            METRICS.counter_inc("repro_incremental_checks_total")
            # Clauses already loaded into the live CDCL solver are work
            # this check inherits instead of redoing.
            METRICS.counter_inc(
                "repro_incremental_clauses_reused_total", inc.loaded_clauses
            )
        try:
            lits = inc.sync(self._stack, assumptions, self.simplify_terms)
        except BudgetExhausted as exc:
            return self._exhausted(
                exc.report,
                SolverStats(
                    encode_seconds=time.perf_counter() - t0,
                    cnf_vars=inc.blaster.cnf.num_vars,
                    cnf_clauses=len(inc.blaster.cnf.clauses),
                ),
            )
        t1 = time.perf_counter()
        if inc.root_unsat:
            result = SatResult.UNSAT
        else:
            with TRACER.span("cdcl", path="incremental",
                             assumptions=len(lits)) as sp:
                result = inc.sat.solve(assumptions=lits, budget=self.budget)
                sp.set("result", result.value)
        t2 = time.perf_counter()
        self.stats = SolverStats(
            encode_seconds=t1 - t0,
            solve_seconds=t2 - t1,
            cnf_vars=inc.blaster.cnf.num_vars,
            cnf_clauses=len(inc.blaster.cnf.clauses),
            attempts=1,
            # Per-call delta: the session's CDCL solver lives across
            # checks, so its raw counters mix all previous queries.
            sat=inc.sat.last_stats,
            sat_lifetime=inc.sat.stats,
        )
        if result is SatResult.UNKNOWN:
            self._last_result = CheckResult.UNKNOWN
            self.last_report = self._unknown_report(_SolveOutcome(
                result, stats=inc.sat.last_stats,
                exhaust_report=inc.sat.exhaust_report,
            ))
            return CheckResult.UNKNOWN
        if result is SatResult.UNSAT:
            self._last_result = CheckResult.UNSAT
            return CheckResult.UNSAT
        assignment = inc.blaster.varmap.decode(inc.sat.model())
        model = Model(assignment)
        if self.validate_models:
            self._validate(self.assertions() + assumptions, model)
        self._model = model
        self._last_result = CheckResult.SAT
        return CheckResult.SAT

    # ----- reporting ------------------------------------------------------------

    def _unknown_report(self, outcome: _SolveOutcome) -> ResourceReport:
        if outcome.exhaust_report is not None:
            report = outcome.exhaust_report
            report.attempts = outcome.attempts
        else:
            # Per-call conflict cap (CDCLConfig.max_conflicts), no Budget.
            max_conflicts = (
                self.sat_config.max_conflicts if self.sat_config else None
            )
            report = ResourceReport(
                reason=ExhaustionReason.CONFLICTS,
                message="per-call conflict cap (CDCLConfig.max_conflicts)",
                conflicts=outcome.stats.conflicts,
                max_conflicts=max_conflicts,
                solver_calls=self.budget.solver_calls if self.budget else 1,
                attempts=outcome.attempts,
            )
        self._attach_engine_counters(report)
        return report

    def _attach_engine_counters(self, report: ResourceReport) -> None:
        """Fold engine-level telemetry into a resource report.

        Cache traffic and cancelled portfolio slots tell a ``--timeout``
        user what was tried before the solver gave up.
        """
        cache = self._effective_cache()
        if cache is not None:
            report.cache_hits = cache.stats.hits
            report.cache_misses = cache.stats.misses
        report.cancelled_slots = self._last_cancelled

    def _exhausted(self, report: ResourceReport,
                   stats: SolverStats) -> CheckResult:
        self._attach_engine_counters(report)
        self.stats = stats
        self.last_report = report
        self._last_result = CheckResult.UNKNOWN
        return CheckResult.UNKNOWN

    def _validate(self, formulas: Sequence[Term], model: Model) -> None:
        """Cross-check the decoded model against the original terms.

        This guards the whole pipeline: if bit-blasting or the SAT solver
        mis-translated anything, evaluation of the *source* terms catches it.
        """
        for f in formulas:
            if model.eval(f) is not True:
                raise AssertionError(
                    f"internal error: model does not satisfy formula {f!r}"
                )

    def model(self) -> Model:
        if self._model is None:
            if self._last_result is CheckResult.UNKNOWN:
                why = (
                    f": {self.last_report.reason.value}"
                    if self.last_report is not None else ""
                )
                raise RuntimeError(
                    "model() is unavailable: the last check() returned"
                    f" UNKNOWN{why}; no (stale) model is retained"
                )
            raise RuntimeError("model() is only available after a SAT check()")
        return self._model


def governed_check(
    solver: SmtSolver, *assumptions: Term
) -> tuple[CheckResult, Optional[ResourceReport]]:
    """``solver.check()`` with solver faults degraded to UNKNOWN.

    The back ends' failure-isolation primitive: a budget exhaustion or
    an (injected) :class:`SolverFault` becomes ``(UNKNOWN, report)`` for
    this one query instead of aborting the whole analysis.  Genuine
    bugs (any other exception) still propagate.
    """
    try:
        result = solver.check(*assumptions)
    except BudgetExhausted as exc:
        return CheckResult.UNKNOWN, exc.report
    except SolverFault as exc:
        return CheckResult.UNKNOWN, ResourceReport(
            reason=ExhaustionReason.FAULT, message=str(exc)
        )
    return result, solver.last_report


def is_satisfiable(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
                   **solver_kwargs) -> bool:
    """Convenience one-shot satisfiability test."""
    solver = SmtSolver(**solver_kwargs)
    for name, (lo, hi) in (bounds or {}).items():
        solver.set_bounds(name, lo, hi)
    solver.add(formula)
    result = solver.check()
    if result is CheckResult.UNKNOWN:
        raise RuntimeError("solver returned unknown")
    return result is CheckResult.SAT


def prove(formula: Term, bounds: Optional[dict[str, tuple[int, int]]] = None,
          **solver_kwargs) -> bool:
    """Validity check: True iff ``formula`` holds for all bounded assignments."""
    from .terms import mk_not

    return not is_satisfiable(mk_not(formula), bounds, **solver_kwargs)
