"""Models (satisfying assignments) returned by the SMT solver."""

from __future__ import annotations

from typing import Mapping, Union

from .sorts import BOOL
from .terms import Term, evaluate, free_vars


class Model:
    """A satisfying assignment over the problem variables.

    Access by variable term or name::

        model[x]          # x is a Term or a name string
        model.eval(x + y) # evaluate an arbitrary term under the model
    """

    def __init__(self, assignment: Mapping[str, Union[bool, int]]):
        self._assignment = dict(assignment)

    def __getitem__(self, key: Union[Term, str]) -> Union[bool, int]:
        name = key.name if isinstance(key, Term) else key
        return self._assignment[name]

    def get(self, key: Union[Term, str], default=None):
        name = key.name if isinstance(key, Term) else key
        return self._assignment.get(name, default)

    def __contains__(self, key: Union[Term, str]) -> bool:
        name = key.name if isinstance(key, Term) else key
        return name in self._assignment

    def eval(self, term: Term) -> Union[bool, int]:
        """Evaluate a term; unconstrained variables default to 0/False."""
        assignment = dict(self._assignment)
        for var in free_vars(term):
            if var.name not in assignment:
                assignment[var.name] = False if var.sort is BOOL else 0
        return evaluate(term, assignment)

    def as_dict(self) -> dict[str, Union[bool, int]]:
        return dict(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:
        items = ", ".join(
            f"{k}={v}" for k, v in sorted(self._assignment.items())
        )
        return f"Model({items})"
