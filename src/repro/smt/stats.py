"""The one solver-statistics schema.

Historically the SAT core (:mod:`repro.smt.sat.cdcl`) and the SMT
front end (:mod:`repro.smt.solver`) each grew their own counter
dataclass, and every consumer — ``outcome.stats``, the metrics
registry, the ``repro stats`` CLI, the portfolio workers' wire format —
picked fields ad hoc.  This module is now the single source of truth:

* :class:`SatStats` — per-search CDCL counters.  Field names double as
  the metrics family names (``repro_cdcl_<field>_total``) and the
  positional wire format for cross-process marshalling.
* :class:`SolverStats` — one ``check()``'s aggregate view: encode/solve
  timing, CNF size, escalation attempts, cache outcome, plus the
  per-call and lifetime :class:`SatStats`.

Both expose :meth:`as_dict`, the uniform flat schema that
``outcome.stats``, ``outcome.telemetry`` metrics, and ``repro stats``
all derive from.  The classes remain importable from their historical
homes (``repro.smt.sat.cdcl.SatStats``, ``repro.smt.solver.SolverStats``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Sequence


@dataclass
class SatStats:
    """Counters exposed for benchmarks, telemetry, and tests.

    Field order is part of the cross-process wire format —
    :meth:`to_tuple`/:meth:`from_tuple` marshal these counters through
    the portfolio workers, so new fields must be appended, not
    inserted.  Field *names* are part of the metrics schema — each one
    is exported as the ``repro_cdcl_<name>_total`` counter family.
    """

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    minimized_lits: int = 0
    inprocessings: int = 0
    subsumed: int = 0
    strengthened: int = 0
    eliminated: int = 0
    vivified_lits: int = 0

    def snapshot(self) -> "SatStats":
        return SatStats(**vars(self))

    def diff(self, earlier: "SatStats") -> "SatStats":
        """Per-call view: this snapshot minus an ``earlier`` one."""
        return SatStats(**{
            k: v - getattr(earlier, k) for k, v in vars(self).items()
        })

    def as_dict(self) -> dict[str, int]:
        """Flat name→count mapping (the uniform telemetry schema)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_tuple(self) -> tuple:
        """Positional wire form (field order) for worker marshalling."""
        return tuple(getattr(self, f.name) for f in fields(self))

    @classmethod
    def from_tuple(cls, values: Sequence) -> "SatStats":
        """Inverse of :meth:`to_tuple`; tolerates shorter (older) tuples."""
        names = [f.name for f in fields(cls)]
        return cls(**dict(zip(names, values)))


@dataclass
class SolverStats:
    """Aggregate statistics from the last ``check()`` call.

    ``sat`` is always the *per-call* view — on an incremental session it
    is the delta attributable to this check, not the session's running
    totals.  ``sat_lifetime`` carries the cumulative counters of the
    underlying CDCL solver (identical to ``sat`` on one-shot paths).
    """

    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    attempts: int = 1
    sat: SatStats = field(default_factory=SatStats)
    sat_lifetime: SatStats = field(default_factory=SatStats)
    cache_hit: bool = False

    def as_dict(self) -> dict[str, object]:
        """The uniform flat schema consumed by ``outcome.stats``.

        Scalar fields appear under their own names; the per-call SAT
        counters are inlined (``conflicts``, ``decisions``, ...) so
        consumers never reach through the nested dataclass.
        """
        out: dict[str, object] = {
            "encode_seconds": self.encode_seconds,
            "solve_seconds": self.solve_seconds,
            "cnf_vars": self.cnf_vars,
            "cnf_clauses": self.cnf_clauses,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
        }
        out.update(self.sat.as_dict())
        return out
