"""A conflict-driven clause-learning (CDCL) SAT solver on a flat clause arena.

This is the decision engine at the bottom of the reproduction's SMT
stack (the paper uses Z3; we build the solver ourselves).  The search
follows MiniSat/Glucose; the storage layer does not:

* clauses live in one flat literal arena (``_ar``) addressed by integer
  clause ids with parallel header lists (offset, size, learnt flag,
  LBD, activity, dead flag) — no per-clause Python objects,
* truth values are literal-indexed (slot ``2v`` for ``v``, ``2v+1`` for
  ``-v``), so the hot loops never call ``abs()`` or flip signs,
* watch lists are flat interleaved ``[cid, blocker, cid, blocker, ...]``
  lists keyed by literal index,
* binary clauses bypass the watch machinery entirely through direct
  implication lists ``[implied_lit, cid, ...]``,
* learned-clause DB reduction is LBD (glue) based with arena
  compaction, not activity based,
* inprocessing runs between restarts: root-level clause strengthening,
  subsumption/self-subsumption, clause vivification, and SatELite-style
  bounded variable elimination (with model extension and on-demand
  variable reintroduction for incremental sessions).

Search features: two-watched-literal propagation, first-UIP conflict
analysis with clause minimization, VSIDS with phase saving, Luby
restarts, solving under assumptions with unsat-core extraction.
Individual features can be switched off through :class:`CDCLConfig`,
which the SAT ablation benchmark (experiment A2 in DESIGN.md) uses.

Proof logging stays sound under inprocessing because every derived
clause (resolvent, strengthened clause, vivified clause) is a reverse
unit propagation (RUP) consequence of clauses alive when it is logged,
and the solver never logs deletions for irredundant clauses — the
checker keeping extra clauses can only make *more* additions pass, so
deletions remain a performance matter, never a soundness one.
"""

from __future__ import annotations

import enum
import heapq
import time
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from ..cnf import CNF
from ..stats import SatStats
from ...obs import METRICS
from ...obs.progress import BEACON

if TYPE_CHECKING:  # avoid a runtime ↔ smt import cycle; Budget is duck-typed
    from ...runtime.budget import Budget, ResourceReport
    from ...trust.proof import ProofLog


class SatResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


#: One-line help per public tuning knob, surfaced by ``--solver-opt help``.
CDCL_OPTION_HELP = {
    "use_vsids": "VSIDS decision heuristic (else first unassigned var)",
    "use_restarts": "Luby restarts",
    "use_phase_saving": "remember last polarity per variable",
    "use_minimization": "learned-clause self-subsumption minimization",
    "use_inprocessing": "inprocessing between restarts (master switch)",
    "use_subsume": "subsumption/self-subsumption during inprocessing",
    "use_vivify": "clause vivification during inprocessing",
    "use_elim": "bounded variable elimination during inprocessing",
    "restart_base": "conflicts per Luby restart unit",
    "var_decay": "VSIDS activity decay factor",
    "clause_decay": "learned-clause activity decay factor",
    "max_learnts_frac": "legacy activity-reduction knob (unused)",
    "max_conflicts": "per-solve conflict cap (none = unlimited)",
    "lbd_keep": "learned clauses with LBD <= this are never deleted",
    "reduce_base": "conflicts before the first DB reduction",
    "reduce_inc": "extra conflicts between successive reductions",
    "inprocess_interval": "conflicts between inprocessing rounds",
    "elim_occ_limit": "skip elimination of vars with more occurrences",
    "elim_growth": "max extra clauses an elimination may add",
    "elim_lit_limit": "skip resolvents longer than this",
    "vivify_ticks": "propagation budget per vivification round",
}


@dataclass
class CDCLConfig:
    """Feature switches and tuning constants for :class:`CDCLSolver`.

    Every field is a public tuning knob: :meth:`from_options` builds a
    config from ``key=value`` strings (the CLI's ``--solver-opt``) and
    :func:`repro.analyze`'s ``solver_config=`` accepts either an
    instance or such a mapping.
    """

    use_vsids: bool = True
    use_restarts: bool = True
    use_phase_saving: bool = True
    use_minimization: bool = True
    use_inprocessing: bool = True
    use_subsume: bool = True
    use_vivify: bool = True
    use_elim: bool = True
    restart_base: int = 200
    var_decay: float = 0.95
    clause_decay: float = 0.999
    # Retained for one release of config compatibility: the arena solver
    # reduces by LBD on a conflict schedule, so this knob is ignored.
    max_learnts_frac: float = 0.35
    max_conflicts: Optional[int] = None
    lbd_keep: int = 2
    reduce_base: int = 1000
    reduce_inc: int = 300
    inprocess_interval: int = 1000
    elim_occ_limit: int = 10
    elim_growth: int = 0
    elim_lit_limit: int = 24
    vivify_ticks: int = 120_000

    @classmethod
    def option_names(cls) -> list[str]:
        return [f.name for f in fields(cls)]

    @classmethod
    def from_options(
        cls,
        options: Mapping[str, object],
        base: Optional["CDCLConfig"] = None,
    ) -> "CDCLConfig":
        """Build a config from a ``{name: value}`` mapping.

        Values may be strings (as parsed from ``--solver-opt key=value``)
        or already-typed Python values.  Unknown names raise
        :class:`ValueError` listing the valid knobs; boolean fields
        accept ``1/0, true/false, yes/no, on/off``.
        """
        cfg = base if base is not None else cls()
        types = {f.name: str(f.type) for f in fields(cls)}
        updates = {}
        for key, raw in options.items():
            name = key.strip().replace("-", "_")
            if name not in types:
                raise ValueError(
                    f"unknown solver option {key!r}; valid options: "
                    + ", ".join(sorted(types))
                )
            updates[name] = _coerce_option(name, types[name], raw)
        return replace(cfg, **updates)


def _coerce_option(name: str, type_str: str, raw: object):
    """Coerce one ``--solver-opt`` value to its CDCLConfig field type."""
    if not isinstance(raw, str):
        return raw
    text = raw.strip().lower()
    if "bool" in type_str:
        if text in ("1", "true", "yes", "on"):
            return True
        if text in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"solver option {name!r} expects a boolean, got {raw!r}")
    if "Optional[int]" in type_str or "int | None" in type_str:
        if text in ("none", "null", ""):
            return None
        return int(text)
    try:
        if "float" in type_str:
            return float(text)
        return int(text)
    except ValueError as exc:
        raise ValueError(
            f"solver option {name!r} expects {type_str}, got {raw!r}"
        ) from exc


# SatStats lives in repro.smt.stats (the unified schema); re-exported
# here because this was its historical home.


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    x = i - 1  # 0-based position
    size = 1
    seq = 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x = x % size
    return 1 << seq


_UNASSIGNED = 0


class CDCLSolver:
    """CDCL SAT solver over DIMACS-style literals.

    Typical use::

        solver = CDCLSolver(num_vars)
        solver.add_clause([1, -2])
        result = solver.solve()
        if result is SatResult.SAT:
            model = solver.model()   # model[v] in {True, False}, 1-indexed

    Internally a literal ``l`` is addressed by its *index*
    ``2v`` (positive) or ``2v+1`` (negative), computed inline as
    ``(l+l) if l > 0 else (1-l-l)``; ``index ^ 1`` is the negation.
    The arena, watch/implication lists, trail, and learnt clauses all
    hold indices — signed DIMACS literals exist only at the public
    API, proof-log, and checkpoint boundaries (``index >> 1`` is the
    variable, ``index & 1`` the polarity), so the hot loops never
    branch on literal sign.
    """

    def __init__(self, num_vars: int = 0, config: Optional[CDCLConfig] = None,
                 budget: Optional["Budget"] = None,
                 proof: Optional["ProofLog"] = None):
        self.config = config or CDCLConfig()
        self.budget = budget
        # Optional DRAT-style proof log: every learned/derived clause,
        # every learned-clause deletion, and the empty clause on root
        # unsatisfiability.  Checked by repro.trust.drat independently.
        self.proof = proof
        # Populated when solve() answers UNKNOWN: a ResourceReport when a
        # Budget ran out, None when only the per-call conflict cap hit
        # (the retryable case the escalation portfolio targets).
        self.exhaust_report: Optional["ResourceReport"] = None
        # `stats` accumulates over the solver's lifetime (incremental
        # sessions reuse one solver across many solve() calls);
        # `last_stats` is the delta attributable to the most recent call.
        self.stats = SatStats()
        self.last_stats = SatStats()
        self.num_vars = 0
        # Literal-indexed truth values: slot 2v is the value of literal
        # v, slot 2v+1 of -v (+1 true, -1 false, 0 unassigned).
        self._vals: list[int] = [0, 0]
        # Per-variable state (1-indexed; slot 0 unused).
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]      # clause id, -1 = no reason
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._seen: list[int] = [0]         # analysis scratch marks
        self._eliminated: list[int] = [0]
        # Watches keyed by literal index: flat [cid, blocker, ...] — the
        # clauses to visit when that literal becomes true (they watch
        # its negation).  Binary clauses use direct implication lists
        # [implied_lit, cid, ...] instead and never enter the watches.
        self._watches: list[list[int]] = [[], []]
        self._bins: list[list[int]] = [[], []]
        # The clause arena: one flat literal buffer plus parallel header
        # lists indexed by clause id.  The two watched literals of a
        # live clause are always at arena positions start and start+1.
        self._ar: list[int] = []
        self._c_start: list[int] = []
        self._c_size: list[int] = []
        self._c_learnt: list[int] = []
        self._c_lbd: list[int] = []
        self._c_act: list[float] = []
        self._c_dead: list[int] = []
        self._free_lits = 0                 # garbage literals in the arena
        self._n_irr = 0                     # live irredundant clauses
        self._n_learnt = 0                  # live learned clauses
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._ok = True
        self._conflict_assumptions: list[int] = []
        # Max-activity heap with lazy (stale-entry) deletion.
        # _heap_act[v] is the priority of v's live heap entry (-1.0 when
        # v has none): backtrack pushes only when the activity actually
        # rose, and _decide drops entries whose stored priority no
        # longer matches — so duplicates die on first pop instead of
        # being requeued, keeping the heap near the unassigned-var count.
        self._heap: list[tuple[float, int]] = []
        self._heap_act: list[float] = [-1.0]
        # Where the next solve() resumes the Luby restart sequence.
        # 0 for fresh solvers; restore_state() advances it so a resumed
        # search continues the interrupted solve's restart schedule.
        # _restart_count mirrors the live position during _search so a
        # checkpoint taken after an UNKNOWN can serialize it.
        self._restart_resume = 0
        self._restart_count = 0
        # Learned clauses re-installed by restore_state(), for telemetry.
        self.restored_learnts = 0
        # Bounded variable elimination bookkeeping: the stack holds
        # (var, removed clauses) frames in elimination order; model()
        # extends assignments in reverse, and reintroduction replays a
        # suffix when an eliminated variable is mentioned again.
        self._elim_stack: list[tuple[int, list[list[int]]]] = []
        self._conflicts_at_reduce = 0
        self._reduce_fuel = self.config.reduce_base
        self._conflicts_at_inprocess = 0
        self._inprocessed_once = False
        self._ensure_vars(num_vars)

    # ----- problem construction -------------------------------------------

    def _ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.num_vars += 1
            self._vals.append(0)
            self._vals.append(0)
            self._level.append(0)
            self._reason.append(-1)
            self._activity.append(0.0)
            self._phase.append(False)
            self._seen.append(0)
            self._eliminated.append(0)
            self._watches.append([])
            self._watches.append([])
            self._bins.append([])
            self._bins.append([])
            self._heap_act.append(0.0)
            heapq.heappush(self._heap, (0.0, self.num_vars))

    def new_var(self) -> int:
        self._ensure_vars(self.num_vars + 1)
        return self.num_vars

    @staticmethod
    def _idx(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    @staticmethod
    def _to_signed(lits: Iterable[int]) -> list[int]:
        """Literal indices back to DIMACS literals (proof/API boundary)."""
        return [-(q >> 1) if q & 1 else (q >> 1) for q in lits]

    def _lit_value(self, lit: int) -> int:
        return self._vals[(lit + lit) if lit > 0 else (1 - lit - lit)]

    def _log_empty(self) -> None:
        """Log the empty clause: the proof's terminal refutation step."""
        if self.proof is not None:
            self.proof.add(())

    # ----- clause arena -----------------------------------------------------

    def _alloc(self, lits: list[int], learnt: bool, lbd: int = 0) -> int:
        """Append a clause of literal *indices* to the arena."""
        cid = len(self._c_start)
        self._c_start.append(len(self._ar))
        self._c_size.append(len(lits))
        self._c_learnt.append(1 if learnt else 0)
        self._c_lbd.append(lbd)
        self._c_act.append(0.0)
        self._c_dead.append(0)
        self._ar.extend(lits)
        if learnt:
            self._n_learnt += 1
        else:
            self._n_irr += 1
        return cid

    def _clause_lits(self, cid: int) -> list[int]:
        """A clause's literals as signed DIMACS values (export boundary)."""
        s = self._c_start[cid]
        return self._to_signed(self._ar[s:s + self._c_size[cid]])

    def _clause_idxs(self, cid: int) -> list[int]:
        s = self._c_start[cid]
        return self._ar[s:s + self._c_size[cid]]

    def _attach(self, cid: int) -> None:
        s = self._c_start[cid]
        a = self._ar[s]
        b = self._ar[s + 1]
        if self._c_size[cid] == 2:
            self._bins[a ^ 1].extend((b, cid))
            self._bins[b ^ 1].extend((a, cid))
        else:
            self._watches[a ^ 1].extend((cid, b))
            self._watches[b ^ 1].extend((cid, a))

    def _detach(self, cid: int) -> None:
        s = self._c_start[cid]
        a = self._ar[s]
        b = self._ar[s + 1]
        if self._c_size[cid] == 2:
            self._pair_remove(self._bins[a ^ 1], cid, 1)
            self._pair_remove(self._bins[b ^ 1], cid, 1)
        else:
            self._pair_remove(self._watches[a ^ 1], cid, 0)
            self._pair_remove(self._watches[b ^ 1], cid, 0)

    @staticmethod
    def _pair_remove(flat: list[int], cid: int, slot: int) -> None:
        """Remove the (pair-aligned) entry whose ``slot`` element is cid."""
        for k in range(slot, len(flat), 2):
            if flat[k] == cid:
                base = k - slot
                flat[base] = flat[-2]
                flat[base + 1] = flat[-1]
                del flat[-2:]
                return

    def _kill(self, cid: int) -> None:
        """Mark a clause dead; caller must have detached it already."""
        if self._c_dead[cid]:
            return
        self._c_dead[cid] = 1
        self._free_lits += self._c_size[cid]
        if self._c_learnt[cid]:
            self._n_learnt -= 1
        else:
            self._n_irr -= 1

    def _remove_clause(self, cid: int) -> None:
        """Detach + kill, logging the deletion only for learned clauses.

        Irredundant deletions are deliberately *not* logged: the DRAT
        checker keeping them is sound (extra clauses only help RUP),
        and it keeps reintroduction after variable elimination honest.
        """
        if self._c_dead[cid]:
            return
        if self.proof is not None and self._c_learnt[cid]:
            self.proof.delete(self._clause_lits(cid))
        self._detach(cid)
        self._kill(cid)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat."""
        if not self._ok:
            return False
        lits = list(lits)
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_vars(-lit if lit < 0 else lit)
        if self._elim_stack:
            # A new clause may mention variables a previous inprocessing
            # round eliminated; reintroduce them (in reverse elimination
            # order) before the clause joins the database.
            for lit in lits:
                v = -lit if lit < 0 else lit
                if self._eliminated[v]:
                    self._restore_eliminated(v)
            if not self._ok:
                return False
        clause: list[int] = []
        seen: set[int] = set()
        root = not self._trail_lim
        vals = self._vals
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            # Skip literals already false at level 0; satisfied at level 0
            # makes the clause redundant.
            if root:
                v = vals[(lit + lit) if lit > 0 else (1 - lit - lit)]
                if v > 0:
                    return True
                if v < 0:
                    continue
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._log_empty()
            self._ok = False
            return False
        idxs = [(l + l) if l > 0 else (1 - l - l) for l in clause]
        if len(idxs) == 1:
            if not self._enqueue(idxs[0], -1):
                self._log_empty()
                self._ok = False
                return False
            self._ok = self._propagate() < 0
            if not self._ok:
                self._log_empty()
            return self._ok
        cid = self._alloc(idxs, learnt=False)
        self._attach(cid)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        self._ensure_vars(cnf.num_vars)
        for i, clause in enumerate(cnf.clauses):
            if self.budget is not None and (i & 0xFFF) == 0xFFF:
                self.budget.checkpoint("loading CNF into CDCL")
            if not self.add_clause(clause):
                return False
        return True

    # ----- assignment / propagation ----------------------------------------

    def _enqueue(self, lit: int, reason: int = -1) -> bool:
        """Assign a literal given by *index*; False on contradiction."""
        v = self._vals[lit]
        if v > 0:
            return True
        if v < 0:
            return False
        self._vals[lit] = 1
        self._vals[lit ^ 1] = -1
        u = lit >> 1
        self._level[u] = len(self._trail_lim)
        self._reason[u] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns the conflicting clause id, or -1."""
        vals = self._vals
        ar = self._ar
        watches = self._watches
        bins = self._bins
        trail = self._trail
        level = self._level
        reason = self._reason
        starts = self._c_start
        sizes = self._c_size
        lvl = len(self._trail_lim)
        qhead = self._qhead
        nprops = 0
        confl = -1
        while qhead < len(trail):
            pi = trail[qhead]
            qhead += 1
            nprops += 1
            false_lit = pi ^ 1

            blist = bins[pi]
            if blist:
                bk = 0
                nb = len(blist)
                while bk < nb:
                    other = blist[bk]
                    ov = vals[other]
                    if ov < 0:
                        confl = blist[bk + 1]
                        break
                    if ov == 0:
                        vals[other] = 1
                        vals[other ^ 1] = -1
                        u = other >> 1
                        level[u] = lvl
                        reason[u] = blist[bk + 1]
                        trail.append(other)
                    bk += 2
                if confl >= 0:
                    break

            wl = watches[pi]
            if not wl:
                continue
            i = 0
            j = 0
            n = len(wl)
            while i < n:
                blocker = wl[i + 1]
                if vals[blocker] > 0:
                    wl[j] = wl[i]
                    wl[j + 1] = blocker
                    j += 2
                    i += 2
                    continue
                cid = wl[i]
                i += 2
                s = starts[cid]
                # Normalize: keep the false literal at arena slot s+1.
                first = ar[s]
                if first == false_lit:
                    first = ar[s + 1]
                    ar[s] = first
                    ar[s + 1] = false_lit
                fv = vals[first]
                if fv > 0:
                    wl[j] = cid
                    wl[j + 1] = first
                    j += 2
                    continue
                # Look for a new literal to watch.
                end = s + sizes[cid]
                k = s + 2
                q = 0
                while k < end:
                    q = ar[k]
                    if vals[q] >= 0:
                        break
                    k += 1
                if k < end:
                    ar[s + 1] = q
                    ar[k] = false_lit
                    nwl = watches[q ^ 1]
                    nwl.append(cid)
                    nwl.append(first)
                    continue
                # Clause is unit or conflicting.
                wl[j] = cid
                wl[j + 1] = first
                j += 2
                if fv < 0:
                    # Conflict: keep remaining watches, restore, report.
                    while i < n:
                        wl[j] = wl[i]
                        wl[j + 1] = wl[i + 1]
                        j += 2
                        i += 2
                    confl = cid
                    break
                vals[first] = 1
                vals[first ^ 1] = -1
                u = first >> 1
                level[u] = lvl
                reason[u] = cid
                trail.append(first)
            del wl[j:]
            if confl >= 0:
                break
        self._qhead = len(trail) if confl >= 0 else qhead
        self.stats.propagations += nprops
        return confl

    # ----- activities -------------------------------------------------------

    def _rescale_var_act(self) -> None:
        act = self._activity
        for u in range(1, self.num_vars + 1):
            act[u] *= 1e-100
        self._var_inc *= 1e-100
        # Heap priorities are pre-rescale snapshots; rebuild so the old
        # generation cannot outrank (or shadow) post-rescale pushes.
        self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        vals = self._vals
        eliminated = self._eliminated
        act = self._activity
        heap_act = self._heap_act
        heap: list[tuple[float, int]] = []
        for u in range(1, self.num_vars + 1):
            if vals[u + u] == 0 and not eliminated[u]:
                a = act[u]
                heap.append((-a, u))
                heap_act[u] = a
            else:
                heap_act[u] = -1.0
        heapq.heapify(heap)
        self._heap = heap

    def _rescale_clause_act(self) -> None:
        ca = self._c_act
        learnt = self._c_learnt
        for i in range(len(ca)):
            if learnt[i]:
                ca[i] *= 1e-20
        self._cla_inc *= 1e-20

    # ----- conflict analysis -------------------------------------------------

    def _analyze(self, confl: int) -> tuple[list[int], int, int]:
        """First-UIP analysis; returns (learnt clause, backtrack level, LBD).

        The learnt clause is in literal-index form with the asserting
        literal first.
        """
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        level = self._level
        trail = self._trail
        ar = self._ar
        starts = self._c_start
        sizes = self._c_size
        reason = self._reason
        activity = self._activity
        cla_act = self._c_act
        cla_learnt = self._c_learnt
        cleanup: list[int] = []
        counter = 0
        lit = 0
        cid = confl
        index = len(trail) - 1
        cur_level = len(self._trail_lim)
        var_inc = self._var_inc
        cla_inc = self._cla_inc

        while True:
            if cla_learnt[cid]:
                a = cla_act[cid] + cla_inc
                cla_act[cid] = a
                if a > 1e20:
                    self._rescale_clause_act()
                    cla_inc = self._cla_inc
            s = starts[cid]
            for k in range(s, s + sizes[cid]):
                q = ar[k]
                if q == lit:
                    continue
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    cleanup.append(v)
                    act = activity[v] + var_inc
                    activity[v] = act
                    if act > 1e100:
                        self._rescale_var_act()
                        var_inc = self._var_inc
                    if level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find next literal to expand on the trail.
            q = trail[index]
            while not seen[q >> 1]:
                index -= 1
                q = trail[index]
            lit = q
            index -= 1
            v = lit >> 1
            seen[v] = 0
            counter -= 1
            if counter == 0:
                learnt[0] = lit ^ 1
                break
            cid = reason[v]

        if self.config.use_minimization and len(learnt) > 1:
            learnt = self._minimize(learnt)
        for v in cleanup:
            seen[v] = 0

        # Compute backtrack level: max level among non-asserting literals.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            lv_max = level[learnt[1] >> 1]
            for i in range(2, len(learnt)):
                lv = level[learnt[i] >> 1]
                if lv > lv_max:
                    max_i = i
                    lv_max = lv
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = lv_max
        lbd = len({level[q >> 1] for q in learnt})
        return learnt, bt_level, lbd

    def _minimize(self, learnt: list[int]) -> list[int]:
        """Local clause minimization (self-subsumption with reasons)."""
        # Re-mark learnt literals (analysis unmarked expanded ones).
        seen = self._seen
        level = self._level
        reason = self._reason
        ar = self._ar
        starts = self._c_start
        sizes = self._c_size
        for q in learnt:
            seen[q >> 1] = 1
        out = [learnt[0]]
        removed = 0
        for q in learnt[1:]:
            v = q >> 1
            r = reason[v]
            if r < 0:
                out.append(q)
                continue
            redundant = True
            s = starts[r]
            for k in range(s, s + sizes[r]):
                p = ar[k]
                u = p >> 1
                if p != q ^ 1 and not seen[u] and level[u] > 0:
                    redundant = False
                    break
            if redundant:
                removed += 1
            else:
                out.append(q)
        self.stats.minimized_lits += removed
        return out

    def _backtrack(self, level_to: int) -> None:
        if len(self._trail_lim) <= level_to:
            return
        limit = self._trail_lim[level_to]
        vals = self._vals
        trail = self._trail
        phase = self._phase
        heap = self._heap
        heap_act = self._heap_act
        activity = self._activity
        reason = self._reason
        push = heapq.heappush
        saving = self.config.use_phase_saving
        for k in range(len(trail) - 1, limit - 1, -1):
            lit = trail[k]
            v = lit >> 1
            if saving:
                phase[v] = not lit & 1
            vals[lit] = 0
            vals[lit ^ 1] = 0
            reason[v] = -1
            a = activity[v]
            if a > heap_act[v]:
                heap_act[v] = a
                push(heap, (-a, v))
        del trail[limit:]
        del self._trail_lim[level_to:]
        self._qhead = limit

    # ----- decisions ----------------------------------------------------------

    def _decide(self) -> Optional[int]:
        vals = self._vals
        eliminated = self._eliminated
        if self.config.use_vsids:
            heap = self._heap
            heap_act = self._heap_act
            v = 0
            while heap:
                neg_act, u = heapq.heappop(heap)
                if -neg_act != heap_act[u]:
                    continue  # stale duplicate; a fresher entry served
                heap_act[u] = -1.0
                if vals[u + u] != 0 or eliminated[u]:
                    continue
                v = u
                break
            if v == 0:
                # Defensive completeness: variables reintroduced after
                # elimination may have no live entry; refill and retry.
                self._rebuild_heap()
                heap = self._heap
                while heap:
                    neg_act, u = heapq.heappop(heap)
                    heap_act[u] = -1.0
                    if vals[u + u] == 0 and not eliminated[u]:
                        v = u
                        break
                if v == 0:
                    return None
        else:
            v = 0
            for u in range(1, self.num_vars + 1):
                if vals[u + u] == 0 and not eliminated[u]:
                    v = u
                    break
            if v == 0:
                return None
        return (v + v) if self._phase[v] else (v + v + 1)

    # ----- learned clause DB ----------------------------------------------------

    def _reduce_db(self) -> None:
        """LBD-based reduction: drop the worse half of deletable learnts.

        Learned clauses with LBD <= ``lbd_keep`` (glue clauses), binary
        clauses, and clauses locked as reasons on the current trail are
        never deleted.  Triggered on a conflict schedule (``reduce_base``
        then +``reduce_inc`` per round), glucose style.
        """
        self._conflicts_at_reduce = self.stats.conflicts
        self._reduce_fuel += self.config.reduce_inc
        keep_lbd = self.config.lbd_keep
        ar = self._ar
        starts = self._c_start
        reason = self._reason
        c_lbd = self._c_lbd
        c_act = self._c_act
        cand = []
        for cid in range(len(starts)):
            if not self._c_learnt[cid] or self._c_dead[cid]:
                continue
            if self._c_size[cid] <= 2 or c_lbd[cid] <= keep_lbd:
                continue
            w0 = ar[starts[cid]]
            if reason[w0 >> 1] == cid:
                continue  # locked: reason for an assignment on the trail
            cand.append(cid)
        if cand:
            # Worst first: highest LBD, then lowest activity.
            cand.sort(key=lambda c: (-c_lbd[c], c_act[c]))
            proof = self.proof
            removed = 0
            for cid in cand[:len(cand) // 2]:
                if proof is not None:
                    proof.delete(self._clause_lits(cid))
                self._detach(cid)
                self._kill(cid)
                removed += 1
            self.stats.deleted += removed
        if self._free_lits * 2 > len(ar):
            self._gc()

    def _gc(self) -> None:
        """Compact the arena: drop dead clauses, remap ids, rebuild watches."""
        old_ar = self._ar
        old_start = self._c_start
        old_size = self._c_size
        old_learnt = self._c_learnt
        old_lbd = self._c_lbd
        old_act = self._c_act
        old_dead = self._c_dead
        n_old = len(old_start)
        remap = [-1] * n_old
        new_ar: list[int] = []
        ns: list[int] = []
        nz: list[int] = []
        nl: list[int] = []
        nb: list[int] = []
        na: list[float] = []
        for cid in range(n_old):
            if old_dead[cid]:
                continue
            remap[cid] = len(ns)
            s = old_start[cid]
            sz = old_size[cid]
            ns.append(len(new_ar))
            new_ar.extend(old_ar[s:s + sz])
            nz.append(sz)
            nl.append(old_learnt[cid])
            nb.append(old_lbd[cid])
            na.append(old_act[cid])
        self._ar = new_ar
        self._c_start = ns
        self._c_size = nz
        self._c_learnt = nl
        self._c_lbd = nb
        self._c_act = na
        self._c_dead = [0] * len(ns)
        self._free_lits = 0
        reason = self._reason
        for lit in self._trail:
            v = lit >> 1
            r = reason[v]
            if r >= 0:
                # A dead reason can only belong to a level-0 assignment
                # (inprocessing removes clauses at the root only); its
                # reason is never consulted, so -1 is safe.
                reason[v] = remap[r]
        nslots = 2 * self.num_vars + 2
        self._watches = [[] for _ in range(nslots)]
        self._bins = [[] for _ in range(nslots)]
        for cid in range(len(ns)):
            self._attach(cid)

    # ----- incremental interface -------------------------------------------------

    def backtrack_to_root(self) -> None:
        """Undo all decisions, keeping root-level assignments and learnts.

        Incremental callers must be at the root level before adding
        clauses between :meth:`solve` calls — :meth:`add_clause`'s
        level-0 simplification and unit handling assume it.
        """
        self._backtrack(0)

    # ----- checkpoint / resume ---------------------------------------------

    def checkpoint_state(self) -> dict:
        """Serialize everything a future solver needs to resume this search.

        Captured at the root level: the learned-clause database (with
        activities), root-level derived units, VSIDS activities and
        their increment, saved phases, and the Luby restart position.
        The dict is JSON-serializable; :mod:`repro.persist.checkpoint`
        wraps it in a checksummed on-disk envelope.  The original CNF
        is *not* included — learned clauses are only sound relative to
        the formula they were derived from, so the persistence layer
        keys checkpoints by a CNF fingerprint.

        The format is representation independent (clause literal lists,
        not arena offsets), so checkpoints interoperate across solver
        generations.  Clauses derived by inprocessing are all implied
        by the original CNF, which keeps restored learnts sound even
        though elimination state itself is not serialized.
        """
        self._backtrack(0)
        learnts = []
        for cid in range(len(self._c_start)):
            if self._c_learnt[cid] and not self._c_dead[cid]:
                learnts.append({
                    "lits": self._clause_lits(cid),
                    "act": self._c_act[cid],
                })
        return {
            "format": 1,
            "num_vars": self.num_vars,
            "ok": self._ok,
            "root_units": self._to_signed(self._trail),
            "learnts": learnts,
            "activity": list(self._activity[1:]),
            "phase": [1 if p else 0 for p in self._phase[1:]],
            "var_inc": self._var_inc,
            "cla_inc": self._cla_inc,
            "restarts": self._restart_count,
        }

    def restore_state(self, state: dict) -> int:
        """Re-install a :meth:`checkpoint_state` dict; returns learnts kept.

        Call after loading the *same* CNF the checkpoint was taken
        from (the persistence layer enforces this via fingerprinted
        keys; this method only sanity-checks the variable count).
        Restored learned clauses are re-filtered against the current
        root-level assignment, so restoring is safe even if level-0
        propagation ordered differently.  Raises :class:`ValueError`
        on a structural mismatch and refuses proof-logging solvers —
        a DRAT log cannot certify clauses whose derivations happened
        in a previous process.
        """
        if self.proof is not None:
            raise ValueError(
                "cannot restore a checkpoint into a proof-logging solver"
            )
        if int(state.get("format", 0)) != 1:
            raise ValueError("unsupported checkpoint format")
        if int(state["num_vars"]) != self.num_vars:
            raise ValueError(
                f"checkpoint has {state['num_vars']} vars,"
                f" solver has {self.num_vars}"
            )
        self._backtrack(0)
        if not state.get("ok", True):
            self._log_empty()
            self._ok = False
            return 0
        restored = 0
        for lit in state.get("root_units", ()):
            if not self.add_clause([int(lit)]):
                return restored  # checkpointed root units refute the CNF
        for item in state.get("learnts", ()):
            lits = [int(l) for l in item["lits"]]
            keep: list[int] = []
            satisfied = False
            for lit in lits:
                val = self._lit_value(lit)
                if val == 1:
                    satisfied = True  # already true at root: redundant
                    break
                if val == 0:
                    keep.append(lit)
            if satisfied:
                continue
            if not keep:
                self._log_empty()
                self._ok = False
                return restored
            if len(keep) == 1:
                if not self.add_clause(keep):
                    return restored
                restored += 1
                continue
            cid = self._alloc(
                [(l + l) if l > 0 else (1 - l - l) for l in keep],
                learnt=True, lbd=len(keep))
            self._c_act[cid] = float(item.get("act", 0.0))
            self._attach(cid)
            restored += 1
        if self._propagate() >= 0:
            self._log_empty()
            self._ok = False
        activity = state.get("activity", ())
        for v, act in enumerate(activity, start=1):
            if v <= self.num_vars:
                self._activity[v] = float(act)
        phase = state.get("phase", ())
        for v, ph in enumerate(phase, start=1):
            if v <= self.num_vars:
                self._phase[v] = bool(ph)
        self._var_inc = float(state.get("var_inc", 1.0))
        self._cla_inc = float(state.get("cla_inc", 1.0))
        self._restart_resume = int(state.get("restarts", 0))
        # Rebuild the decision heap so restored activities take effect.
        self._rebuild_heap()
        self.restored_learnts = restored
        if METRICS.enabled and restored:
            METRICS.counter_inc(
                "repro_checkpoint_learnts_restored_total", restored)
        return restored

    # ----- main search -----------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              budget: Optional["Budget"] = None) -> SatResult:
        """Search for a model, optionally under assumption literals.

        With a ``budget``, the search loop polls it at every conflict
        (and periodically between decisions) and answers UNKNOWN with
        :attr:`exhaust_report` populated when it runs out — cooperative
        cancellation, so no formula can hang the caller.

        :attr:`stats` keeps accumulating across calls (lifetime view);
        :attr:`last_stats` holds just this call's delta, which is what
        per-query reporting must use on incremental sessions.
        """
        before = self.stats.snapshot()
        # An UNSAT-under-assumptions answer leaves the assumption trail
        # in place; without a snapshot the *next* solve's backtrack(0)
        # would phase-save those assumption-forced values and bias its
        # search.  SAT answers keep their trail (model()) and their
        # phases (deliberate phase persistence across checks).
        phase_snapshot = list(self._phase) if assumptions else None
        result: Optional[SatResult] = None
        try:
            result = self._search(assumptions, budget)
            return result
        finally:
            if phase_snapshot is not None and result is SatResult.UNSAT:
                saving = self.config.use_phase_saving
                self.config.use_phase_saving = False
                try:
                    self._backtrack(0)
                finally:
                    self.config.use_phase_saving = saving
                phase_snapshot.extend(self._phase[len(phase_snapshot):])
                self._phase = phase_snapshot
            self.last_stats = self.stats.diff(before)
            if METRICS.enabled:
                proc = METRICS.proc
                # One family per SatStats field: the unified schema in
                # repro.smt.stats is also the metrics naming scheme.
                for name, value in self.last_stats.as_dict().items():
                    METRICS.counter_inc(
                        f"repro_cdcl_{name}_total", value, proc=proc)
                METRICS.counter_inc("repro_cdcl_solves_total", 1, proc=proc)

    def _search(self, assumptions: Sequence[int],
                budget: Optional["Budget"]) -> SatResult:
        if budget is None:
            budget = self.budget
        self.exhaust_report = None
        self._conflict_assumptions = []
        # The per-call conflict cap is a *delta* from this call's start,
        # so a reused (incremental) solver gets a fresh slice each call.
        conflicts_at_start = self.stats.conflicts
        self._backtrack(0)
        if self._elim_stack:
            # Assumptions may mention variables a previous round
            # eliminated; reintroduce them before searching under them.
            for a in assumptions:
                v = -a if a < 0 else a
                if v <= self.num_vars and self._eliminated[v]:
                    self._restore_eliminated(v)
        if not self._ok:
            return SatResult.UNSAT
        if self._propagate() >= 0:
            self._log_empty()
            self._ok = False
            return SatResult.UNSAT
        config = self.config
        frozen: Optional[set] = None
        if config.use_inprocessing and not self._inprocessed_once:
            # First solve on this instance: run a preprocessing round
            # before search (SatELite style), where it pays off most.
            self._inprocessed_once = True
            frozen = {-a if a < 0 else a for a in assumptions}
            if not self._inprocess(frozen, budget):
                return SatResult.UNSAT
        decisions_since_check = 0
        # Progress beacon: resolved once per solve so a disabled beacon
        # costs nothing inside the loop; enabled, one int compare per
        # conflict plus a sample dict every `interval` conflicts.
        beacon = BEACON if BEACON.enabled else None
        beacon_next = 0
        beacon_mark = (0.0, 0, 0)
        if beacon is not None:
            beacon_next = self.stats.conflicts + beacon.interval
            beacon_mark = (time.perf_counter(), self.stats.conflicts,
                           self.stats.propagations)

        self._restart_count = self._restart_resume
        conflicts_until_restart = (
            config.restart_base * _luby(self._restart_count + 1)
            if config.use_restarts else -1
        )
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if budget is not None:
                    budget.charge_conflicts(1)
                if not self._trail_lim:
                    self._log_empty()
                    self._ok = False
                    return SatResult.UNSAT
                learnt, bt_level, lbd = self._analyze(conflict)
                if self.proof is not None:
                    self.proof.add(self._to_signed(learnt))
                self._backtrack(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], -1)
                else:
                    cid = self._alloc(learnt, learnt=True, lbd=lbd)
                    self._attach(cid)
                    self._c_act[cid] = self._cla_inc
                    self.stats.learned += 1
                    if budget is not None:
                        budget.charge_learned(1)
                    self._enqueue(learnt[0], cid)
                self._var_inc /= config.var_decay
                self._cla_inc /= config.clause_decay
                if budget is not None:
                    reason = budget.exhausted()
                    if reason is not None:
                        self.exhaust_report = budget.report(
                            reason, "CDCL search (conflict safepoint)"
                        )
                        return SatResult.UNKNOWN
                if (
                    config.max_conflicts is not None
                    and self.stats.conflicts - conflicts_at_start
                    >= config.max_conflicts
                ):
                    return SatResult.UNKNOWN
                if beacon is not None and self.stats.conflicts >= beacon_next:
                    beacon_next = self.stats.conflicts + beacon.interval
                    beacon_mark = self._emit_progress(beacon, beacon_mark)
                continue

            if (
                config.use_restarts
                and conflicts_since_restart >= conflicts_until_restart
            ):
                self._restart_count += 1
                self.stats.restarts += 1
                conflicts_since_restart = 0
                conflicts_until_restart = config.restart_base * _luby(
                    self._restart_count + 1
                )
                self._backtrack(0)
                if (
                    config.use_inprocessing
                    and self.stats.conflicts - self._conflicts_at_inprocess
                    >= config.inprocess_interval
                ):
                    if frozen is None:
                        frozen = {-a if a < 0 else a for a in assumptions}
                    if not self._inprocess(frozen, budget):
                        return SatResult.UNSAT
                continue

            if (
                self._n_learnt
                and self.stats.conflicts - self._conflicts_at_reduce
                >= self._reduce_fuel
            ):
                self._reduce_db()

            # Place assumptions as pseudo-decisions before real decisions.
            next_lit: Optional[int] = None
            decision_level = len(self._trail_lim)
            if decision_level < len(assumptions):
                a = assumptions[decision_level]
                self._ensure_vars(-a if a < 0 else a)
                val = self._lit_value(a)
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == -1:
                    self._conflict_assumptions = self._analyze_final(
                        a, assumptions)
                    return SatResult.UNSAT
                next_lit = (a + a) if a > 0 else (1 - a - a)
            else:
                next_lit = self._decide()
                if next_lit is None:
                    return SatResult.SAT
                self.stats.decisions += 1
                # Deadline safepoint for conflict-free stretches of search.
                decisions_since_check += 1
                if budget is not None and decisions_since_check >= 256:
                    decisions_since_check = 0
                    reason = budget.exhausted()
                    if reason is not None:
                        self.exhaust_report = budget.report(
                            reason, "CDCL search (decision safepoint)"
                        )
                        return SatResult.UNKNOWN
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, -1)

    def _emit_progress(self, beacon, mark) -> tuple:
        """Emit one live-progress sample; returns the new rate mark.

        Rates are computed against the previous emission (or solve
        start), so a sample says what the solver is doing *now*, not a
        lifetime average.
        """
        t0, c0, p0 = mark
        now = time.perf_counter()
        dt = now - t0
        stats = self.stats
        beacon.emit({
            "conflicts": stats.conflicts,
            "decisions": stats.decisions,
            "propagations": stats.propagations,
            "restarts": stats.restarts,
            "learnt": self._n_learnt,
            "trail": len(self._trail),
            "num_vars": self.num_vars,
            "conflicts_per_s": round((stats.conflicts - c0) / dt, 1)
            if dt > 0 else 0.0,
            "props_per_s": round((stats.propagations - p0) / dt, 1)
            if dt > 0 else 0.0,
        })
        return (now, stats.conflicts, stats.propagations)

    def _analyze_final(self, failed: int,
                       assumptions: Sequence[int]) -> list[int]:
        """Compute the subset of assumptions implying ``-failed`` (unsat core)."""
        assumption_set = set(assumptions)
        core = {failed}
        seen = [False] * (self.num_vars + 1)
        seen[abs(failed)] = True
        ar = self._ar
        starts = self._c_start
        sizes = self._c_size
        level = self._level
        for lit in reversed(self._trail):
            v = lit >> 1
            if not seen[v]:
                continue
            r = self._reason[v]
            if r < 0:
                signed = -v if lit & 1 else v
                if signed in assumption_set:
                    core.add(signed)
            else:
                s = starts[r]
                for k in range(s, s + sizes[r]):
                    u = ar[k] >> 1
                    if level[u] > 0:
                        seen[u] = True
        return sorted(core, key=abs)

    def unsat_assumptions(self) -> list[int]:
        """Assumption literals involved in the last UNSAT answer."""
        return list(self._conflict_assumptions)

    def model(self) -> list[bool]:
        """The satisfying assignment (1-indexed; index 0 is unused).

        Variables removed by bounded elimination are re-valued here by
        replaying the elimination stack in reverse: each variable gets
        whichever polarity satisfies all of its removed clauses (the
        resolvent closure guarantees one always exists).
        """
        vals = self._vals
        out = [False] * (self.num_vars + 1)
        for v in range(1, self.num_vars + 1):
            out[v] = vals[v + v] > 0
        for v, saved in reversed(self._elim_stack):
            forced = None
            for lits in saved:
                vlit = 0
                satisfied = False
                for l in lits:
                    u = l if l > 0 else -l
                    if u == v:
                        vlit = l
                        continue
                    if (l > 0) == out[u]:
                        satisfied = True
                        break
                if not satisfied:
                    forced = vlit > 0
                    break
            if forced is not None:
                out[v] = forced
        return out

    # ----- inprocessing -----------------------------------------------------

    def _inprocess(self, frozen: set, budget: Optional["Budget"]) -> bool:
        """One inprocessing round at the root level; False iff now UNSAT.

        Schedule: strengthen against the root assignment, then
        subsumption/self-subsumption, then vivification, then bounded
        variable elimination, then arena compaction.  Every derived
        clause is RUP at the moment it is logged, and irredundant
        deletions are never logged, so ``--certify`` replay still works.
        """
        self.stats.inprocessings += 1
        self._conflicts_at_inprocess = self.stats.conflicts
        config = self.config
        ok = self._simplify_root()
        if ok and config.use_subsume:
            ok = self._subsume(budget)
        if ok and config.use_vivify:
            ok = self._vivify(budget)
        if ok and config.use_elim:
            ok = self._eliminate(frozen, budget)
        if ok:
            self._gc()
        else:
            self._ok = False
        self._conflicts_at_inprocess = self.stats.conflicts
        return ok

    def _simplify_root(self) -> bool:
        """Remove satisfied clauses and false literals vs the root trail."""
        vals = self._vals
        ar = self._ar
        for cid in range(len(self._c_start)):
            if self._c_dead[cid]:
                continue
            s = self._c_start[cid]
            end = s + self._c_size[cid]
            satisfied = False
            has_false = False
            for k in range(s, end):
                v = vals[ar[k]]
                if v > 0:
                    satisfied = True
                    break
                if v < 0:
                    has_false = True
            if satisfied:
                self._remove_clause(cid)
                continue
            if not has_false:
                continue
            keep = [ar[k] for k in range(s, end) if vals[ar[k]] == 0]
            if not self._replace_clause(cid, keep):
                return False
        return True

    def _replace_clause(self, cid: int, keep: list[int]) -> bool:
        """Swap a live clause for a strengthened version; False iff UNSAT.

        ``keep`` is in literal-index form.  Logs the strengthened clause
        as an addition *before* retiring the original (RUP needs the
        original alive), handles the unit and empty cases, and preserves
        the learnt flag/LBD.
        """
        proof = self.proof
        if not keep:
            self._log_empty()
            return False
        if proof is not None:
            proof.add(self._to_signed(keep))
        # Units derived earlier in the same pass may already decide some
        # of ``keep`` at the root; re-normalize so the watch invariant
        # holds at attach time (the stripped literals stay RUP-derivable
        # for proof replay — they follow from logged root units).
        vals = self._vals
        if any(vals[q] > 0 for q in keep):
            self._remove_clause(cid)
            return True  # satisfied at the root forever
        keep = [q for q in keep if vals[q] == 0]
        if not keep:
            self._log_empty()
            return False
        if len(keep) == 1:
            self._remove_clause(cid)
            if not self._enqueue(keep[0], -1) or self._propagate() >= 0:
                self._log_empty()
                return False
            return True
        learnt = bool(self._c_learnt[cid])
        lbd = min(self._c_lbd[cid], len(keep)) if learnt else 0
        act = self._c_act[cid]
        new_cid = self._alloc(keep, learnt=learnt, lbd=lbd)
        self._c_act[new_cid] = act
        self._attach(new_cid)
        self._remove_clause(cid)
        self.stats.strengthened += 1
        return True

    def _build_occ(self, include_learnt: bool = True):
        """Occurrence lists + var-based signatures over live clauses."""
        occ: list[list[int]] = [[] for _ in range(2 * self.num_vars + 2)]
        sig: list[int] = [0] * len(self._c_start)
        ar = self._ar
        for cid in range(len(self._c_start)):
            if self._c_dead[cid]:
                continue
            if not include_learnt and self._c_learnt[cid]:
                continue
            s = self._c_start[cid]
            m = 0
            for k in range(s, s + self._c_size[cid]):
                q = ar[k]
                occ[q].append(cid)
                m |= 1 << ((q >> 1) & 63)
            sig[cid] = m
        return occ, sig

    def _subsume(self, budget: Optional["Budget"]) -> bool:
        """Backward subsumption and self-subsuming resolution.

        For each clause C (smallest first) find clauses D ⊇ C via the
        occurrence list of C's rarest literal: D is removed (subsumed),
        or strengthened when C∖{l} ⊆ D and ¬l ∈ D (self-subsumption).
        Var-based signatures prune most candidate pairs in O(1).
        """
        occ, sig = self._build_occ()
        ar = self._ar
        starts = self._c_start
        sizes = self._c_size
        dead = self._c_dead
        # Literal-indexed membership marks for the current subsumer C:
        # bytearray indexing beats a dict in the candidate scan below,
        # which visits every literal of every candidate clause.
        mark = bytearray(2 * self.num_vars + 2)
        queue = [cid for cid in range(len(starts)) if not dead[cid]]
        queue.sort(key=lambda c: sizes[c])
        qi = 0
        steps = 0
        while qi < len(queue):
            cid = queue[qi]
            qi += 1
            if dead[cid]:
                continue
            s = starts[cid]
            size_c = sizes[cid]
            if size_c > 20:
                continue  # long clauses almost never subsume anything
            steps += 1
            if budget is not None and (steps & 0x3FF) == 0x3FF:
                if budget.exhausted() is not None:
                    return True
            lits_c = ar[s:s + size_c]
            # Rarest literal = shortest candidate list (count both
            # polarities so flipped-pivot self-subsumption is found).
            best = None
            best_len = -1
            for q in lits_c:
                ln = len(occ[q]) + len(occ[q ^ 1])
                if best is None or ln < best_len:
                    best = q
                    best_len = ln
            for q in lits_c:
                mark[q] = 1
            sig_c = sig[cid]
            for cand_list in (occ[best], occ[best ^ 1]):
                for did in cand_list:
                    if did == cid or dead[did] or dead[cid]:
                        continue
                    dsz = sizes[did]
                    if dsz < size_c:
                        continue
                    if sig_c & ~sig[did]:
                        continue
                    same = 0
                    negged = 0
                    neg_count = 0
                    ds = starts[did]
                    for q in ar[ds:ds + dsz]:
                        if mark[q]:
                            same += 1
                        elif mark[q ^ 1]:
                            neg_count += 1
                            negged = q
                    if same == size_c:
                        # C subsumes D: retire D; if D was irredundant
                        # the subsumer must stay, so promote learnt C.
                        if not self._c_dead[did]:
                            if not self._c_learnt[did] and self._c_learnt[cid]:
                                self._c_learnt[cid] = 0
                                self._n_learnt -= 1
                                self._n_irr += 1
                            self._remove_clause(did)
                            self.stats.subsumed += 1
                    elif same == size_c - 1 and neg_count == 1:
                        # Self-subsumption: strengthen D by dropping
                        # `negged` (the resolvent of C and D).
                        keep = [ar[k]
                                for k in range(ds, ds + sizes[did])
                                if ar[k] != negged]
                        old_did = did
                        new_cid = len(starts)
                        if not self._replace_clause(old_did, keep):
                            return False
                        # _replace_clause may not allocate (strengthened
                        # to a unit, or normalized away against the root
                        # assignment): index the new clause only if it
                        # actually landed at new_cid.
                        if len(starts) > new_cid and not dead[new_cid]:
                            # Index the strengthened clause so it can
                            # subsume (and be subsumed) in this pass.
                            m = 0
                            ns2 = starts[new_cid]
                            for k in range(ns2, ns2 + sizes[new_cid]):
                                q = ar[k]
                                occ[q].append(new_cid)
                                m |= 1 << ((q >> 1) & 63)
                            while len(sig) <= new_cid:
                                sig.append(0)
                            sig[new_cid] = m
                            queue.append(new_cid)
            for q in lits_c:
                mark[q] = 0
        return True

    def _vivify(self, budget: Optional["Budget"]) -> bool:
        """Clause vivification: shorten clauses via trial propagation.

        For clause C = (l1 ∨ ... ∨ ln), assume ¬l1, ¬l2, ... in turn
        (with C itself detached).  If propagation falsifies some li the
        literal is redundant; if it satisfies li or conflicts, the
        clause shrinks to the assumed prefix.  Bounded by
        ``vivify_ticks`` propagations per round, resuming round-robin.
        """
        config = self.config
        saving = config.use_phase_saving
        config.use_phase_saving = False  # trial decisions must not bias phases
        try:
            start_props = self.stats.propagations
            n = len(self._c_start)
            if not n:
                return True
            cursor = getattr(self, "_viv_cursor", 0) % n
            vals = self._vals
            for _ in range(n):
                cid = cursor
                cursor = (cursor + 1) % n
                if self.stats.propagations - start_props > config.vivify_ticks:
                    break
                if budget is not None and budget.exhausted() is not None:
                    break
                if self._c_dead[cid] or self._c_size[cid] < 3:
                    continue
                lits = self._clause_idxs(cid)
                if any(vals[q] > 0 for q in lits):
                    self._remove_clause(cid)  # satisfied at the root
                    continue
                self._detach(cid)
                assumed: list[int] = []
                shrunk = False
                for l in lits:
                    v = vals[l]
                    if v > 0:
                        # Earlier assumptions imply l: C' = prefix + l.
                        assumed.append(l)
                        shrunk = True
                        break
                    if v < 0:
                        # Earlier assumptions imply ¬l: l is redundant.
                        shrunk = True
                        continue
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(l ^ 1, -1)
                    assumed.append(l)
                    if self._propagate() >= 0:
                        # Prefix already contradictory: C' = prefix.
                        shrunk = len(assumed) < len(lits)
                        break
                self._backtrack(0)
                if shrunk and len(assumed) < len(lits):
                    self.stats.vivified_lits += len(lits) - len(assumed)
                    if not self._replace_clause_detached(cid, assumed):
                        return False
                else:
                    self._attach(cid)
            self._viv_cursor = cursor
            return True
        finally:
            config.use_phase_saving = saving

    def _replace_clause_detached(self, cid: int, keep: list[int]) -> bool:
        """Like :meth:`_replace_clause` for an already-detached original."""
        proof = self.proof
        if not keep:
            self._log_empty()
            return False
        if proof is not None:
            proof.add(self._to_signed(keep))
        if proof is not None and self._c_learnt[cid]:
            proof.delete(self._clause_lits(cid))
        self._kill(cid)
        # Same root-normalization as _replace_clause: never attach a
        # clause whose watched literals may already be false at level 0.
        vals = self._vals
        if any(vals[q] > 0 for q in keep):
            return True  # satisfied at the root forever
        keep = [q for q in keep if vals[q] == 0]
        if not keep:
            self._log_empty()
            return False
        if len(keep) == 1:
            if not self._enqueue(keep[0], -1) or self._propagate() >= 0:
                self._log_empty()
                return False
            return True
        learnt = bool(self._c_learnt[cid])
        lbd = min(self._c_lbd[cid], len(keep)) if learnt else 0
        new_cid = self._alloc(keep, learnt=learnt, lbd=lbd)
        self._c_act[new_cid] = self._c_act[cid]
        self._attach(new_cid)
        return True

    def _eliminate(self, frozen: set, budget: Optional["Budget"]) -> bool:
        """SatELite-style bounded variable elimination at the root.

        A variable v qualifies when unassigned, not assumed (frozen),
        and cheap: both polarities occur at most ``elim_occ_limit``
        times among irredundant clauses, and the non-tautological
        resolvent count does not grow the database by more than
        ``elim_growth``.  Resolvents are logged as RUP additions before
        the originals are retired; the originals move to the
        elimination stack for model extension and reintroduction.
        """
        config = self.config
        occ, _sig = self._build_occ()
        ar = self._ar
        starts = self._c_start
        sizes = self._c_size
        dead = self._c_dead
        learnt = self._c_learnt
        vals = self._vals
        limit = config.elim_occ_limit
        candidates = [
            v for v in range(1, self.num_vars + 1)
            if vals[v + v] == 0 and not self._eliminated[v]
            and v not in frozen
            and len(occ[v + v]) <= limit and len(occ[v + v + 1]) <= limit
        ]
        candidates.sort(key=lambda v: len(occ[v + v]) + len(occ[v + v + 1]))
        checked = 0
        for v in candidates:
            checked += 1
            if budget is not None and (checked & 0x3F) == 0x3F:
                if budget.exhausted() is not None:
                    return True
            if vals[v + v] != 0 or self._eliminated[v] or not self._ok:
                continue
            pos = [c for c in occ[v + v] if not dead[c] and not learnt[c]]
            neg = [c for c in occ[v + v + 1] if not dead[c] and not learnt[c]]
            if len(pos) > limit or len(neg) > limit:
                continue
            budget_clauses = len(pos) + len(neg) + config.elim_growth
            pos_idx = v + v
            neg_idx = pos_idx + 1
            resolvents: list[list[int]] = []
            feasible = True
            for p_cid in pos:
                ps = starts[p_cid]
                p_rest = [ar[k] for k in range(ps, ps + sizes[p_cid])
                          if ar[k] != pos_idx]
                for n_cid in neg:
                    nst = starts[n_cid]
                    merged = dict.fromkeys(p_rest)
                    taut = False
                    for k in range(nst, nst + sizes[n_cid]):
                        q = ar[k]
                        if q == neg_idx:
                            continue
                        if q ^ 1 in merged:
                            taut = True
                            break
                        merged[q] = None
                    if taut:
                        continue
                    res = list(merged)
                    if len(res) > config.elim_lit_limit:
                        feasible = False
                        break
                    resolvents.append(res)
                    if len(resolvents) > budget_clauses:
                        feasible = False
                        break
                if not feasible:
                    break
            if not feasible:
                continue
            # Commit: log + install resolvents while the originals are
            # still alive (each resolvent is RUP against them), then
            # retire the originals onto the elimination stack.
            proof = self.proof
            saved: list[list[int]] = []
            for cid in pos + neg:
                saved.append(self._clause_lits(cid))
            for res in resolvents:
                if proof is not None:
                    proof.add(self._to_signed(res))
            self._elim_stack.append((v, saved))
            self._eliminated[v] = 1
            self.stats.eliminated += 1
            for cid in pos + neg:
                self._remove_clause(cid)
            # Learned clauses mentioning v are no longer connected to
            # anything useful; retire them (logged, they are redundant).
            for cid in occ[v + v] + occ[v + v + 1]:
                if not dead[cid] and learnt[cid]:
                    self._remove_clause(cid)
            failed = False
            for res in resolvents:
                if failed:
                    break
                # Normalize against the root assignment: unit resolvents
                # installed earlier in this loop propagate at level 0, so
                # a later resolvent may carry literals that are already
                # decided.  Attaching it unfiltered can watch two false
                # literals — the clause then never wakes propagation and
                # the search can "satisfy" the formula while violating it.
                if any(vals[q] > 0 for q in res):
                    continue  # satisfied at the root forever
                live = [q for q in res if vals[q] == 0]
                if not live:
                    failed = True
                    continue
                if len(live) == 1:
                    if not self._enqueue(live[0], -1):
                        failed = True
                        continue
                    if self._propagate() >= 0:
                        failed = True
                    continue
                cid = self._alloc(live, learnt=False)
                self._attach(cid)
                for q in live:
                    occ[q].append(cid)
            if failed:
                self._log_empty()
                return False
        return True

    def _restore_eliminated(self, var: int) -> None:
        """Reintroduce an eliminated variable (and all eliminated after it).

        Frames are popped in reverse elimination order, which guarantees
        every clause re-added mentions only live variables: a frame's
        clauses were live at its elimination, so they contain no
        earlier-eliminated variable, and any later-eliminated variable
        they mention is restored by an earlier pop.
        """
        while self._eliminated[var] and self._elim_stack:
            v, saved = self._elim_stack.pop()
            self._eliminated[v] = 0
            for lits in saved:
                if not self.add_clause(lits):
                    return

    # ----- one-shot convenience -------------------------------------------


def solve_cnf(
    cnf: CNF, config: Optional[CDCLConfig] = None,
    budget: Optional["Budget"] = None,
) -> tuple[SatResult, Optional[list[bool]], SatStats]:
    """One-shot convenience wrapper: solve a CNF and return (result, model, stats)."""
    solver = CDCLSolver(cnf.num_vars, config, budget=budget)
    if not solver.add_cnf(cnf):
        return SatResult.UNSAT, None, solver.stats
    result = solver.solve()
    model = solver.model() if result is SatResult.SAT else None
    return result, model, solver.stats
