"""A conflict-driven clause-learning (CDCL) SAT solver.

This is the decision engine at the bottom of the reproduction's SMT
stack (the paper uses Z3; we build the solver ourselves).  The design
follows MiniSat:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause minimization,
* VSIDS (exponential) variable activities with phase saving,
* Luby-sequence restarts,
* activity-based learned-clause database reduction,
* solving under assumptions, with unsat-core extraction over them.

Individual features can be switched off through :class:`CDCLConfig`,
which the SAT ablation benchmark (experiment A2 in DESIGN.md) uses.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..cnf import CNF
from ...obs import METRICS

if TYPE_CHECKING:  # avoid a runtime ↔ smt import cycle; Budget is duck-typed
    from ...runtime.budget import Budget, ResourceReport
    from ...trust.proof import ProofLog


class SatResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class CDCLConfig:
    """Feature switches and tuning constants for :class:`CDCLSolver`."""

    use_vsids: bool = True
    use_restarts: bool = True
    use_phase_saving: bool = True
    use_minimization: bool = True
    restart_base: int = 100
    var_decay: float = 0.95
    clause_decay: float = 0.999
    max_learnts_frac: float = 0.35
    max_conflicts: Optional[int] = None


@dataclass
class SatStats:
    """Counters exposed for benchmarks and tests."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    minimized_lits: int = 0

    def snapshot(self) -> "SatStats":
        return SatStats(**vars(self))

    def diff(self, earlier: "SatStats") -> "SatStats":
        """Per-call view: this snapshot minus an ``earlier`` one."""
        return SatStats(**{
            k: v - getattr(earlier, k) for k, v in vars(self).items()
        })


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    x = i - 1  # 0-based position
    size = 1
    seq = 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x = x % size
    return 1 << seq


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: list[int], learnt: bool):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


_UNASSIGNED = 0


class CDCLSolver:
    """CDCL SAT solver over DIMACS-style literals.

    Typical use::

        solver = CDCLSolver(num_vars)
        solver.add_clause([1, -2])
        result = solver.solve()
        if result is SatResult.SAT:
            model = solver.model()   # model[v] in {True, False}, 1-indexed
    """

    def __init__(self, num_vars: int = 0, config: Optional[CDCLConfig] = None,
                 budget: Optional["Budget"] = None,
                 proof: Optional["ProofLog"] = None):
        self.config = config or CDCLConfig()
        self.budget = budget
        # Optional DRAT-style proof log: every learned clause, every
        # learned-clause deletion, and the empty clause on root-level
        # unsatisfiability.  Checked by repro.trust.drat independently.
        self.proof = proof
        # Populated when solve() answers UNKNOWN: a ResourceReport when a
        # Budget ran out, None when only the per-call conflict cap hit
        # (the retryable case the escalation portfolio targets).
        self.exhaust_report: Optional["ResourceReport"] = None
        # `stats` accumulates over the solver's lifetime (incremental
        # sessions reuse one solver across many solve() calls);
        # `last_stats` is the delta attributable to the most recent call.
        self.stats = SatStats()
        self.last_stats = SatStats()
        self.num_vars = 0
        # Per-variable state (1-indexed; slot 0 unused).
        self._value: list[int] = [0]        # +1 true, -1 false, 0 unassigned
        self._level: list[int] = [0]
        self._reason: list[Optional[_Clause]] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        # Watches keyed by literal index (2v for v, 2v+1 for -v).
        self._watches: list[list[_Clause]] = [[], []]
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._ok = True
        self._conflict_assumptions: list[int] = []
        # Max-activity heap with lazy (stale-entry) deletion.
        self._heap: list[tuple[float, int]] = []
        # Where the next solve() resumes the Luby restart sequence.
        # 0 for fresh solvers; restore_state() advances it so a resumed
        # search continues the interrupted solve's restart schedule.
        # _restart_count mirrors the live position during _search so a
        # checkpoint taken after an UNKNOWN can serialize it.
        self._restart_resume = 0
        self._restart_count = 0
        # Learned clauses re-installed by restore_state(), for telemetry.
        self.restored_learnts = 0
        self._ensure_vars(num_vars)

    # ----- problem construction -------------------------------------------

    def _ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.num_vars += 1
            self._value.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches.append([])
            self._watches.append([])
            heapq.heappush(self._heap, (0.0, self.num_vars))

    def new_var(self) -> int:
        self._ensure_vars(self.num_vars + 1)
        return self.num_vars

    @staticmethod
    def _idx(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    def _lit_value(self, lit: int) -> int:
        v = self._value[abs(lit)]
        return v if lit > 0 else -v

    def _log_empty(self) -> None:
        """Log the empty clause: the proof's terminal refutation step."""
        if self.proof is not None:
            self.proof.add(())

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat."""
        if not self._ok:
            return False
        clause: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            # Skip literals already false at level 0; satisfied at level 0
            # makes the clause redundant.
            if not self._trail_lim and self._lit_value(lit) == 1:
                return True
            if not self._trail_lim and self._lit_value(lit) == -1:
                continue
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._log_empty()
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._log_empty()
                self._ok = False
                return False
            self._ok = self._propagate() is None
            if not self._ok:
                self._log_empty()
            return self._ok
        c = _Clause(clause, learnt=False)
        self._clauses.append(c)
        self._attach(c)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        self._ensure_vars(cnf.num_vars)
        for i, clause in enumerate(cnf.clauses):
            if self.budget is not None and (i & 0xFFF) == 0xFFF:
                self.budget.checkpoint("loading CNF into CDCL")
            if not self.add_clause(clause):
                return False
        return True

    def _attach(self, clause: _Clause) -> None:
        # Watch the negations of the first two literals: when one of them
        # becomes false we must visit the clause.
        self._watches[self._idx(-clause.lits[0])].append(clause)
        self._watches[self._idx(-clause.lits[1])].append(clause)

    # ----- assignment / propagation ----------------------------------------

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._lit_value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        v = abs(lit)
        self._value[v] = 1 if lit > 0 else -1
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            watch_list = self._watches[self._idx(lit)]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                # Normalize: make sure the false literal is at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == 1:
                    watch_list[j] = clause
                    j += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[self._idx(-lits[1])].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = clause
                j += 1
                if self._lit_value(first) == -1:
                    # Conflict: keep remaining watches, restore list, report.
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
            del watch_list[j:]
        return None

    # ----- activities -------------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > 1e100:
            for u in range(1, self.num_vars + 1):
                self._activity[u] *= 1e-100
            self._var_inc *= 1e-100
        if self._value[v] == _UNASSIGNED:
            heapq.heappush(self._heap, (-self._activity[v], v))

    def _decay_var(self) -> None:
        self._var_inc /= self.config.var_decay

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause(self) -> None:
        self._cla_inc /= self.config.clause_decay

    # ----- conflict analysis -------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learnt clause, backtrack level).

        The asserting literal is placed first in the learnt clause.
        """
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        cur_level = len(self._trail_lim)

        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            for q in clause.lits:
                if lit is not None and q == lit:
                    continue
                v = abs(q)
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self._level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find next literal to expand on the trail.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            v = abs(lit)
            seen[v] = False
            counter -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            clause = self._reason[v]

        if self.config.use_minimization:
            learnt = self._minimize(learnt, seen)

        # Compute backtrack level: max level among non-asserting literals.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self._level[abs(learnt[1])]
        return learnt, bt_level

    def _minimize(self, learnt: list[int], seen: list[bool]) -> list[int]:
        """Local clause minimization (self-subsumption with reasons)."""
        # Re-mark learnt literals (analysis unmarked expanded ones).
        for lit in learnt:
            seen[abs(lit)] = True
        out = [learnt[0]]
        for lit in learnt[1:]:
            reason = self._reason[abs(lit)]
            if reason is None:
                out.append(lit)
                continue
            redundant = True
            for q in reason.lits:
                v = abs(q)
                if q != -lit and not seen[v] and self._level[v] > 0:
                    redundant = False
                    break
            if redundant:
                self.stats.minimized_lits += 1
            else:
                out.append(lit)
        return out

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            v = abs(lit)
            if self.config.use_phase_saving:
                self._phase[v] = lit > 0
            self._value[v] = _UNASSIGNED
            self._reason[v] = None
            heapq.heappush(self._heap, (-self._activity[v], v))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ----- decisions ----------------------------------------------------------

    def _decide(self) -> Optional[int]:
        if self.config.use_vsids:
            v = 0
            while self._heap:
                neg_act, u = heapq.heappop(self._heap)
                if self._value[u] != _UNASSIGNED:
                    continue  # stale: assigned since it was pushed
                if -neg_act != self._activity[u]:
                    # Stale activity snapshot: requeue the fresh value.
                    heapq.heappush(self._heap, (-self._activity[u], u))
                    continue
                v = u
                break
            if v == 0:
                return None
        else:
            v = 0
            for u in range(1, self.num_vars + 1):
                if self._value[u] == _UNASSIGNED:
                    v = u
                    break
            if v == 0:
                return None
        return v if self._phase[v] else -v

    # ----- learned clause DB ----------------------------------------------------

    def _reduce_db(self) -> None:
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        kept: list[_Clause] = []
        removed = 0
        for i, clause in enumerate(self._learnts):
            locked = self._reason[abs(clause.lits[0])] is clause
            if i >= keep_from or locked or len(clause.lits) <= 2:
                kept.append(clause)
            else:
                if self.proof is not None:
                    self.proof.delete(clause.lits)
                self._detach(clause)
                removed += 1
        self._learnts = kept
        self.stats.deleted += removed

    def _detach(self, clause: _Clause) -> None:
        for lit in clause.lits[:2]:
            lst = self._watches[self._idx(-lit)]
            try:
                lst.remove(clause)
            except ValueError:  # pragma: no cover - defensive
                pass

    # ----- incremental interface -------------------------------------------------

    def backtrack_to_root(self) -> None:
        """Undo all decisions, keeping root-level assignments and learnts.

        Incremental callers must be at the root level before adding
        clauses between :meth:`solve` calls — :meth:`add_clause`'s
        level-0 simplification and unit handling assume it.
        """
        self._backtrack(0)

    # ----- checkpoint / resume ---------------------------------------------

    def checkpoint_state(self) -> dict:
        """Serialize everything a future solver needs to resume this search.

        Captured at the root level: the learned-clause database (with
        activities), root-level derived units, VSIDS activities and
        their increment, saved phases, and the Luby restart position.
        The dict is JSON-serializable; :mod:`repro.persist.checkpoint`
        wraps it in a checksummed on-disk envelope.  The original CNF
        is *not* included — learned clauses are only sound relative to
        the formula they were derived from, so the persistence layer
        keys checkpoints by a CNF fingerprint.
        """
        self._backtrack(0)
        return {
            "format": 1,
            "num_vars": self.num_vars,
            "ok": self._ok,
            "root_units": list(self._trail),
            "learnts": [
                {"lits": list(c.lits), "act": c.activity}
                for c in self._learnts
            ],
            "activity": list(self._activity[1:]),
            "phase": [1 if p else 0 for p in self._phase[1:]],
            "var_inc": self._var_inc,
            "cla_inc": self._cla_inc,
            "restarts": self._restart_count,
        }

    def restore_state(self, state: dict) -> int:
        """Re-install a :meth:`checkpoint_state` dict; returns learnts kept.

        Call after loading the *same* CNF the checkpoint was taken
        from (the persistence layer enforces this via fingerprinted
        keys; this method only sanity-checks the variable count).
        Restored learned clauses are re-filtered against the current
        root-level assignment, so restoring is safe even if level-0
        propagation ordered differently.  Raises :class:`ValueError`
        on a structural mismatch and refuses proof-logging solvers —
        a DRAT log cannot certify clauses whose derivations happened
        in a previous process.
        """
        if self.proof is not None:
            raise ValueError(
                "cannot restore a checkpoint into a proof-logging solver"
            )
        if int(state.get("format", 0)) != 1:
            raise ValueError("unsupported checkpoint format")
        if int(state["num_vars"]) != self.num_vars:
            raise ValueError(
                f"checkpoint has {state['num_vars']} vars,"
                f" solver has {self.num_vars}"
            )
        self._backtrack(0)
        if not state.get("ok", True):
            self._log_empty()
            self._ok = False
            return 0
        restored = 0
        for lit in state.get("root_units", ()):
            if not self.add_clause([int(lit)]):
                return restored  # checkpointed root units refute the CNF
        for item in state.get("learnts", ()):
            lits = [int(l) for l in item["lits"]]
            keep: list[int] = []
            satisfied = False
            for lit in lits:
                val = self._lit_value(lit)
                if val == 1:
                    satisfied = True  # already true at root: redundant
                    break
                if val == 0:
                    keep.append(lit)
            if satisfied:
                continue
            if not keep:
                self._log_empty()
                self._ok = False
                return restored
            if len(keep) == 1:
                if not self.add_clause(keep):
                    return restored
                restored += 1
                continue
            clause = _Clause(keep, learnt=True)
            clause.activity = float(item.get("act", 0.0))
            self._learnts.append(clause)
            self._attach(clause)
            restored += 1
        if self._propagate() is not None:
            self._log_empty()
            self._ok = False
        activity = state.get("activity", ())
        for v, act in enumerate(activity, start=1):
            if v <= self.num_vars:
                self._activity[v] = float(act)
        phase = state.get("phase", ())
        for v, ph in enumerate(phase, start=1):
            if v <= self.num_vars:
                self._phase[v] = bool(ph)
        self._var_inc = float(state.get("var_inc", 1.0))
        self._cla_inc = float(state.get("cla_inc", 1.0))
        self._restart_resume = int(state.get("restarts", 0))
        # Rebuild the decision heap so restored activities take effect.
        self._heap = [
            (-self._activity[v], v)
            for v in range(1, self.num_vars + 1)
            if self._value[v] == _UNASSIGNED
        ]
        heapq.heapify(self._heap)
        self.restored_learnts = restored
        if METRICS.enabled and restored:
            METRICS.counter_inc(
                "repro_checkpoint_learnts_restored_total", restored)
        return restored

    # ----- main search -----------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              budget: Optional["Budget"] = None) -> SatResult:
        """Search for a model, optionally under assumption literals.

        With a ``budget``, the search loop polls it at every conflict
        (and periodically between decisions) and answers UNKNOWN with
        :attr:`exhaust_report` populated when it runs out — cooperative
        cancellation, so no formula can hang the caller.

        :attr:`stats` keeps accumulating across calls (lifetime view);
        :attr:`last_stats` holds just this call's delta, which is what
        per-query reporting must use on incremental sessions.
        """
        before = self.stats.snapshot()
        # An UNSAT-under-assumptions answer leaves the assumption trail
        # in place; without a snapshot the *next* solve's backtrack(0)
        # would phase-save those assumption-forced values and bias its
        # search.  SAT answers keep their trail (model()) and their
        # phases (deliberate phase persistence across checks).
        phase_snapshot = list(self._phase) if assumptions else None
        result: Optional[SatResult] = None
        try:
            result = self._search(assumptions, budget)
            return result
        finally:
            if phase_snapshot is not None and result is SatResult.UNSAT:
                saving = self.config.use_phase_saving
                self.config.use_phase_saving = False
                try:
                    self._backtrack(0)
                finally:
                    self.config.use_phase_saving = saving
                phase_snapshot.extend(self._phase[len(phase_snapshot):])
                self._phase = phase_snapshot
            self.last_stats = self.stats.diff(before)
            if METRICS.enabled:
                delta = self.last_stats
                proc = METRICS.proc
                METRICS.counter_inc(
                    "repro_cdcl_decisions_total", delta.decisions, proc=proc)
                METRICS.counter_inc(
                    "repro_cdcl_conflicts_total", delta.conflicts, proc=proc)
                METRICS.counter_inc(
                    "repro_cdcl_propagations_total", delta.propagations,
                    proc=proc)
                METRICS.counter_inc(
                    "repro_cdcl_restarts_total", delta.restarts, proc=proc)
                METRICS.counter_inc(
                    "repro_cdcl_learned_total", delta.learned, proc=proc)
                METRICS.counter_inc(
                    "repro_cdcl_deleted_total", delta.deleted, proc=proc)
                METRICS.counter_inc(
                    "repro_cdcl_minimized_lits_total", delta.minimized_lits,
                    proc=proc)
                METRICS.counter_inc("repro_cdcl_solves_total", 1, proc=proc)

    def _search(self, assumptions: Sequence[int],
                budget: Optional["Budget"]) -> SatResult:
        if budget is None:
            budget = self.budget
        self.exhaust_report = None
        self._conflict_assumptions = []
        # The per-call conflict cap is a *delta* from this call's start,
        # so a reused (incremental) solver gets a fresh slice each call.
        conflicts_at_start = self.stats.conflicts
        if not self._ok:
            return SatResult.UNSAT
        self._backtrack(0)
        if self._propagate() is not None:
            self._log_empty()
            self._ok = False
            return SatResult.UNSAT
        decisions_since_check = 0

        self._restart_count = self._restart_resume
        conflicts_until_restart = (
            self.config.restart_base * _luby(self._restart_count + 1)
            if self.config.use_restarts else -1
        )
        conflicts_since_restart = 0
        max_learnts = max(
            1000, int(self.config.max_learnts_frac * max(1, len(self._clauses)))
        )

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if budget is not None:
                    budget.charge_conflicts(1)
                if not self._trail_lim:
                    self._log_empty()
                    self._ok = False
                    return SatResult.UNSAT
                learnt, bt_level = self._analyze(conflict)
                if self.proof is not None:
                    self.proof.add(learnt)
                self._backtrack(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self._attach(clause)
                    self._bump_clause(clause)
                    self.stats.learned += 1
                    if budget is not None:
                        budget.charge_learned(1)
                    self._enqueue(learnt[0], clause)
                self._decay_var()
                self._decay_clause()
                if budget is not None:
                    reason = budget.exhausted()
                    if reason is not None:
                        self.exhaust_report = budget.report(
                            reason, "CDCL search (conflict safepoint)"
                        )
                        return SatResult.UNKNOWN
                if (
                    self.config.max_conflicts is not None
                    and self.stats.conflicts - conflicts_at_start
                    >= self.config.max_conflicts
                ):
                    return SatResult.UNKNOWN
                continue

            if (
                self.config.use_restarts
                and conflicts_since_restart >= conflicts_until_restart
            ):
                self._restart_count += 1
                self.stats.restarts += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self.config.restart_base * _luby(
                    self._restart_count + 1
                )
                self._backtrack(0)
                continue

            if len(self._learnts) > max_learnts + len(self._trail):
                self._reduce_db()

            # Place assumptions as pseudo-decisions before real decisions.
            next_lit: Optional[int] = None
            decision_level = len(self._trail_lim)
            if decision_level < len(assumptions):
                a = assumptions[decision_level]
                self._ensure_vars(abs(a))
                val = self._lit_value(a)
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == -1:
                    self._conflict_assumptions = self._analyze_final(a, assumptions)
                    return SatResult.UNSAT
                next_lit = a
            else:
                next_lit = self._decide()
                if next_lit is None:
                    return SatResult.SAT
                self.stats.decisions += 1
                # Deadline safepoint for conflict-free stretches of search.
                decisions_since_check += 1
                if budget is not None and decisions_since_check >= 256:
                    decisions_since_check = 0
                    reason = budget.exhausted()
                    if reason is not None:
                        self.exhaust_report = budget.report(
                            reason, "CDCL search (decision safepoint)"
                        )
                        return SatResult.UNKNOWN
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, None)

    def _analyze_final(self, failed: int, assumptions: Sequence[int]) -> list[int]:
        """Compute the subset of assumptions implying ``-failed`` (unsat core)."""
        assumption_set = set(assumptions)
        core = {failed}
        seen = [False] * (self.num_vars + 1)
        seen[abs(failed)] = True
        for lit in reversed(self._trail):
            v = abs(lit)
            if not seen[v]:
                continue
            reason = self._reason[v]
            if reason is None:
                if lit in assumption_set:
                    core.add(lit)
            else:
                for q in reason.lits:
                    if self._level[abs(q)] > 0:
                        seen[abs(q)] = True
        return sorted(core, key=abs)

    def unsat_assumptions(self) -> list[int]:
        """Assumption literals involved in the last UNSAT answer."""
        return list(self._conflict_assumptions)

    def model(self) -> list[bool]:
        """The satisfying assignment (1-indexed; index 0 is unused)."""
        out = [False] * (self.num_vars + 1)
        for v in range(1, self.num_vars + 1):
            out[v] = self._value[v] == 1
        return out


def solve_cnf(
    cnf: CNF, config: Optional[CDCLConfig] = None,
    budget: Optional["Budget"] = None,
) -> tuple[SatResult, Optional[list[bool]], SatStats]:
    """One-shot convenience wrapper: solve a CNF and return (result, model, stats)."""
    solver = CDCLSolver(cnf.num_vars, config, budget=budget)
    if not solver.add_cnf(cnf):
        return SatResult.UNSAT, None, solver.stats
    result = solver.solve()
    model = solver.model() if result is SatResult.SAT else None
    return result, model, solver.stats
