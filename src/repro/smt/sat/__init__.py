"""SAT solving engines for the SMT substrate.

Two engines ship with the reproduction:

* :class:`repro.smt.sat.cdcl.CDCLSolver` — the production engine:
  conflict-driven clause learning with two-watched-literal propagation,
  VSIDS decision heuristic, first-UIP learning with clause minimization,
  Luby restarts and phase saving.
* :class:`repro.smt.sat.dpll.DPLLSolver` — a plain chronological-
  backtracking baseline used in the SAT-feature ablation benchmark.
"""

from .cdcl import CDCLConfig, CDCLSolver, SatResult, SatStats
from .dpll import DPLLSolver

__all__ = ["CDCLConfig", "CDCLSolver", "DPLLSolver", "SatResult", "SatStats"]
