"""A plain DPLL SAT solver (no learning, chronological backtracking).

This is the ablation baseline for the CDCL engine (experiment A2 in
DESIGN.md): unit propagation plus chronological backtracking over the
first unassigned variable.  It shares the DIMACS literal convention
with :class:`repro.smt.sat.cdcl.CDCLSolver`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..cnf import CNF
from .cdcl import SatResult, SatStats


class DPLLSolver:
    """Recursive-style DPLL with an explicit trail (iterative backtracking)."""

    def __init__(self, num_vars: int = 0, max_decisions: Optional[int] = None):
        self.num_vars = num_vars
        self.max_decisions = max_decisions
        self.stats = SatStats()
        self._clauses: list[list[int]] = []
        self._ok = True

    def add_clause(self, lits: Iterable[int]) -> bool:
        clause = []
        seen: set[int] = set()
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(lit))
            if -lit in seen:
                return True
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._ok = False
            return False
        self._clauses.append(clause)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        self.num_vars = max(self.num_vars, cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    def solve(self) -> SatResult:
        if not self._ok:
            return SatResult.UNSAT
        value: list[int] = [0] * (self.num_vars + 1)
        # Trail entries: (literal, is_decision)
        trail: list[tuple[int, bool]] = []
        self._value = value

        def lit_val(lit: int) -> int:
            v = value[abs(lit)]
            return v if lit > 0 else -v

        def propagate() -> bool:
            """Naive unit propagation to fixpoint; False on conflict."""
            changed = True
            while changed:
                changed = False
                for clause in self._clauses:
                    unassigned = None
                    n_unassigned = 0
                    satisfied = False
                    for lit in clause:
                        val = lit_val(lit)
                        if val == 1:
                            satisfied = True
                            break
                        if val == 0:
                            unassigned = lit
                            n_unassigned += 1
                    if satisfied:
                        continue
                    if n_unassigned == 0:
                        return False
                    if n_unassigned == 1:
                        value[abs(unassigned)] = 1 if unassigned > 0 else -1
                        trail.append((unassigned, False))
                        self.stats.propagations += 1
                        changed = True
            return True

        def backtrack() -> Optional[int]:
            """Undo to the most recent unflipped decision; return its literal."""
            while trail:
                lit, is_decision = trail.pop()
                value[abs(lit)] = 0
                if is_decision:
                    return lit
            return None

        flipped: set[int] = set()  # decision literals already flipped (by depth)
        depth_flipped: list[bool] = []

        while True:
            if not propagate():
                self.stats.conflicts += 1
                # Chronological backtracking with flip.
                while True:
                    lit = backtrack()
                    if lit is None:
                        return SatResult.UNSAT
                    was_flipped = depth_flipped.pop()
                    if not was_flipped:
                        value[abs(lit)] = -1 if lit > 0 else 1
                        trail.append((-lit, True))
                        depth_flipped.append(True)
                        break
                continue
            # Pick the first unassigned variable.
            var = 0
            for v in range(1, self.num_vars + 1):
                if value[v] == 0:
                    var = v
                    break
            if var == 0:
                return SatResult.SAT
            self.stats.decisions += 1
            if self.max_decisions is not None and self.stats.decisions > self.max_decisions:
                return SatResult.UNKNOWN
            value[var] = -1  # try False first, mirroring CDCL's default phase
            trail.append((-var, True))
            depth_flipped.append(False)

    def model(self) -> list[bool]:
        return [v == 1 for v in self._value]


def solve_cnf_dpll(cnf: CNF) -> tuple[SatResult, Optional[list[bool]]]:
    """One-shot DPLL solve of a CNF."""
    solver = DPLLSolver()
    if not solver.add_cnf(cnf):
        return SatResult.UNSAT, None
    result = solver.solve()
    return result, solver.model() if result is SatResult.SAT else None
