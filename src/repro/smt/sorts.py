"""Sorts for the SMT term language.

The Buffy reproduction only needs two sorts — booleans and (bounded)
integers — mirroring the paper's §7 restriction to "integers, booleans,
and buffers".  Integers are conceptually unbounded at the term level;
the solving pipeline derives finite bit-widths per variable from
user-supplied or inferred interval bounds (see ``repro.smt.intervals``).
"""

from __future__ import annotations

import enum


class Sort(enum.Enum):
    """The sort (type) of an SMT term."""

    BOOL = "Bool"
    INT = "Int"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


BOOL = Sort.BOOL
INT = Sort.INT
