"""SMT substrate: the reproduction's stand-in for Z3.

Layers (bottom-up):

* :mod:`repro.smt.sat` — CDCL / DPLL SAT engines over DIMACS literals.
* :mod:`repro.smt.cnf` — CNF container and DIMACS I/O.
* :mod:`repro.smt.terms` — hash-consed Bool/Int term DAG.
* :mod:`repro.smt.intervals` — bounds analysis (exact bit-widths).
* :mod:`repro.smt.bitblast` — Tseitin bit-blasting to CNF.
* :mod:`repro.smt.solver` — assert/check/model facade.
* :mod:`repro.smt.smtlib` — SMT-LIB v2 printing and parsing.
"""

from .intervals import BoundsEnv, Interval
from .model import Model
from .solver import CheckResult, SmtSolver, is_satisfiable, prove
from .sorts import BOOL, INT, Sort
from .terms import (
    FALSE,
    ONE,
    TRUE,
    ZERO,
    Op,
    Term,
    dag_size,
    evaluate,
    free_vars,
    fresh_var,
    iter_dag,
    mk_add,
    mk_and,
    mk_bool,
    mk_bool_to_int,
    mk_bool_var,
    mk_distinct,
    mk_eq,
    mk_iff,
    mk_implies,
    mk_int,
    mk_int_var,
    mk_ite,
    mk_le,
    mk_lt,
    mk_max,
    mk_min,
    mk_mul,
    mk_neg,
    mk_not,
    mk_or,
    mk_sub,
    mk_sum,
    mk_var,
    substitute,
    to_sexpr,
)

__all__ = [
    "BOOL",
    "INT",
    "BoundsEnv",
    "CheckResult",
    "FALSE",
    "Interval",
    "Model",
    "ONE",
    "Op",
    "SmtSolver",
    "Sort",
    "TRUE",
    "Term",
    "ZERO",
    "dag_size",
    "evaluate",
    "free_vars",
    "fresh_var",
    "is_satisfiable",
    "iter_dag",
    "mk_add",
    "mk_and",
    "mk_bool",
    "mk_bool_to_int",
    "mk_bool_var",
    "mk_distinct",
    "mk_eq",
    "mk_iff",
    "mk_implies",
    "mk_int",
    "mk_int_var",
    "mk_ite",
    "mk_le",
    "mk_lt",
    "mk_max",
    "mk_min",
    "mk_mul",
    "mk_neg",
    "mk_not",
    "mk_or",
    "mk_sub",
    "mk_sum",
    "mk_var",
    "prove",
    "substitute",
    "to_sexpr",
]
