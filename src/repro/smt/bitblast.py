"""Bit-blasting: terms over bounded integers → CNF.

The pipeline is:

1. interval analysis assigns every integer node an exact interval
   (:mod:`repro.smt.intervals`);
2. every integer node becomes a two's-complement bit-vector whose width
   is the interval's signed width — so arithmetic never overflows and
   the encoding is *exact*;
3. boolean structure is translated with Tseitin gates, with structural
   hashing so shared subformulas share circuitry;
4. integer variables get range side-constraints (``lo <= x <= hi``).

The result is a :class:`repro.smt.cnf.CNF` plus a :class:`VarMap` for
decoding SAT models back into integer/boolean assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..obs import TRACER
from .cnf import CNF
from .intervals import BoundsEnv, Interval, infer_intervals
from .sorts import BOOL, INT
from .terms import Op, Term, iter_dag

if TYPE_CHECKING:  # Budget stays duck-typed to avoid an import cycle
    from ..runtime.budget import Budget


@dataclass
class VarMap:
    """Decoder from SAT models to term-level assignments."""

    bool_vars: dict[str, int] = field(default_factory=dict)  # name -> literal
    int_vars: dict[str, list[int]] = field(default_factory=dict)  # name -> LSB-first lits

    def decode(self, model: Sequence[bool]) -> dict[str, Union[bool, int]]:
        """Decode a SAT model (1-indexed bool list) into var assignments."""
        out: dict[str, Union[bool, int]] = {}
        for name, lit in self.bool_vars.items():
            out[name] = _lit_value(model, lit)
        for name, bits in self.int_vars.items():
            out[name] = decode_twos_complement(
                [_lit_value(model, b) for b in bits]
            )
        return out


def _lit_value(model: Sequence[bool], lit: int) -> bool:
    return model[lit] if lit > 0 else not model[-lit]


def decode_twos_complement(bits: Sequence[bool]) -> int:
    """Interpret an LSB-first bit list as a signed integer."""
    value = 0
    for i, b in enumerate(bits[:-1]):
        if b:
            value |= 1 << i
    if bits[-1]:
        value -= 1 << (len(bits) - 1)
    return value


class BitBlaster:
    """Translates hash-consed terms into CNF with Tseitin gates."""

    def __init__(self, cnf: Optional[CNF] = None, bounds: Optional[BoundsEnv] = None,
                 budget: Optional["Budget"] = None):
        self.cnf = cnf or CNF()
        self.bounds = bounds or BoundsEnv()
        self.budget = budget
        self.varmap = VarMap()
        # The constant-true literal: lets constant bits be plain literals.
        self._true = self.cnf.new_var()
        self.cnf.add_clause([self._true])
        self._bool_cache: dict[int, int] = {}  # id(term) -> literal
        self._bits_cache: dict[int, list[int]] = {}  # id(term) -> LSB-first lits
        self._gate_cache: dict[tuple, int] = {}
        self._intervals: dict[int, Interval] = {}
        self._lits_since_check = 0

    # ----- public API -------------------------------------------------------

    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    def assert_formula(self, formula: Term) -> None:
        """Bit-blast ``formula`` and assert it as a unit clause."""
        if formula.sort is not BOOL:
            raise TypeError("can only assert Bool terms")
        with TRACER.span("interval-inference"):
            self._intervals.update(
                infer_intervals(formula, self.bounds, budget=self.budget)
            )
        # The Tseitin span covers the whole gate-clause encoding; the
        # per-gate inner loop stays span-free (it is the hot path).
        with TRACER.span("tseitin") as sp:
            clauses_before = len(self.cnf.clauses)
            lit = self._blast_bool(formula)
            self.cnf.add_clause([lit])
            sp.set("clauses", len(self.cnf.clauses) - clauses_before)

    def literal_for(self, formula: Term) -> int:
        """Bit-blast ``formula`` and return its literal without asserting it."""
        if formula.sort is not BOOL:
            raise TypeError("expected a Bool term")
        self._intervals.update(infer_intervals(formula, self.bounds))
        return self._blast_bool(formula)

    # ----- gate constructors --------------------------------------------------

    def _new_lit(self) -> int:
        # Safepoint: gate construction is where encoding time goes, so a
        # deadline is honored within a few thousand gates.
        self._lits_since_check += 1
        if self.budget is not None and self._lits_since_check >= 2048:
            self._lits_since_check = 0
            self.budget.checkpoint("bit-blasting")
        return self.cnf.new_var()

    def _gate_and(self, lits: Sequence[int]) -> int:
        lits = [l for l in lits if l != self._true]
        if any(l == -self._true for l in lits):
            return -self._true
        uniq = sorted(set(lits), key=abs)
        for l in uniq:
            if -l in uniq:
                return -self._true
        if not uniq:
            return self._true
        if len(uniq) == 1:
            return uniq[0]
        key = ("and", tuple(uniq))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        g = self._new_lit()
        for l in uniq:
            self.cnf.add_clause([-g, l])
        self.cnf.add_clause([g] + [-l for l in uniq])
        self._gate_cache[key] = g
        return g

    def _gate_or(self, lits: Sequence[int]) -> int:
        return -self._gate_and([-l for l in lits])

    def _gate_xor(self, a: int, b: int) -> int:
        if a == self._true:
            return -b
        if a == -self._true:
            return b
        if b == self._true:
            return -a
        if b == -self._true:
            return a
        if a == b:
            return -self._true
        if a == -b:
            return self._true
        # xor(-a, b) == -xor(a, b): normalize both literals to positive
        # polarity and track whether the result must be negated.
        negate = False
        if a < 0:
            a = -a
            negate = not negate
        if b < 0:
            b = -b
            negate = not negate
        norm_a, norm_b = sorted((a, b))
        key = ("xor", norm_a, norm_b)
        cached = self._gate_cache.get(key)
        if cached is None:
            g = self._new_lit()
            self.cnf.add_clause([-g, norm_a, norm_b])
            self.cnf.add_clause([-g, -norm_a, -norm_b])
            self.cnf.add_clause([g, -norm_a, norm_b])
            self.cnf.add_clause([g, norm_a, -norm_b])
            self._gate_cache[key] = g
            cached = g
        return -cached if negate else cached

    def _gate_iff(self, a: int, b: int) -> int:
        return -self._gate_xor(a, b)

    def _gate_ite(self, c: int, t: int, e: int) -> int:
        if c == self._true:
            return t
        if c == -self._true:
            return e
        if t == e:
            return t
        if t == self._true:
            return self._gate_or([c, e])
        if t == -self._true:
            return self._gate_and([-c, e])
        if e == self._true:
            return self._gate_or([-c, t])
        if e == -self._true:
            return self._gate_and([c, t])
        key = ("ite", c, t, e)
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        g = self._new_lit()
        self.cnf.add_clause([-g, -c, t])
        self.cnf.add_clause([-g, c, e])
        self.cnf.add_clause([g, -c, -t])
        self.cnf.add_clause([g, c, -e])
        # Redundant but propagation-helpful clauses:
        self.cnf.add_clause([-g, t, e])
        self.cnf.add_clause([g, -t, -e])
        self._gate_cache[key] = g
        return g

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Returns (sum, carry-out)."""
        s1 = self._gate_xor(a, b)
        total = self._gate_xor(s1, cin)
        c1 = self._gate_and([a, b])
        c2 = self._gate_and([s1, cin])
        cout = self._gate_or([c1, c2])
        return total, cout

    # ----- integer vectors -------------------------------------------------------

    def _const_bits(self, value: int, width: int) -> list[int]:
        bits = []
        v = value & ((1 << width) - 1)
        for i in range(width):
            bits.append(self._true if (v >> i) & 1 else -self._true)
        return bits

    def _sign_extend(self, bits: list[int], width: int) -> list[int]:
        if len(bits) >= width:
            return bits[:width]
        return bits + [bits[-1]] * (width - len(bits))

    def _interval_of(self, node: Term) -> Interval:
        iv = self._intervals.get(id(node))
        if iv is None:  # node reached outside assert_formula (defensive)
            self._intervals.update(infer_intervals(node, self.bounds))
            iv = self._intervals[id(node)]
        return iv

    def _width_of(self, node: Term) -> int:
        return self._interval_of(node).width_signed()

    def _int_var_bits(self, node: Term) -> list[int]:
        name = node.name
        existing = self.varmap.int_vars.get(name)
        if existing is not None:
            return existing
        iv = self._interval_of(node)
        width = iv.width_signed()
        bits = [self._new_lit() for _ in range(width)]
        self.varmap.int_vars[name] = bits
        # Range side constraints (skip when the width is already exact).
        lo_bits = self._const_bits(iv.lo, width)
        hi_bits = self._const_bits(iv.hi, width)
        if iv.lo != -(1 << (width - 1)):
            self.cnf.add_clause([self._signed_le(lo_bits, bits)])
        if iv.hi != (1 << (width - 1)) - 1:
            self.cnf.add_clause([self._signed_le(bits, hi_bits)])
        return bits

    def _add_vectors(self, a: list[int], b: list[int], width: int, cin: int) -> list[int]:
        a = self._sign_extend(a, width)
        b = self._sign_extend(b, width)
        out = []
        carry = cin
        for i in range(width):
            s, carry = self._full_adder(a[i], b[i], carry)
            out.append(s)
        return out

    def _neg_vector(self, a: list[int], width: int) -> list[int]:
        inv = [-x for x in self._sign_extend(a, width)]
        return self._add_vectors(inv, self._const_bits(0, width), width, self._true)

    def _mul_vectors(self, a: list[int], b: list[int], width: int) -> list[int]:
        a = self._sign_extend(a, width)
        b = self._sign_extend(b, width)
        acc = self._const_bits(0, width)
        for i in range(width):
            row = [-self._true] * i
            for j in range(width - i):
                row.append(self._gate_and([b[i], a[j]]))
            acc = self._add_vectors(acc, row, width, -self._true)
        return acc

    def _signed_lt(self, a: list[int], b: list[int]) -> int:
        width = max(len(a), len(b))
        a = self._sign_extend(a, width)
        b = self._sign_extend(b, width)
        sa, sb = a[-1], b[-1]
        # lt on magnitudes, MSB-first among bits below the sign bit.
        lt = -self._true
        for i in range(width - 1):
            bit_lt = self._gate_and([-a[i], b[i]])
            bit_eq = self._gate_iff(a[i], b[i])
            lt = self._gate_or([bit_lt, self._gate_and([bit_eq, lt])])
        same_sign = self._gate_iff(sa, sb)
        return self._gate_or(
            [
                self._gate_and([sa, -sb]),  # a negative, b non-negative
                self._gate_and([same_sign, lt]),
            ]
        )

    def _signed_le(self, a: list[int], b: list[int]) -> int:
        return -self._signed_lt(b, a)

    def _vectors_eq(self, a: list[int], b: list[int]) -> int:
        width = max(len(a), len(b))
        a = self._sign_extend(a, width)
        b = self._sign_extend(b, width)
        return self._gate_and([self._gate_iff(x, y) for x, y in zip(a, b)])

    # ----- recursive translation ----------------------------------------------------

    def _blast_bool(self, node: Term) -> int:
        cached = self._bool_cache.get(id(node))
        if cached is not None:
            return cached
        lit = self._compute_bool(node)
        self._bool_cache[id(node)] = lit
        return lit

    def _compute_bool(self, node: Term) -> int:
        op = node.op
        if op is Op.CONST:
            return self._true if node.value else -self._true
        if op is Op.VAR:
            name = node.name
            existing = self.varmap.bool_vars.get(name)
            if existing is not None:
                return existing
            lit = self._new_lit()
            self.varmap.bool_vars[name] = lit
            return lit
        if op is Op.NOT:
            return -self._blast_bool(node.args[0])
        if op is Op.AND:
            return self._gate_and([self._blast_bool(a) for a in node.args])
        if op is Op.OR:
            return self._gate_or([self._blast_bool(a) for a in node.args])
        if op is Op.XOR:
            return self._gate_xor(
                self._blast_bool(node.args[0]), self._blast_bool(node.args[1])
            )
        if op is Op.IMPLIES:
            return self._gate_or(
                [-self._blast_bool(node.args[0]), self._blast_bool(node.args[1])]
            )
        if op is Op.EQ:
            a, b = node.args
            if a.sort is BOOL:
                return self._gate_iff(self._blast_bool(a), self._blast_bool(b))
            return self._vectors_eq(self._blast_int(a), self._blast_int(b))
        if op is Op.LT:
            return self._signed_lt(
                self._blast_int(node.args[0]), self._blast_int(node.args[1])
            )
        if op is Op.LE:
            return self._signed_le(
                self._blast_int(node.args[0]), self._blast_int(node.args[1])
            )
        raise ValueError(f"unexpected Bool operator {op}")  # pragma: no cover

    def _blast_int(self, node: Term) -> list[int]:
        cached = self._bits_cache.get(id(node))
        if cached is not None:
            return cached
        bits = self._compute_int(node)
        self._bits_cache[id(node)] = bits
        return bits

    def _compute_int(self, node: Term) -> list[int]:
        op = node.op
        width = self._width_of(node)
        if op is Op.CONST:
            return self._const_bits(node.value, width)  # type: ignore[arg-type]
        if op is Op.VAR:
            return self._int_var_bits(node)
        if op is Op.ADD:
            acc = self._blast_int(node.args[0])
            for arg in node.args[1:]:
                acc = self._add_vectors(acc, self._blast_int(arg), width, -self._true)
            return self._sign_extend(acc, width)
        if op is Op.SUB:
            a = self._sign_extend(self._blast_int(node.args[0]), width)
            b = self._sign_extend(self._blast_int(node.args[1]), width)
            return self._add_vectors(a, [-x for x in b], width, self._true)
        if op is Op.NEG:
            return self._neg_vector(self._blast_int(node.args[0]), width)
        if op is Op.MUL:
            return self._mul_vectors(
                self._blast_int(node.args[0]), self._blast_int(node.args[1]), width
            )
        if op is Op.ITE:
            cond = self._blast_bool(node.args[0])
            t = self._sign_extend(self._blast_int(node.args[1]), width)
            e = self._sign_extend(self._blast_int(node.args[2]), width)
            return [self._gate_ite(cond, x, y) for x, y in zip(t, e)]
        raise ValueError(f"unexpected Int operator {op}")  # pragma: no cover


def bitblast(
    formulas: Sequence[Term], bounds: Optional[BoundsEnv] = None
) -> tuple[CNF, VarMap]:
    """Bit-blast a conjunction of formulas; returns (CNF, decoder)."""
    blaster = BitBlaster(bounds=bounds)
    for f in formulas:
        blaster.assert_formula(f)
    return blaster.cnf, blaster.varmap
