"""Interval (bounds) analysis over the term DAG.

Buffy's language-level restrictions (§7 of the paper: bounded loops,
bounded arrays, bounded buffers) mean every integer in a compiled
program has static bounds.  This module propagates per-variable bounds
bottom-up through a formula so the bit-blaster can pick an exact finite
width for every node — making SAT-based solving *complete* for the
fragment, which is what justifies substituting Z3 with our own stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .sorts import INT
from .terms import Op, Term, iter_dag


@dataclass(frozen=True)
class Interval:
    """A closed integer interval [lo, hi]."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def width_signed(self) -> int:
        """Bits needed to represent every value in two's complement."""
        return max(signed_bits(self.lo), signed_bits(self.hi))

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(corners), max(corners))


def signed_bits(value: int) -> int:
    """Minimal two's-complement width that represents ``value``."""
    w = 1
    while not (-(1 << (w - 1)) <= value <= (1 << (w - 1)) - 1):
        w += 1
    return w


DEFAULT_VAR_INTERVAL = Interval(-(1 << 15), (1 << 15) - 1)


class BoundsEnv:
    """Variable bounds used by the analysis and the bit-blaster.

    Bounds are keyed by variable *name*.  Unknown variables fall back to
    ``default`` (16-bit signed by default) so hand-written encodings work
    without declaring every bound, at the cost of wider bit-vectors.
    """

    def __init__(
        self,
        bounds: Optional[Mapping[str, Interval]] = None,
        default: Interval = DEFAULT_VAR_INTERVAL,
    ):
        self._bounds: dict[str, Interval] = dict(bounds or {})
        self.default = default

    def set(self, name: str, lo: int, hi: int) -> None:
        self._bounds[name] = Interval(lo, hi)

    def get(self, name: str) -> Interval:
        return self._bounds.get(name, self.default)

    def declared(self, name: str) -> bool:
        return name in self._bounds

    def items(self):
        return self._bounds.items()

    def copy(self) -> "BoundsEnv":
        return BoundsEnv(self._bounds, self.default)


def infer_intervals(root: Term, env: BoundsEnv,
                    budget=None) -> dict[int, Interval]:
    """Map ``id(node) -> Interval`` for every INT node under ``root``.

    ``budget`` (a :class:`repro.runtime.budget.Budget`, duck-typed) is
    polled periodically so inference over huge unrolled DAGs respects a
    wall-clock deadline.
    """
    out: dict[int, Interval] = {}
    visited = 0
    for node in iter_dag(root):
        visited += 1
        if budget is not None and (visited & 0x1FFF) == 0x1FFF:
            budget.checkpoint("interval inference")
        if node.sort is not INT:
            continue
        out[id(node)] = _node_interval(node, out, env)
    return out


def _node_interval(node: Term, cache: dict[int, Interval], env: BoundsEnv) -> Interval:
    if node.is_const:
        v = node.value
        return Interval(v, v)  # type: ignore[arg-type]
    if node.is_var:
        return env.get(node.name)
    args = [cache[id(a)] for a in node.args if a.sort is INT]
    if node.op is Op.ADD:
        acc = args[0]
        for iv in args[1:]:
            acc = acc + iv
        return acc
    if node.op is Op.SUB:
        return args[0] - args[1]
    if node.op is Op.NEG:
        return -args[0]
    if node.op is Op.MUL:
        return args[0] * args[1]
    if node.op is Op.ITE:
        return args[0].join(args[1])  # ITE's int args are (then, else)
    raise ValueError(f"unexpected INT operator {node.op}")  # pragma: no cover
