"""SMT-LIB v2 export and import.

§4 of the paper: "The SMT problem can be written in the standard
SMT-LIB format supported by different SMT solvers."  This module
renders a set of assertions as an SMT-LIB v2 script (so a user with a
real Z3/cvc5 can check our benchmarks independently), and parses the
same fragment back (used for round-trip tests).

Supported fragment: ``declare-const`` over Int/Bool, ``assert`` with
the operators of :class:`repro.smt.terms.Op`, ``check-sat``.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional, Sequence, Union

from .sorts import BOOL, INT
from .terms import (
    FALSE,
    TRUE,
    Op,
    Term,
    free_vars,
    mk_add,
    mk_and,
    mk_bool,
    mk_eq,
    mk_implies,
    mk_int,
    mk_ite,
    mk_le,
    mk_lt,
    mk_mul,
    mk_neg,
    mk_not,
    mk_or,
    mk_sub,
    mk_var,
    mk_xor,
)

_NAME_SAFE = re.compile(r"^[A-Za-z_~!@$%^&*+=<>.?/-][A-Za-z0-9_~!@$%^&*+=<>.?/-]*$")


def _smt_name(name: str) -> str:
    if _NAME_SAFE.match(name):
        return name
    escaped = name.replace("|", "_")
    return f"|{escaped}|"


_OP_NAMES = {
    Op.NOT: "not",
    Op.AND: "and",
    Op.OR: "or",
    Op.XOR: "xor",
    Op.IMPLIES: "=>",
    Op.EQ: "=",
    Op.ITE: "ite",
    Op.ADD: "+",
    Op.SUB: "-",
    Op.NEG: "-",
    Op.MUL: "*",
    Op.LT: "<",
    Op.LE: "<=",
}


def _atom_to_smtlib(term: Term) -> Optional[str]:
    if term.is_var:
        return _smt_name(term.name)
    if term.is_const:
        if term.sort is BOOL:
            return "true" if term.value else "false"
        v = term.value
        return str(v) if v >= 0 else f"(- {-v})"
    return None


def term_to_smtlib(term: Term) -> str:
    """Render one term as an SMT-LIB expression.

    Shared subterms (the DAG is hash-consed, so sharing is pervasive
    in compiled programs) are bound with nested ``let``s — expanding
    to a tree would be exponential.
    """
    import sys

    from .terms import iter_dag

    # Rendering recurses over unshared spines; deep per-step ite chains
    # in compiled programs can exceed the default recursion limit.
    limit = sys.getrecursionlimit()
    if limit < 100_000:
        sys.setrecursionlimit(100_000)

    refs: dict[int, int] = {}
    for node in iter_dag(term):
        for arg in node.args:
            refs[id(arg)] = refs.get(id(arg), 0) + 1

    names: dict[int, str] = {}
    bindings: list[tuple[str, str]] = []

    def render(node: Term) -> str:
        atom = _atom_to_smtlib(node)
        if atom is not None:
            return atom
        bound = names.get(id(node))
        if bound is not None:
            return bound
        args = " ".join(render(a) for a in node.args)
        text = f"({_OP_NAMES[node.op]} {args})"
        if refs.get(id(node), 0) > 1:
            name = f"$t{len(bindings)}"
            bindings.append((name, text))
            names[id(node)] = name
            return name
        return text

    body = render(term)
    for name, text in reversed(bindings):
        body = f"(let (({name} {text})) {body})"
    return body


def to_smtlib(
    assertions: Sequence[Term],
    logic: str = "QF_LIA",
    bounds: Optional[dict[str, tuple[int, int]]] = None,
) -> str:
    """Render a full SMT-LIB v2 script for the given assertions.

    Declared bounds are emitted as extra range assertions so external
    solvers see the same (bounded) problem our pipeline decides.
    """
    lines = [f"(set-logic {logic})"]
    declared: set[str] = set()
    for formula in assertions:
        for var in free_vars(formula):
            if var.name in declared:
                continue
            declared.add(var.name)
            lines.append(
                f"(declare-const {_smt_name(var.name)} {var.sort.value})"
            )
    for name, (lo, hi) in (bounds or {}).items():
        if name in declared:
            safe = _smt_name(name)
            lines.append(f"(assert (<= {lo} {safe}))")
            lines.append(f"(assert (<= {safe} {hi}))")
    for formula in assertions:
        lines.append(f"(assert {term_to_smtlib(formula)})")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


# ----- parsing ----------------------------------------------------------------


class SmtLibParseError(ValueError):
    """Raised when SMT-LIB input cannot be parsed."""


_TOKEN = re.compile(r"\(|\)|\|[^|]*\||[^\s()]+")

SExpr = Union[str, list]


def _tokenize(text: str) -> Iterator[str]:
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0]
        for match in _TOKEN.finditer(line):
            yield match.group(0)


def _parse_sexprs(tokens: list[str]) -> list[SExpr]:
    out: list[SExpr] = []
    stack: list[list[SExpr]] = []
    for tok in tokens:
        if tok == "(":
            stack.append([])
        elif tok == ")":
            if not stack:
                raise SmtLibParseError("unbalanced ')'")
            done = stack.pop()
            (stack[-1] if stack else out).append(done)
        else:
            (stack[-1] if stack else out).append(tok)
    if stack:
        raise SmtLibParseError("unbalanced '('")
    return out


class SmtLibScript:
    """A parsed script: declarations plus assertions as terms."""

    def __init__(self) -> None:
        self.declarations: dict[str, Term] = {}
        self.assertions: list[Term] = []
        self.logic: Optional[str] = None
        self.has_check_sat = False


def parse_smtlib(text: str) -> SmtLibScript:
    """Parse the supported SMT-LIB fragment into terms."""
    script = SmtLibScript()
    for form in _parse_sexprs(list(_tokenize(text))):
        if not isinstance(form, list) or not form:
            raise SmtLibParseError(f"unexpected top-level atom: {form!r}")
        head = form[0]
        if head == "set-logic":
            script.logic = str(form[1])
        elif head == "declare-const":
            name = _unquote(str(form[1]))
            sort = {"Int": INT, "Bool": BOOL}.get(str(form[2]))
            if sort is None:
                raise SmtLibParseError(f"unsupported sort {form[2]!r}")
            script.declarations[name] = mk_var(name, sort)
        elif head == "declare-fun":
            if form[2] != []:
                raise SmtLibParseError("only 0-ary declare-fun supported")
            name = _unquote(str(form[1]))
            sort = {"Int": INT, "Bool": BOOL}.get(str(form[3]))
            if sort is None:
                raise SmtLibParseError(f"unsupported sort {form[3]!r}")
            script.declarations[name] = mk_var(name, sort)
        elif head == "assert":
            script.assertions.append(_sexpr_to_term(form[1], script.declarations))
        elif head == "check-sat":
            script.has_check_sat = True
        elif head in ("set-option", "set-info", "get-model", "exit"):
            continue
        else:
            raise SmtLibParseError(f"unsupported command {head!r}")
    return script


def _unquote(name: str) -> str:
    if name.startswith("|") and name.endswith("|"):
        return name[1:-1]
    return name


def _sexpr_to_term(sexpr: SExpr, env: dict[str, Term]) -> Term:
    if isinstance(sexpr, str):
        if sexpr == "true":
            return TRUE
        if sexpr == "false":
            return FALSE
        if re.fullmatch(r"-?\d+", sexpr):
            return mk_int(int(sexpr))
        name = _unquote(sexpr)
        if name not in env:
            raise SmtLibParseError(f"undeclared symbol {name!r}")
        return env[name]
    if not sexpr:
        raise SmtLibParseError("empty application")
    head = sexpr[0]
    if head == "let":
        inner = dict(env)
        for binding in sexpr[1]:
            if not (isinstance(binding, list) and len(binding) == 2):
                raise SmtLibParseError("malformed let binding")
            # SMT-LIB let is parallel; our writer only emits nested
            # single-binding lets, and parallel semantics coincide here
            # because each binding is evaluated against the outer env.
            inner[_unquote(str(binding[0]))] = _sexpr_to_term(binding[1], env)
        return _sexpr_to_term(sexpr[2], inner)
    args = [_sexpr_to_term(a, env) for a in sexpr[1:]]
    if head == "not":
        return mk_not(*args)
    if head == "and":
        return mk_and(*args)
    if head == "or":
        return mk_or(*args)
    if head == "xor":
        return mk_xor(*args)
    if head == "=>":
        term = args[-1]
        for a in reversed(args[:-1]):
            term = mk_implies(a, term)
        return term
    if head == "=":
        conjuncts = [mk_eq(a, b) for a, b in zip(args, args[1:])]
        return mk_and(*conjuncts) if len(conjuncts) > 1 else conjuncts[0]
    if head == "ite":
        return mk_ite(*args)
    if head == "+":
        return mk_add(*args)
    if head == "-":
        if len(args) == 1:
            return mk_neg(args[0])
        term = args[0]
        for a in args[1:]:
            term = mk_sub(term, a)
        return term
    if head == "*":
        term = args[0]
        for a in args[1:]:
            term = mk_mul(term, a)
        return term
    if head == "<":
        return mk_lt(*args)
    if head == "<=":
        return mk_le(*args)
    if head == ">":
        return mk_lt(args[1], args[0])
    if head == ">=":
        return mk_le(args[1], args[0])
    raise SmtLibParseError(f"unsupported operator {head!r}")
