"""Term simplification beyond constructor-level normalization.

The ``mk_*`` constructors already fold constants and apply local
identities.  This module adds a memoized bottom-up rewriter with rules
that specifically target the patterns guarded symbolic execution
produces in bulk:

* **nested same-guard ite fusion** — ``ite(c, ite(c, a, _), b) →
  ite(c, a, b)`` and ``ite(c, a, ite(c, _, b)) → ite(c, a, b)``.
  Sequential guarded updates re-test the same path guard constantly.
* **comparison/ite lifting** — ``cmp(ite(c, a, b), k)`` with constant
  ``k`` and at least one constant branch becomes ``ite(c, cmp(a, k),
  cmp(b, k))``, whose constant side folds; e.g. ``0 < ite(c, 1, 0)``
  collapses to ``c``.  Backlog counters are sums of such terms.
* **constant-offset normalization** — ``x + k1 <= k2 → x <= k2 - k1``
  (same for ``<`` and ``=``), improving sharing between comparisons
  that differ only by folded constants.

``simplify`` preserves semantics (property-tested against evaluation)
and never grows a term.  :class:`repro.smt.solver.SmtSolver` applies it
when constructed with ``simplify_terms=True``; it is off by default
because measurements show the bit-blaster's gate-level constant
propagation already absorbs these patterns on compiled Buffy formulas
(identical CNF sizes), so the pass mainly helps human-readable output
(SMT-LIB export, debugging) rather than solving time.
"""

from __future__ import annotations

from typing import Optional

from .sorts import BOOL, INT
from .terms import (
    Op,
    Term,
    iter_dag,
    mk_add,
    mk_eq,
    mk_int,
    mk_ite,
    mk_le,
    mk_lt,
    mk_not,
    rebuild,
)


def simplify(root: Term) -> Term:
    """Bottom-up simplification; returns an equivalent, never-larger term.

    Individual rules can occasionally grow a term locally (e.g. the
    ite-lift duplicates a comparison before one side folds); the final
    result is compared against the input by DAG size and the smaller
    one wins, so ``simplify`` is monotone and idempotent-safe.
    """
    from .terms import dag_size

    cache: dict[int, Term] = {}
    for node in iter_dag(root):
        if not node.args:
            cache[id(node)] = node
            continue
        new_args = tuple(cache[id(a)] for a in node.args)
        if all(n is o for n, o in zip(new_args, node.args)):
            candidate = node
        else:
            candidate = rebuild(node.op, new_args, node.payload)
        rewritten = _rewrite(candidate)
        if rewritten is not candidate and dag_size(rewritten) > dag_size(candidate):
            rewritten = candidate
        cache[id(node)] = rewritten
    result = cache[id(root)]
    if result is not root and dag_size(result) > dag_size(root):
        return root
    return result


def _rewrite(node: Term) -> Term:
    if node.op is Op.ITE:
        fused = _fuse_ite(node)
        if fused is not node:
            return fused
    if node.op in (Op.LT, Op.LE, Op.EQ) and node.sort is BOOL:
        lifted = _lift_comparison(node)
        if lifted is not None:
            return lifted
        shifted = _shift_constants(node)
        if shifted is not None:
            return shifted
    return node


def _fuse_ite(node: Term) -> Term:
    cond, then, els = node.args
    changed = False
    if then.op is Op.ITE and then.args[0] is cond:
        then = then.args[1]
        changed = True
    if els.op is Op.ITE and els.args[0] is cond:
        els = els.args[2]
        changed = True
    if changed:
        return mk_ite(cond, then, els)
    return node


_CMP_BUILDERS = {Op.LT: mk_lt, Op.LE: mk_le, Op.EQ: mk_eq}


def _lift_comparison(node: Term) -> Optional[Term]:
    """cmp(ite(c,a,b), k) → ite(c, cmp(a,k), cmp(b,k)) when profitable."""
    left, right = node.args
    if left.sort is not INT:
        return None
    build = _CMP_BUILDERS[node.op]
    for ite_side, const_side, flipped in ((left, right, False),
                                          (right, left, True)):
        if ite_side.op is not Op.ITE or not const_side.is_const:
            continue
        cond, then, els = ite_side.args
        # Only lift when a branch is constant, so one side fully folds
        # and the rewrite strictly shrinks the term.
        if not (then.is_const or els.is_const):
            continue
        if flipped:
            then_cmp = build(const_side, then)
            els_cmp = build(const_side, els)
        else:
            then_cmp = build(then, const_side)
            els_cmp = build(els, const_side)
        return mk_ite(cond, then_cmp, els_cmp)
    return None


def _split_constant(term: Term) -> tuple[Term, int]:
    """View an INT term as (rest, constant-offset)."""
    if term.is_const:
        return mk_int(0), term.value  # type: ignore[return-value]
    if term.op is Op.ADD:
        const = 0
        rest = []
        for arg in term.args:
            if arg.is_const:
                const += arg.value  # type: ignore[operator]
            else:
                rest.append(arg)
        if const != 0:
            return (rest[0] if len(rest) == 1 else mk_add(*rest)), const
    return term, 0


def _shift_constants(node: Term) -> Optional[Term]:
    """x + k1 cmp y + k2  →  x cmp y + (k2 - k1) (moves consts one side)."""
    left, right = node.args
    if left.sort is not INT:
        return None
    left_rest, left_const = _split_constant(left)
    right_rest, right_const = _split_constant(right)
    if left_const == 0:
        return None  # already normalized (or nothing to move)
    build = _CMP_BUILDERS[node.op]
    new_right = mk_add(right_rest, mk_int(right_const - left_const))
    result = build(left_rest, new_right)
    return result if result is not node else None


def simplify_all(formulas) -> list[Term]:
    """Simplify a batch (shared subterms are memoized per formula)."""
    return [simplify(f) for f in formulas]
