"""Hash-consed term DAG for the SMT substrate.

This module is the foundation of the Z3 stand-in: immutable, interned
terms over the Bool and Int sorts.  Hash-consing gives O(1) structural
equality (``is``), cheap memoization keyed by ``id``, and keeps the
formula DAGs produced by loop unrolling compact.

Construction goes through the ``mk_*`` factory functions, which perform
light normalization (constant folding, flattening, unit/absorbing
elements) so that downstream passes see a somewhat canonical DAG.
Heavier rewriting lives in :mod:`repro.smt.simplify`.

Python operators are overloaded for convenience when writing encodings
by hand (the FPerf-style baselines use this heavily)::

    x, y = mk_int_var("x"), mk_int_var("y")
    f = (x + y <= mk_int(7)) & x.eq(y)

``==`` on terms remains *identity* (terms are interned), so terms can be
used freely as dict keys; term-level equality is ``a.eq(b)`` /
``mk_eq(a, b)``.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

from .sorts import BOOL, INT, Sort


class Op(enum.Enum):
    """Term operators."""

    # Leaves
    VAR = "var"
    CONST = "const"  # payload: bool or int
    # Boolean connectives
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMPLIES = "=>"
    # Polymorphic
    EQ = "="
    DISTINCT = "distinct"
    ITE = "ite"
    # Integer arithmetic
    ADD = "+"
    SUB = "-"
    NEG = "neg"
    MUL = "*"
    # Integer comparisons
    LT = "<"
    LE = "<="

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_COMMUTATIVE = {Op.AND, Op.OR, Op.XOR, Op.ADD, Op.MUL, Op.EQ, Op.DISTINCT}


class Term:
    """An immutable, interned term.

    Do not instantiate directly; use the ``mk_*`` factories.  Because
    terms are interned, structural equality coincides with identity.
    """

    __slots__ = ("op", "args", "payload", "sort", "_hash", "__weakref__")

    op: Op
    args: tuple["Term", ...]
    payload: object
    sort: Sort

    def __init__(self, op: Op, args: tuple["Term", ...], payload: object, sort: Sort):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(self, "sort", sort)
        object.__setattr__(self, "_hash", hash((op, args, payload, sort)))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Term objects are immutable")

    def __hash__(self) -> int:
        return self._hash

    # NOTE: __eq__ is intentionally *not* overloaded to build formulas:
    # interning makes default identity equality correct and fast, and it
    # keeps terms usable as dict/set keys.  Use ``.eq()`` for the logical
    # equality predicate.

    # ----- introspection -------------------------------------------------

    @property
    def is_var(self) -> bool:
        return self.op is Op.VAR

    @property
    def is_const(self) -> bool:
        return self.op is Op.CONST

    @property
    def name(self) -> str:
        """Variable name (only valid for VAR terms)."""
        if self.op is not Op.VAR:
            raise ValueError(f"not a variable: {self!r}")
        return self.payload  # type: ignore[return-value]

    @property
    def value(self) -> Union[bool, int]:
        """Constant value (only valid for CONST terms)."""
        if self.op is not Op.CONST:
            raise ValueError(f"not a constant: {self!r}")
        return self.payload  # type: ignore[return-value]

    # ----- operator overloading ------------------------------------------

    def eq(self, other: "TermLike") -> "Term":
        return mk_eq(self, _coerce(other, self.sort))

    def ne(self, other: "TermLike") -> "Term":
        return mk_not(mk_eq(self, _coerce(other, self.sort)))

    def ite(self, then: "TermLike", els: "TermLike") -> "Term":
        then_t = _coerce_any(then)
        els_t = _coerce(els, then_t.sort)
        return mk_ite(self, then_t, els_t)

    def __and__(self, other: "TermLike") -> "Term":
        return mk_and(self, _coerce(other, BOOL))

    def __rand__(self, other: "TermLike") -> "Term":
        return mk_and(_coerce(other, BOOL), self)

    def __or__(self, other: "TermLike") -> "Term":
        return mk_or(self, _coerce(other, BOOL))

    def __ror__(self, other: "TermLike") -> "Term":
        return mk_or(_coerce(other, BOOL), self)

    def __xor__(self, other: "TermLike") -> "Term":
        return mk_xor(self, _coerce(other, BOOL))

    def __invert__(self) -> "Term":
        return mk_not(self)

    def implies(self, other: "TermLike") -> "Term":
        return mk_implies(self, _coerce(other, BOOL))

    def __add__(self, other: "TermLike") -> "Term":
        return mk_add(self, _coerce(other, INT))

    def __radd__(self, other: "TermLike") -> "Term":
        return mk_add(_coerce(other, INT), self)

    def __sub__(self, other: "TermLike") -> "Term":
        return mk_sub(self, _coerce(other, INT))

    def __rsub__(self, other: "TermLike") -> "Term":
        return mk_sub(_coerce(other, INT), self)

    def __mul__(self, other: "TermLike") -> "Term":
        return mk_mul(self, _coerce(other, INT))

    def __rmul__(self, other: "TermLike") -> "Term":
        return mk_mul(_coerce(other, INT), self)

    def __neg__(self) -> "Term":
        return mk_neg(self)

    def __lt__(self, other: "TermLike") -> "Term":
        return mk_lt(self, _coerce(other, INT))

    def __le__(self, other: "TermLike") -> "Term":
        return mk_le(self, _coerce(other, INT))

    def __gt__(self, other: "TermLike") -> "Term":
        return mk_lt(_coerce(other, INT), self)

    def __ge__(self, other: "TermLike") -> "Term":
        return mk_le(_coerce(other, INT), self)

    # ----- printing -------------------------------------------------------

    def __repr__(self) -> str:
        return to_sexpr(self, max_depth=6)

    def __str__(self) -> str:
        return to_sexpr(self)


TermLike = Union[Term, bool, int]

# Interning table.  Keyed by (op, args ids, payload); values are Terms.
_INTERN: dict = {}


def _intern(op: Op, args: tuple[Term, ...], payload: object, sort: Sort) -> Term:
    # The sort (and payload type) must be part of the key: Python's
    # ``False == 0`` would otherwise collide Bool and Int constants.
    key = (op, tuple(id(a) for a in args), payload, type(payload).__name__, sort)
    found = _INTERN.get(key)
    if found is None:
        found = Term(op, args, payload, sort)
        _INTERN[key] = found
    return found


def intern_table_size() -> int:
    """Number of distinct live terms (diagnostics / tests)."""
    return len(_INTERN)


def _coerce(value: TermLike, sort: Sort) -> Term:
    if isinstance(value, Term):
        if value.sort is not sort:
            raise TypeError(f"expected {sort} term, got {value.sort}: {value!r}")
        return value
    if sort is BOOL:
        if isinstance(value, bool):
            return mk_bool(value)
        raise TypeError(f"cannot coerce {value!r} to Bool")
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"cannot coerce {value!r} to Int")
    return mk_int(value)


def _coerce_any(value: TermLike) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return mk_bool(value)
    if isinstance(value, int):
        return mk_int(value)
    raise TypeError(f"cannot coerce {value!r} to a term")


# ----- leaf constructors ---------------------------------------------------

_VAR_COUNTER = itertools.count()


def mk_var(name: str, sort: Sort) -> Term:
    """An interned variable.  Same (name, sort) always yields the same term."""
    if not name:
        raise ValueError("variable name must be non-empty")
    return _intern(Op.VAR, (), (name, sort.value), sort)


def mk_bool_var(name: str) -> Term:
    return mk_var(name, BOOL)


def mk_int_var(name: str) -> Term:
    return mk_var(name, INT)


def fresh_var(prefix: str, sort: Sort) -> Term:
    """A variable with a globally unique generated name."""
    return mk_var(f"{prefix}!{next(_VAR_COUNTER)}", sort)


def mk_bool(value: bool) -> Term:
    return _intern(Op.CONST, (), bool(value), BOOL)


def mk_int(value: int) -> Term:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"mk_int expects an int, got {value!r}")
    return _intern(Op.CONST, (), value, INT)


TRUE = mk_bool(True)
FALSE = mk_bool(False)
ZERO = mk_int(0)
ONE = mk_int(1)


# VAR payloads are (name, sort) tuples internally; expose name cleanly.
def _var_payload_name(term: Term) -> str:
    return term.payload[0]  # type: ignore[index]


# Patch the Term.name property to read the tuple payload.
def _name(self: Term) -> str:
    if self.op is not Op.VAR:
        raise ValueError(f"not a variable: {self!r}")
    return self.payload[0]  # type: ignore[index]


Term.name = property(_name)  # type: ignore[assignment]


# ----- boolean constructors -------------------------------------------------


def _check(args: Sequence[Term], sort: Sort, op: str) -> None:
    for a in args:
        if not isinstance(a, Term):
            raise TypeError(f"{op}: expected Term, got {a!r}")
        if a.sort is not sort:
            raise TypeError(f"{op}: expected {sort} operand, got {a.sort}: {a!r}")


def mk_not(arg: Term) -> Term:
    _check((arg,), BOOL, "not")
    if arg.is_const:
        return mk_bool(not arg.value)
    if arg.op is Op.NOT:
        return arg.args[0]
    return _intern(Op.NOT, (arg,), None, BOOL)


def _flatten(op: Op, args: Iterable[Term]) -> Iterator[Term]:
    for a in args:
        if a.op is op:
            yield from a.args
        else:
            yield a


def mk_and(*args: TermLike) -> Term:
    terms = [_coerce(a, BOOL) for a in args]
    _check(terms, BOOL, "and")
    out: list[Term] = []
    seen: set[int] = set()
    for a in _flatten(Op.AND, terms):
        if a is FALSE:
            return FALSE
        if a is TRUE or id(a) in seen:
            continue
        if a.op is Op.NOT and id(a.args[0]) in seen:
            return FALSE
        seen.add(id(a))
        out.append(a)
    for a in out:
        if a.op is Op.NOT and id(a.args[0]) in seen:
            return FALSE
    if not out:
        return TRUE
    if len(out) == 1:
        return out[0]
    return _intern(Op.AND, tuple(out), None, BOOL)


def mk_or(*args: TermLike) -> Term:
    terms = [_coerce(a, BOOL) for a in args]
    _check(terms, BOOL, "or")
    out: list[Term] = []
    seen: set[int] = set()
    for a in _flatten(Op.OR, terms):
        if a is TRUE:
            return TRUE
        if a is FALSE or id(a) in seen:
            continue
        seen.add(id(a))
        out.append(a)
    for a in out:
        if a.op is Op.NOT and id(a.args[0]) in seen:
            return TRUE
    if not out:
        return FALSE
    if len(out) == 1:
        return out[0]
    return _intern(Op.OR, tuple(out), None, BOOL)


def mk_xor(a: Term, b: Term) -> Term:
    _check((a, b), BOOL, "xor")
    if a.is_const:
        return mk_not(b) if a.value else b
    if b.is_const:
        return mk_not(a) if b.value else a
    if a is b:
        return FALSE
    if id(a) > id(b):  # canonical order for commutativity
        a, b = b, a
    return _intern(Op.XOR, (a, b), None, BOOL)


def mk_implies(a: Term, b: Term) -> Term:
    _check((a, b), BOOL, "=>")
    if a is TRUE:
        return b
    if a is FALSE or b is TRUE:
        return TRUE
    if b is FALSE:
        return mk_not(a)
    if a is b:
        return TRUE
    return _intern(Op.IMPLIES, (a, b), None, BOOL)


def mk_iff(a: Term, b: Term) -> Term:
    return mk_eq(a, b)


# ----- polymorphic constructors ---------------------------------------------


def mk_eq(a: Term, b: Term) -> Term:
    if a.sort is not b.sort:
        raise TypeError(f"=: sort mismatch {a.sort} vs {b.sort}")
    if a is b:
        return TRUE
    if a.is_const and b.is_const:
        return mk_bool(a.value == b.value)
    if id(a) > id(b):
        a, b = b, a
    return _intern(Op.EQ, (a, b), None, BOOL)


def mk_distinct(*args: Term) -> Term:
    if len(args) < 2:
        return TRUE
    sort = args[0].sort
    _check(args, sort, "distinct")
    pairs = [mk_not(mk_eq(x, y)) for x, y in itertools.combinations(args, 2)]
    return mk_and(*pairs)


def mk_ite(cond: Term, then: Term, els: Term) -> Term:
    _check((cond,), BOOL, "ite")
    if then.sort is not els.sort:
        raise TypeError(f"ite: branch sort mismatch {then.sort} vs {els.sort}")
    if cond is TRUE:
        return then
    if cond is FALSE:
        return els
    if then is els:
        return then
    if then.sort is BOOL:
        if then is TRUE and els is FALSE:
            return cond
        if then is FALSE and els is TRUE:
            return mk_not(cond)
        # Encode boolean ite with connectives; keeps the Bool layer pure.
        return mk_and(mk_implies(cond, then), mk_implies(mk_not(cond), els))
    return _intern(Op.ITE, (cond, then, els), None, then.sort)


# ----- arithmetic constructors ----------------------------------------------


def mk_add(*args: TermLike) -> Term:
    terms = [_coerce(a, INT) for a in args]
    _check(terms, INT, "+")
    const = 0
    out: list[Term] = []
    for a in _flatten(Op.ADD, terms):
        if a.is_const:
            const += a.value  # type: ignore[operator]
        else:
            out.append(a)
    if const != 0 or not out:
        out.append(mk_int(const))
    if len(out) == 1:
        return out[0]
    return _intern(Op.ADD, tuple(out), None, INT)


def mk_sub(a: Term, b: Term) -> Term:
    _check((a, b), INT, "-")
    if b.is_const and b.value == 0:
        return a
    if a.is_const and b.is_const:
        return mk_int(a.value - b.value)  # type: ignore[operator]
    if a is b:
        return ZERO
    return _intern(Op.SUB, (a, b), None, INT)


def mk_neg(a: Term) -> Term:
    _check((a,), INT, "neg")
    if a.is_const:
        return mk_int(-a.value)  # type: ignore[operator]
    if a.op is Op.NEG:
        return a.args[0]
    return _intern(Op.NEG, (a,), None, INT)


def mk_mul(a: Term, b: Term) -> Term:
    _check((a, b), INT, "*")
    if a.is_const and b.is_const:
        return mk_int(a.value * b.value)  # type: ignore[operator]
    for c, x in ((a, b), (b, a)):
        if c.is_const:
            if c.value == 0:
                return ZERO
            if c.value == 1:
                return x
            if c.value == -1:
                return mk_neg(x)
            return _intern(Op.MUL, (c, x), None, INT)
    if id(a) > id(b):
        a, b = b, a
    return _intern(Op.MUL, (a, b), None, INT)


def mk_lt(a: Term, b: Term) -> Term:
    _check((a, b), INT, "<")
    if a.is_const and b.is_const:
        return mk_bool(a.value < b.value)  # type: ignore[operator]
    if a is b:
        return FALSE
    return _intern(Op.LT, (a, b), None, BOOL)


def mk_le(a: Term, b: Term) -> Term:
    _check((a, b), INT, "<=")
    if a.is_const and b.is_const:
        return mk_bool(a.value <= b.value)  # type: ignore[operator]
    if a is b:
        return TRUE
    return _intern(Op.LE, (a, b), None, BOOL)


def mk_min(a: Term, b: Term) -> Term:
    """min(a, b), expressed with ite."""
    return mk_ite(mk_le(a, b), a, b)


def mk_max(a: Term, b: Term) -> Term:
    """max(a, b), expressed with ite."""
    return mk_ite(mk_le(a, b), b, a)


def mk_sum(args: Sequence[TermLike]) -> Term:
    """Sum of a possibly-empty sequence of int terms."""
    if not args:
        return ZERO
    return mk_add(*args)


def mk_bool_to_int(b: Term) -> Term:
    """1 if b else 0 — handy for counting encodings."""
    return mk_ite(b, ONE, ZERO)


# ----- traversal utilities ---------------------------------------------------


def iter_dag(root: Term) -> Iterator[Term]:
    """Post-order iteration over the DAG rooted at ``root`` (each node once)."""
    seen: set[int] = set()
    stack: list[tuple[Term, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
        else:
            stack.append((node, True))
            for arg in node.args:
                if id(arg) not in seen:
                    stack.append((arg, False))


def free_vars(root: Term) -> list[Term]:
    """All variables occurring in ``root`` (deterministic DAG order)."""
    return [t for t in iter_dag(root) if t.is_var]


def dag_size(root: Term) -> int:
    """Number of distinct nodes in the DAG (a proxy for formula size)."""
    return sum(1 for _ in iter_dag(root))


def substitute(root: Term, mapping: Mapping[Term, Term]) -> Term:
    """Simultaneous substitution of terms (usually variables) in ``root``."""
    cache: dict[int, Term] = {}
    for old, new in mapping.items():
        if old.sort is not new.sort:
            raise TypeError(f"substitute: sort mismatch for {old!r} -> {new!r}")
        cache[id(old)] = new
    for node in iter_dag(root):
        if id(node) in cache:
            continue
        if not node.args:
            cache[id(node)] = node
            continue
        new_args = tuple(cache[id(a)] for a in node.args)
        if all(n is o for n, o in zip(new_args, node.args)):
            cache[id(node)] = node
        else:
            cache[id(node)] = rebuild(node.op, new_args, node.payload)
    return cache[id(root)]


def rebuild(op: Op, args: tuple[Term, ...], payload: object) -> Term:
    """Re-apply a constructor for ``op`` to new args (with normalization)."""
    if op is Op.VAR:
        return mk_var(payload[0], BOOL if payload[1] == "Bool" else INT)  # type: ignore[index]
    if op is Op.CONST:
        return mk_bool(payload) if isinstance(payload, bool) else mk_int(payload)  # type: ignore[arg-type]
    builders: dict[Op, Callable[..., Term]] = {
        Op.NOT: mk_not,
        Op.AND: mk_and,
        Op.OR: mk_or,
        Op.XOR: mk_xor,
        Op.IMPLIES: mk_implies,
        Op.EQ: mk_eq,
        Op.ITE: mk_ite,
        Op.ADD: mk_add,
        Op.SUB: mk_sub,
        Op.NEG: mk_neg,
        Op.MUL: mk_mul,
        Op.LT: mk_lt,
        Op.LE: mk_le,
    }
    return builders[op](*args)


def evaluate(root: Term, assignment: Mapping[str, Union[bool, int]]) -> Union[bool, int]:
    """Evaluate a term under a full assignment of its free variables.

    Used by tests and by model validation (checking SAT models against
    the original, pre-bit-blasting formula).
    """
    cache: dict[int, Union[bool, int]] = {}
    for node in iter_dag(root):
        if node.is_const:
            cache[id(node)] = node.value
        elif node.is_var:
            try:
                val = assignment[node.name]
            except KeyError as exc:
                raise KeyError(f"no assignment for variable {node.name!r}") from exc
            cache[id(node)] = val
        else:
            vals = [cache[id(a)] for a in node.args]
            cache[id(node)] = _eval_op(node.op, vals)
    return cache[id(root)]


def _eval_op(op: Op, vals: Sequence[Union[bool, int]]):
    if op is Op.NOT:
        return not vals[0]
    if op is Op.AND:
        return all(vals)
    if op is Op.OR:
        return any(vals)
    if op is Op.XOR:
        return bool(vals[0]) != bool(vals[1])
    if op is Op.IMPLIES:
        return (not vals[0]) or bool(vals[1])
    if op is Op.EQ:
        return vals[0] == vals[1]
    if op is Op.ITE:
        return vals[1] if vals[0] else vals[2]
    if op is Op.ADD:
        return sum(vals)
    if op is Op.SUB:
        return vals[0] - vals[1]
    if op is Op.NEG:
        return -vals[0]
    if op is Op.MUL:
        return vals[0] * vals[1]
    if op is Op.LT:
        return vals[0] < vals[1]
    if op is Op.LE:
        return vals[0] <= vals[1]
    raise ValueError(f"cannot evaluate operator {op}")  # pragma: no cover


def to_sexpr(root: Term, max_depth: Optional[int] = None) -> str:
    """Render a term as an SMT-LIB-ish s-expression (for debugging)."""

    def go(node: Term, depth: int) -> str:
        if max_depth is not None and depth > max_depth:
            return "..."
        if node.is_var:
            return node.name
        if node.is_const:
            if node.sort is BOOL:
                return "true" if node.value else "false"
            v = node.value
            return str(v) if v >= 0 else f"(- {-v})"
        parts = " ".join(go(a, depth + 1) for a in node.args)
        return f"({node.op.value} {parts})"

    return go(root, 0)
