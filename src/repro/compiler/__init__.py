"""Compilation: symbolic execution and composition of Buffy programs."""

from .composition import ConcreteNetwork, Connection, SymbolicNetwork
from .symexec import EncodeConfig, EncodeError, Obligation, SymbolicMachine

__all__ = [
    "ConcreteNetwork", "Connection", "EncodeConfig", "EncodeError",
    "Obligation", "SymbolicMachine", "SymbolicNetwork",
]
