"""Composition: wiring Buffy programs together through their buffers.

§3 of the paper: "Suppose O_i is an output buffer in program P1, and
I_j is an input buffer in program P2.  P1 and P2 can be composed by
'connecting' O_i and I_j.  Semantically, at the end of the time step t,
the contents of O_i will be flushed into I_j.  At the beginning of
t+1, I_j's updated state will reflect the modifications [...] The user
does not need to add extra code — Buffy augments programs to implement
the mechanics of the composition."

Both execution modes are provided:

* :class:`ConcreteNetwork` — composed simulation over interpreters;
* :class:`SymbolicNetwork` — composed symbolic encoding over
  :class:`~repro.compiler.symexec.SymbolicMachine` instances, usable
  with the same solving/decoding interface as a single program
  (:class:`NetworkBackend` in :mod:`repro.backends.network`).

Programs in a network interact *only* through end-of-step flushes, so
per-step execution order between programs is immaterial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..buffers.packets import Packet
from ..buffers.symbolic import SymbolicPacket
from ..smt.terms import TRUE
from ..lang.checker import CheckedProgram
from ..lang.interp import Interpreter, StepRecord
from .symexec import EncodeConfig, SymbolicMachine, deliver_packet


@dataclass(frozen=True)
class Connection:
    """Connect ``src_program.src_buffer`` → ``dst_program.dst_buffer``."""

    src_program: str
    src_buffer: str   # output buffer label, e.g. "ob" or "pob[1]"
    dst_program: str
    dst_buffer: str   # input buffer label


class _Topology:
    """Shared wiring validation for both network kinds."""

    def __init__(self, programs: dict[str, CheckedProgram],
                 connections: Sequence[Connection]):
        self.programs = dict(programs)
        self.connections = list(connections)
        for conn in self.connections:
            if conn.src_program not in self.programs:
                raise KeyError(f"unknown program {conn.src_program!r}")
            if conn.dst_program not in self.programs:
                raise KeyError(f"unknown program {conn.dst_program!r}")
        self.connected_inputs: dict[str, set[str]] = {
            name: set() for name in self.programs
        }
        for conn in self.connections:
            self.connected_inputs[conn.dst_program].add(conn.dst_buffer)

    def external_inputs(self, name: str,
                        all_labels: Sequence[str]) -> list[str]:
        connected = self.connected_inputs[name]
        return [label for label in all_labels if label not in connected]


class ConcreteNetwork:
    """Composed concrete simulation of multiple Buffy programs."""

    def __init__(
        self,
        programs: dict[str, CheckedProgram],
        connections: Sequence[Connection],
        interpreter_factory: Optional[Callable[[CheckedProgram], Interpreter]] = None,
    ):
        self.topology = _Topology(programs, connections)
        factory = interpreter_factory or Interpreter
        self.interpreters: dict[str, Interpreter] = {
            name: factory(checked) for name, checked in programs.items()
        }
        self._pending: dict[tuple[str, str], list[Packet]] = {}

    def step(
        self,
        external: Optional[dict[str, dict[str, Sequence[Packet]]]] = None,
    ) -> dict[str, StepRecord]:
        """One composed time step; ``external`` maps program → arrivals."""
        external = external or {}
        records: dict[str, StepRecord] = {}
        for name, interp in self.interpreters.items():
            arrivals: dict[str, list[Packet]] = {
                label: list(packets)
                for label, packets in external.get(name, {}).items()
            }
            for (prog, label), packets in list(self._pending.items()):
                if prog == name and packets:
                    arrivals.setdefault(label, []).extend(packets)
                    self._pending[(prog, label)] = []
            records[name] = interp.run_step(arrivals)
        # End-of-step flush: outputs travel to connected inputs, visible
        # at the beginning of the next step.
        for conn in self.topology.connections:
            drained = self._drain(conn.src_program, conn.src_buffer)
            key = (conn.dst_program, conn.dst_buffer)
            self._pending.setdefault(key, []).extend(drained)
        return records

    def run(self, steps: int,
            external_per_step: Optional[Sequence[dict]] = None
            ) -> list[dict[str, StepRecord]]:
        out = []
        for t in range(steps):
            ext = external_per_step[t] if external_per_step else None
            out.append(self.step(ext))
        return out

    def _drain(self, program: str, label: str) -> list[Packet]:
        interp = self.interpreters[program]
        if label.endswith("]") and "[" in label:
            name, _, rest = label.partition("[")
            return interp.buffer(name, int(rest[:-1])).drain_all()
        return interp.buffer(label).drain_all()

    def interpreter(self, name: str) -> Interpreter:
        return self.interpreters[name]


class SymbolicNetwork:
    """Composed symbolic encoding of multiple Buffy programs."""

    def __init__(
        self,
        programs: dict[str, CheckedProgram],
        connections: Sequence[Connection],
        configs: Optional[dict[str, EncodeConfig]] = None,
        default_config: Optional[EncodeConfig] = None,
    ):
        self.topology = _Topology(programs, connections)
        configs = configs or {}
        base = default_config or EncodeConfig()
        self.machines: dict[str, SymbolicMachine] = {
            name: SymbolicMachine(checked, configs.get(name, base), prefix=name)
            for name, checked in programs.items()
        }
        self._pending: dict[tuple[str, str], list[SymbolicPacket]] = {}
        self.step = 0

    # ----- aggregated views -----------------------------------------------------

    @property
    def assumptions(self):
        return [a for m in self.machines.values() for a in m.assumptions]

    @property
    def obligations(self):
        return [ob for m in self.machines.values() for ob in m.obligations]

    @property
    def bounds(self) -> dict[str, tuple[int, int]]:
        merged: dict[str, tuple[int, int]] = {}
        for machine in self.machines.values():
            merged.update(machine.bounds)
        return merged

    @property
    def arrival_vars(self):
        return [av for m in self.machines.values() for av in m.arrival_vars]

    @property
    def havoc_vars(self):
        return [hv for m in self.machines.values() for hv in m.havoc_vars]

    def machine(self, name: str) -> SymbolicMachine:
        return self.machines[name]

    # ----- stepping ----------------------------------------------------------------

    def exec_step(self) -> None:
        """One composed symbolic step across all programs."""
        for name, machine in self.machines.items():
            external = self.topology.external_inputs(
                name, machine.input_buffer_labels()
            )
            arrivals = machine.make_step_arrivals(labels=external)
            # Deliver upstream packets flushed at the end of last step.
            for (prog, label), packets in list(self._pending.items()):
                if prog != name or not packets:
                    continue
                target = machine._buffer_by_label(label)
                for packet in packets:
                    deliver_packet(target, packet)
                self._pending[(prog, label)] = []
            machine.exec_step(arrivals)
        for conn in self.topology.connections:
            src = self.machines[conn.src_program]
            drained = src._buffer_by_label(conn.src_buffer).drain_all(TRUE)
            key = (conn.dst_program, conn.dst_buffer)
            self._pending.setdefault(key, []).extend(drained)
        self.step += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.exec_step()

