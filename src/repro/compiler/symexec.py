"""Symbolic execution of Buffy programs into SMT terms.

This is the compiler back half: a checked program is *executed* over
symbolic state, one time step at a time, producing

* a dataflow DAG of terms describing all reachable behaviours,
* assumptions (from ``assume`` and model side conditions),
* proof obligations (from ``assert``),
* fresh variables only for nondeterminism: input traffic and ``havoc``.

Control flow is handled with *path guards* instead of path splitting:
an assignment under guard ``g`` becomes ``x := ite(g, new, x)``, so
both branches of a conditional execute against the same mutable state
and no join pass is needed.  Loops are unrolled (bounds are
compile-time constants — §7) and procedure calls are inlined (§4).

The executor is parameterized by the symbolic buffer model
(:mod:`repro.buffers.symbolic`), which is how the paper's "buffer
models with varying precision" plug in without changing programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..buffers.symbolic import (
    SymbolicBufferModel,
    SymbolicCounterBuffer,
    SymbolicList,
    SymbolicListBuffer,
    SymbolicPacket,
    gite,
)
from ..lang.ast import (
    Assert,
    Assign,
    Assume,
    Backlog,
    BinOp,
    BinOpKind,
    BoolLit,
    BuffyError,
    Call,
    Cmd,
    Decl,
    Expr,
    FilterExpr,
    For,
    Havoc,
    If,
    Index,
    IntLit,
    ListEmpty,
    ListHas,
    ListLen,
    Move,
    PopFront,
    Procedure,
    PushBack,
    Seq,
    Skip,
    UnOp,
    UnOpKind,
    Var,
    VarKind,
)
from ..lang.checker import CheckedProgram
from ..obs import TRACER
from ..lang.types import (
    ArrayType,
    BoolType,
    BufferType,
    IntType,
    ListType,
    Type,
)
from ..smt.terms import (
    FALSE,
    TRUE,
    ZERO,
    Term,
    mk_and,
    mk_bool,
    mk_bool_var,
    mk_eq,
    mk_implies,
    mk_int,
    mk_int_var,
    mk_ite,
    mk_le,
    mk_lt,
    mk_not,
    mk_or,
)


class EncodeError(BuffyError):
    """Raised when a program cannot be encoded symbolically."""


@dataclass
class EncodeConfig:
    """Finite-model parameters for symbolic execution.

    The paper's boundedness restrictions (§7) surface here: every
    buffer, list and arrival burst needs a static size so the encoding
    stays in the decidable bounded-integer fragment.
    """

    buffer_model: str = "list"          # "list" (FPerf-style) | "counter" (CCAC-style)
    buffer_capacity: int = 8            # packet slots per buffer
    list_capacity: Optional[int] = None # pointer-list slots; default max(#inputs, 2)
    arrivals_per_step: int = 2          # max packets per input buffer per step
    n_flows: Optional[int] = None       # flow classes; default #input buffers
    fix_arrival_flow: bool = True       # arrivals to ibs[i] carry flow == i
    packet_size: Optional[int] = 1      # fixed size; None → symbolic in [1, max_size]
    max_size: int = 4
    havoc_default: tuple[int, int] = (0, 16)
    canonical_arrivals: bool = True     # symmetry-break arrival slot presence
    check_list_overflow: bool = False   # assert pointer lists never overflow


@dataclass
class Obligation:
    """One ``assert`` occurrence: ``formula`` must be valid."""

    step: int
    label: Optional[str]
    pos: Optional[tuple]
    formula: Term

    def describe(self) -> str:
        where = f" at {self.pos[0]}:{self.pos[1]}" if self.pos else ""
        return f"step {self.step}: {self.label or 'assert'}{where}"


@dataclass
class ArrivalVar:
    """Decoder record for one symbolic arrival slot."""

    step: int
    buffer: str               # e.g. "ibs[0]" or "pin"
    slot: int
    present: Term
    flow: Term
    size: Term


@dataclass
class HavocVar:
    """Decoder record for one ``havoc`` occurrence."""

    step: int
    name: str
    occurrence: int
    var: Term


@dataclass
class StepSnapshot:
    """End-of-step observables: monitors, stats and backlogs as terms."""

    step: int
    monitors: dict[str, object] = field(default_factory=dict)
    deq_p: dict[str, Term] = field(default_factory=dict)
    enq_p: dict[str, Term] = field(default_factory=dict)
    drop_p: dict[str, Term] = field(default_factory=dict)
    backlog_p: dict[str, Term] = field(default_factory=dict)


Value = Union[Term, SymbolicList, SymbolicBufferModel, list]


class SymbolicMachine:
    """Symbolic state of one Buffy program, advanced step by step."""

    def __init__(
        self,
        checked: CheckedProgram,
        config: Optional[EncodeConfig] = None,
        prefix: Optional[str] = None,
        budget=None,
    ):
        self.checked = checked
        self.program = checked.program
        self.config = config or EncodeConfig()
        self.prefix = prefix if prefix is not None else checked.name
        # Optional repro.runtime.Budget (duck-typed to avoid an import
        # cycle): polled at step granularity so deep unrollings honor
        # wall-clock deadlines and cancellation.
        self.budget = budget
        self.step = 0
        self.assumptions: list[Term] = []
        self.obligations: list[Obligation] = []
        self.arrival_vars: list[ArrivalVar] = []
        self.havoc_vars: list[HavocVar] = []
        self.bounds: dict[str, tuple[int, int]] = {}
        self.snapshots: list[StepSnapshot] = []
        self._procs: dict[str, Procedure] = {
            p.name: p for p in self.program.procedures
        }
        self._havoc_counts: dict[tuple[int, str], int] = {}
        self._n_inputs = sum(p.count for p in self.program.input_params())
        if self.config.n_flows is None:
            self.config.n_flows = max(1, self._n_inputs)
        if self.config.list_capacity is None:
            self.config.list_capacity = max(2, self._n_inputs)
        self.buffers: dict[str, Value] = {}
        self.globals_: dict[str, Value] = {}
        self._init_state()

    # ----- construction -------------------------------------------------------

    def _make_buffer(self, label: str) -> SymbolicBufferModel:
        cfg = self.config
        if cfg.buffer_model == "list":
            return SymbolicListBuffer(cfg.buffer_capacity, name=label)
        if cfg.buffer_model == "counter":
            return SymbolicCounterBuffer(
                cfg.n_flows, capacity=cfg.buffer_capacity, name=label
            )
        raise EncodeError(f"unknown buffer model {cfg.buffer_model!r}")

    def _default_value(self, typ: Type, label: str) -> Value:
        if isinstance(typ, IntType):
            return ZERO
        if isinstance(typ, BoolType):
            return FALSE
        if isinstance(typ, ListType):
            capacity = typ.capacity or self.config.list_capacity
            return SymbolicList(capacity, name=label)
        if isinstance(typ, BufferType):
            return self._make_buffer(label)
        if isinstance(typ, ArrayType):
            return [
                self._default_value(typ.elem, f"{label}[{i}]")
                for i in range(typ.size)
            ]
        raise EncodeError(f"cannot build symbolic state for {typ}")

    def _init_state(self) -> None:
        for param in self.program.params:
            self.buffers[param.name] = self._default_value(
                param.type, f"{self.prefix}.{param.name}"
            )
        for decl in self.program.decls:
            if decl.kind is VarKind.CONST:
                continue
            if decl.init is not None and isinstance(decl.init, IntLit):
                self.globals_[decl.name] = mk_int(decl.init.value)
            elif decl.init is not None and isinstance(decl.init, BoolLit):
                self.globals_[decl.name] = mk_bool(decl.init.value)
            else:
                self.globals_[decl.name] = self._default_value(
                    decl.type, f"{self.prefix}.{decl.name}"
                )

    # ----- per-step driver ---------------------------------------------------------

    def input_buffer_labels(self) -> list[str]:
        labels: list[str] = []
        for param in self.program.input_params():
            if isinstance(param.type, ArrayType):
                labels.extend(f"{param.name}[{i}]" for i in range(param.type.size))
            else:
                labels.append(param.name)
        return labels

    def _buffer_by_label(self, label: str) -> SymbolicBufferModel:
        if label.endswith("]") and "[" in label:
            name, _, rest = label.partition("[")
            return self.buffers[name][int(rest[:-1])]
        value = self.buffers[label]
        if isinstance(value, list):
            raise EncodeError(f"{label!r} is a buffer array")
        return value

    def make_step_arrivals(
        self, labels: Optional[Sequence[str]] = None
    ) -> dict[str, list[SymbolicPacket]]:
        """Fresh traffic variables for this step, for every input buffer.

        ``labels`` restricts generation to a subset of inputs (used by
        composition: connected inputs receive upstream packets instead
        of fresh traffic).
        """
        cfg = self.config
        out: dict[str, list[SymbolicPacket]] = {}
        for label in (labels if labels is not None
                      else self.input_buffer_labels()):
            slots: list[SymbolicPacket] = []
            fixed_flow = _fixed_flow_of(label) if cfg.fix_arrival_flow else None
            for j in range(cfg.arrivals_per_step):
                base = f"{self.prefix}.{label}.t{self.step}.a{j}"
                present = mk_bool_var(f"{base}.present")
                if fixed_flow is not None:
                    flow: Term = mk_int(fixed_flow)
                else:
                    flow = mk_int_var(f"{base}.flow")
                    self.bounds[flow.name] = (0, cfg.n_flows - 1)
                if cfg.packet_size is not None:
                    size: Term = mk_int(cfg.packet_size)
                else:
                    size = mk_int_var(f"{base}.size")
                    self.bounds[size.name] = (1, cfg.max_size)
                slots.append(SymbolicPacket(flow=flow, size=size, present=present))
                self.arrival_vars.append(
                    ArrivalVar(self.step, label, j, present, flow, size)
                )
            if cfg.canonical_arrivals:
                for j in range(1, len(slots)):
                    self.assumptions.append(
                        mk_implies(slots[j].present, slots[j - 1].present)
                    )
            out[label] = slots
        return out

    def flush_arrivals(self, arrivals: dict[str, list[SymbolicPacket]]) -> None:
        for label, packets in arrivals.items():
            buf = self._buffer_by_label(label)
            for packet in packets:
                buf.enqueue(packet)

    def exec_step(
        self, arrivals: Optional[dict[str, list[SymbolicPacket]]] = None
    ) -> StepSnapshot:
        """Flush arrivals, run the body once, snapshot observables."""
        if self.budget is not None:
            self.budget.start()
            self.budget.checkpoint(
                f"symbolic execution (step {self.step})"
            )
        with TRACER.span("symexec", step=self.step):
            if arrivals is None:
                arrivals = self.make_step_arrivals()
            self.flush_arrivals(arrivals)
            executor = _Executor(self, {})
            executor.exec_cmd(self.program.body, TRUE)
            snapshot = self._snapshot()
        self.snapshots.append(snapshot)
        self.step += 1
        return snapshot

    def _snapshot(self) -> StepSnapshot:
        snap = StepSnapshot(step=self.step)
        for name in self.checked.monitors:
            snap.monitors[name] = _copy_value(self.globals_[name])
        for label in self._all_buffer_labels():
            buf = self._buffer_by_label(label)
            snap.deq_p[label] = buf.stats.deq_p
            snap.enq_p[label] = buf.stats.enq_p
            snap.drop_p[label] = buf.stats.drop_p
            snap.backlog_p[label] = buf.backlog_p()
        return snap

    def _all_buffer_labels(self) -> list[str]:
        labels: list[str] = []
        for param in self.program.params:
            if isinstance(param.type, ArrayType):
                labels.extend(f"{param.name}[{i}]" for i in range(param.type.size))
            else:
                labels.append(param.name)
        return labels

    def drain_outputs(self, guard: Term = TRUE) -> dict[str, list[SymbolicPacket]]:
        """Flush output buffers (composition: end-of-step hand-off)."""
        out: dict[str, list[SymbolicPacket]] = {}
        for param in self.program.output_params():
            if isinstance(param.type, ArrayType):
                for i in range(param.type.size):
                    label = f"{param.name}[{i}]"
                    out[label] = self._buffer_by_label(label).drain_all(guard)
            else:
                out[param.name] = self._buffer_by_label(param.name).drain_all(guard)
        return out

    # ----- state havocking (structured havocs, §6.1) -----------------------------------

    def havoc_state(
        self,
        value_range: tuple[int, int] = (-1, 63),
        stat_bound: int = 1 << 10,
        tag: str = "pre",
    ) -> None:
        """Replace all persistent state with fresh bounded variables.

        This is the "structured havoc" transformation the paper applied
        for the Dafny back end (§6.1): aggregates keep their static
        shape but their contents become symbolic.  Used by the modular
        (contract-based) Dafny mode and by k-induction.
        """
        cfg = self.config
        base = f"{self.prefix}.{tag}{self.step}"
        for label in self._all_buffer_labels():
            buf = self._buffer_by_label(label)
            prefix = f"{base}.{label}"
            if isinstance(buf, SymbolicListBuffer):
                buf.havoc(
                    prefix,
                    flow_range=(-1, cfg.n_flows - 1),
                    size_range=(0, cfg.max_size),
                    stat_bound=stat_bound,
                    bounds=self.bounds,
                )
            else:
                buf.havoc(prefix, stat_bound=stat_bound, bounds=self.bounds)
                if buf.capacity is not None:
                    self.assumptions.append(
                        mk_le(buf.total(), mk_int(buf.capacity))
                    )
        for name, value in list(self.globals_.items()):
            self.globals_[name] = self._havoc_value(
                value, f"{base}.{name}", value_range
            )

    def _havoc_value(self, value: Value, prefix: str,
                     value_range: tuple[int, int],
                     stat_bound: int = 1 << 10) -> Value:
        if isinstance(value, SymbolicList):
            value.havoc(prefix, value_range, self.bounds)
            return value
        if isinstance(value, SymbolicListBuffer):
            value.havoc(
                prefix,
                flow_range=(-1, self.config.n_flows - 1),
                size_range=(0, self.config.max_size),
                stat_bound=stat_bound,
                bounds=self.bounds,
            )
            return value
        if isinstance(value, SymbolicCounterBuffer):
            value.havoc(prefix, stat_bound=stat_bound, bounds=self.bounds)
            return value
        if isinstance(value, list):
            return [
                self._havoc_value(v, f"{prefix}[{i}]", value_range)
                for i, v in enumerate(value)
            ]
        if isinstance(value, Term):
            if value.sort.value == "Bool":
                return mk_bool_var(f"{prefix}.b")
            var = mk_int_var(f"{prefix}.i")
            self.bounds[var.name] = value_range
            return var
        return value

    # ----- havoc plumbing -------------------------------------------------------------

    def fresh_havoc(self, name: str, is_bool: bool,
                    lo: Optional[int], hi: Optional[int]) -> Term:
        occurrence = self._havoc_counts.get((self.step, name), 0)
        self._havoc_counts[(self.step, name)] = occurrence + 1
        base = f"{self.prefix}.havoc.{name}.t{self.step}.o{occurrence}"
        if is_bool:
            var = mk_bool_var(base)
        else:
            var = mk_int_var(base)
            actual_lo = self.config.havoc_default[0] if lo is None else lo
            actual_hi = self.config.havoc_default[1] if hi is None else hi
            self.bounds[var.name] = (actual_lo, max(actual_lo, actual_hi - 1))
        self.havoc_vars.append(HavocVar(self.step, name, occurrence, var))
        return var


def _fixed_flow_of(label: str) -> int:
    """Arrival flow id for a buffer label: the array index, or 0."""
    if label.endswith("]") and "[" in label:
        return int(label.partition("[")[2][:-1])
    return 0


def _copy_value(value: Value) -> Value:
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    if isinstance(value, SymbolicList):
        clone = SymbolicList(value.capacity, name=value.name)
        clone.elems = list(value.elems)
        clone.length = value.length
        clone.overflowed = value.overflowed
        return clone
    return value  # terms are immutable; buffers are snapshotted via stats


class _Executor:
    """Executes commands against a machine's symbolic state."""

    def __init__(self, machine: SymbolicMachine, env: dict[str, Value]):
        self.machine = machine
        self.env = env

    # ----- name resolution ----------------------------------------------------

    def _lookup(self, name: str):
        if name in self.env:
            return self.env, name
        machine = self.machine
        if name in machine.globals_:
            return machine.globals_, name
        if name in machine.buffers:
            return machine.buffers, name
        consts = machine.checked.consts
        if name in consts:
            return None, consts[name]
        raise EncodeError(f"undefined variable {name!r}")

    def _read(self, name: str) -> Value:
        table, key = self._lookup(name)
        if table is None:
            return mk_int(key)  # constant
        return table[key]

    # ----- expression evaluation --------------------------------------------------

    def eval(self, expr: Expr) -> Value:
        if isinstance(expr, IntLit):
            return mk_int(expr.value)
        if isinstance(expr, BoolLit):
            return mk_bool(expr.value)
        if isinstance(expr, Var):
            return self._read(expr.name)
        if isinstance(expr, Index):
            return self._eval_index(expr)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, UnOp):
            operand = self.eval(expr.operand)
            if expr.kind is UnOpKind.NOT:
                return mk_not(operand)
            return -operand
        if isinstance(expr, Backlog):
            return self._eval_backlog(expr)
        if isinstance(expr, ListHas):
            target = self._eval_list(expr.target)
            return target.has(self.eval(expr.item))
        if isinstance(expr, ListEmpty):
            return self._eval_list(expr.target).empty()
        if isinstance(expr, ListLen):
            return self._eval_list(expr.target).len_term()
        if isinstance(expr, FilterExpr):
            raise EncodeError(
                "filtered buffers may only appear under backlog", expr.pos
            )
        raise EncodeError(f"cannot encode {type(expr).__name__}", expr.pos)

    def _eval_index(self, expr: Index) -> Value:
        container = self.eval(expr.base)
        if not isinstance(container, list):
            raise EncodeError("indexing into a non-array", expr.pos)
        index = self.eval(expr.index)
        if index.is_const:
            i = index.value
            if not 0 <= i < len(container):
                raise EncodeError(
                    f"array index {i} out of range [0, {len(container)})",
                    expr.pos,
                )
            return container[i]
        # Symbolic index over scalars: an ite chain.  (Symbolic indexing
        # into buffer arrays is resolved at the operation level instead.)
        if container and isinstance(container[0], Term):
            result = container[0]
            for i in range(1, len(container)):
                result = mk_ite(mk_eq(index, mk_int(i)), container[i], result)
            return result
        raise EncodeError(
            "symbolic index into an aggregate array; only backlog/move"
            " support this",
            expr.pos,
        )

    def _eval_binop(self, expr: BinOp) -> Term:
        kind = expr.kind
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if kind is BinOpKind.ADD:
            return left + right
        if kind is BinOpKind.SUB:
            return left - right
        if kind is BinOpKind.MUL:
            return left * right
        if kind is BinOpKind.LT:
            return mk_lt(left, right)
        if kind is BinOpKind.LE:
            return mk_le(left, right)
        if kind is BinOpKind.GT:
            return mk_lt(right, left)
        if kind is BinOpKind.GE:
            return mk_le(right, left)
        if kind is BinOpKind.EQ:
            return mk_eq(left, right)
        if kind is BinOpKind.NE:
            return mk_not(mk_eq(left, right))
        if kind is BinOpKind.AND:
            return mk_and(left, right)
        if kind is BinOpKind.OR:
            return mk_or(left, right)
        if kind is BinOpKind.IMPLIES:
            return mk_implies(left, right)
        raise EncodeError(f"unsupported operator {kind}", expr.pos)

    def _eval_list(self, expr: Expr) -> SymbolicList:
        value = self.eval(expr)
        if not isinstance(value, SymbolicList):
            raise EncodeError("expected a list", expr.pos)
        return value

    # ----- buffer reference resolution -----------------------------------------------

    def _buffer_cases(self, expr: Expr) -> list[tuple[SymbolicBufferModel, Term]]:
        """Resolve a buffer expression to [(model, guard)] cases.

        A constant reference yields one case with guard TRUE; a
        symbolically indexed array (``ibs[head]``) yields one case per
        element, guarded by ``head == i``.
        """
        if isinstance(expr, Var):
            value = self._read(expr.name)
            if isinstance(value, SymbolicBufferModel):
                return [(value, TRUE)]
            raise EncodeError(f"{expr.name!r} is not a buffer", expr.pos)
        if isinstance(expr, Index):
            container = self.eval(expr.base)
            if not (isinstance(container, list) and container
                    and isinstance(container[0], SymbolicBufferModel)):
                raise EncodeError("expected a buffer array", expr.pos)
            index = self.eval(expr.index)
            if index.is_const:
                i = index.value
                if not 0 <= i < len(container):
                    raise EncodeError(
                        f"buffer index {i} out of range", expr.pos
                    )
                return [(container[i], TRUE)]
            return [
                (container[i], mk_eq(index, mk_int(i)))
                for i in range(len(container))
            ]
        raise EncodeError("expected a buffer reference", expr.pos)

    def _eval_backlog(self, expr: Backlog) -> Term:
        target = expr.buffer
        fieldname: Optional[str] = None
        value: Optional[Term] = None
        if isinstance(target, FilterExpr):
            fieldname = target.fieldname
            value = self.eval(target.value)
            target = target.buffer
        cases = self._buffer_cases(target)
        result = ZERO
        for model, guard in cases:
            backlog = (
                model.backlog_b(fieldname, value)
                if expr.in_bytes
                else model.backlog_p(fieldname, value)
            )
            result = backlog if guard is TRUE else mk_ite(guard, backlog, result)
        return result

    # ----- command execution ------------------------------------------------------------

    def exec_cmd(self, cmd: Cmd, guard: Term) -> None:
        if guard is FALSE:
            return
        if isinstance(cmd, Skip):
            return
        if isinstance(cmd, Seq):
            for c in cmd.commands:
                self.exec_cmd(c, guard)
            return
        if isinstance(cmd, Decl):
            label = f"{self.machine.prefix}.{cmd.name}.t{self.machine.step}"
            if cmd.init is not None:
                self.env[cmd.name] = self.eval(cmd.init)
            else:
                self.env[cmd.name] = self.machine._default_value(cmd.type, label)
            return
        if isinstance(cmd, Assign):
            self._write(cmd.target, self.eval(cmd.value), guard)
            return
        if isinstance(cmd, If):
            cond = self.eval(cmd.cond)
            self.exec_cmd(cmd.then, mk_and(guard, cond))
            self.exec_cmd(cmd.els, mk_and(guard, mk_not(cond)))
            return
        if isinstance(cmd, For):
            lo = self._const(cmd.lo)
            hi = self._const(cmd.hi)
            saved = self.env.get(cmd.var, _MISSING)
            for i in range(lo, hi):
                self.env[cmd.var] = mk_int(i)
                self.exec_cmd(cmd.body, guard)
            if saved is _MISSING:
                self.env.pop(cmd.var, None)
            else:
                self.env[cmd.var] = saved
            return
        if isinstance(cmd, Move):
            self._exec_move(cmd, guard)
            return
        if isinstance(cmd, PushBack):
            target = self._eval_list(cmd.target)
            target.push_back(self.eval(cmd.value), guard)
            if self.machine.config.check_list_overflow:
                self.machine.obligations.append(
                    Obligation(
                        self.machine.step,
                        f"{target.name} overflow",
                        cmd.pos,
                        mk_not(target.overflowed),
                    )
                )
            return
        if isinstance(cmd, PopFront):
            target = self._eval_list(cmd.target)
            value = target.pop_front(guard)
            self._write(cmd.var, value, guard)
            return
        if isinstance(cmd, Assert):
            cond = self.eval(cmd.cond)
            self.machine.obligations.append(
                Obligation(
                    self.machine.step, cmd.label, cmd.pos,
                    mk_implies(guard, cond),
                )
            )
            return
        if isinstance(cmd, Assume):
            cond = self.eval(cmd.cond)
            self.machine.assumptions.append(mk_implies(guard, cond))
            return
        if isinstance(cmd, Havoc):
            self._exec_havoc(cmd, guard)
            return
        if isinstance(cmd, Call):
            self._exec_call(cmd, guard)
            return
        raise EncodeError(f"unsupported command {type(cmd).__name__}", cmd.pos)

    def _const(self, expr: Expr) -> int:
        value = self.eval(expr)
        if isinstance(value, Term) and value.is_const:
            return value.value
        raise EncodeError("loop bounds must be compile-time constants", expr.pos)

    def _write(self, target: Expr, value: Term, guard: Term) -> None:
        if isinstance(target, Var):
            table, key = self._lookup(target.name)
            if table is None:
                raise EncodeError(f"cannot assign to constant {target.name!r}",
                                  target.pos)
            old = table[key]
            table[key] = value if guard is TRUE else gite(guard, value, old)
            return
        if isinstance(target, Index):
            container = self.eval(target.base)
            if not isinstance(container, list):
                raise EncodeError("indexed assignment into a non-array",
                                  target.pos)
            index = self.eval(target.index)
            if index.is_const:
                i = index.value
                if not 0 <= i < len(container):
                    raise EncodeError(f"array index {i} out of range", target.pos)
                old = container[i]
                container[i] = value if guard is TRUE else gite(guard, value, old)
                return
            for i in range(len(container)):
                at = mk_and(guard, mk_eq(index, mk_int(i)))
                container[i] = gite(at, value, container[i])
            return
        raise EncodeError("invalid assignment target", target.pos)

    def _exec_move(self, cmd: Move, guard: Term) -> None:
        amount = self.eval(cmd.amount)
        src_cases = self._buffer_cases(cmd.src)
        dst_cases = self._buffer_cases(cmd.dst)
        for src, src_guard in src_cases:
            move_guard = mk_and(guard, src_guard)
            if cmd.in_bytes:
                packets = src.dequeue_bytes(amount, move_guard)
            else:
                packets = src.dequeue_packets(amount, move_guard)
            for dst, dst_guard in dst_cases:
                for packet in packets:
                    guarded = SymbolicPacket(
                        flow=packet.flow,
                        size=packet.size,
                        present=mk_and(packet.present, dst_guard),
                        bulk=packet.bulk,
                    )
                    self._deliver(dst, guarded, dst_guard)

    def _deliver(self, dst: SymbolicBufferModel, packet: SymbolicPacket,
                 guard: Term) -> None:
        deliver_packet(dst, packet, guard)

    def _exec_havoc(self, cmd: Havoc, guard: Term) -> None:
        lo = None if cmd.lo is None else self._const(cmd.lo)
        hi = None if cmd.hi is None else self._const(cmd.hi)
        name = _target_name(cmd.target)
        current = self._peek(cmd.target)
        is_bool = isinstance(current, Term) and current.sort.value == "Bool"
        var = self.machine.fresh_havoc(name, is_bool, lo, hi)
        self._write(cmd.target, var, guard)

    def _peek(self, target: Expr) -> Value:
        try:
            return self.eval(target)
        except EncodeError:
            return ZERO

    def _exec_call(self, cmd: Call, guard: Term) -> None:
        proc = self.machine._procs.get(cmd.name)
        if proc is None:
            raise EncodeError(f"unknown procedure {cmd.name!r}", cmd.pos)
        callee_env: dict[str, Value] = {}
        for param, arg in zip(proc.params, cmd.args):
            callee_env[param.name] = self.eval(arg)
        callee = _Executor(self.machine, callee_env)
        callee.exec_cmd(proc.body, guard)


def deliver_packet(dst: SymbolicBufferModel, packet: SymbolicPacket,
                   guard: Term = TRUE) -> None:
    """Enqueue a symbolic packet, handling counter-model bulk transfers."""
    if packet.bulk is not None:
        if not isinstance(dst, SymbolicCounterBuffer):
            raise EncodeError(
                "bulk (counter-model) transfers require a counter-model"
                " destination; do not mix buffer models in one move"
            )
        if not packet.flow.is_const:
            raise EncodeError("bulk transfers need a constant flow class")
        count = gite(guard, packet.bulk, ZERO)
        dst.enqueue_bulk(packet.flow.value, count)
        return
    if guard is not TRUE:
        packet = SymbolicPacket(
            flow=packet.flow,
            size=packet.size,
            present=mk_and(packet.present, guard),
        )
    dst.enqueue(packet)


class _Missing:
    pass


_MISSING = _Missing()


def _target_name(target: Expr) -> str:
    if isinstance(target, Var):
        return target.name
    if isinstance(target, Index):
        return _target_name(target.base)
    return "<havoc>"
