"""The solving engine: parallel portfolio, incremental reuse, caching.

Everything here sits *under* the :class:`repro.smt.solver.SmtSolver`
facade — callers keep the assert/check/model interface and opt into the
engine through ``SmtSolver(parallelism=..., cache=..., incremental=...)``
or the backend/CLI ``jobs`` knobs.
"""

from .cache import (
    CacheEntry,
    CacheStats,
    ResultCache,
    default_cache,
    formula_fingerprint,
    resolve_cache,
)
from .parallel import (
    PoolUnavailable,
    PortfolioPool,
    SlotResult,
    default_jobs,
    get_pool,
    shutdown_pool,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "default_cache",
    "formula_fingerprint",
    "resolve_cache",
    "PoolUnavailable",
    "PortfolioPool",
    "SlotResult",
    "default_jobs",
    "get_pool",
    "shutdown_pool",
]
