"""Content-addressed result cache for SMT queries.

A query is the pair *(set of asserted formulas, effective integer
bounds)*.  Both determine the answer completely — the pipeline is a
decision procedure — so a canonical fingerprint of the two is a sound
cache key.  The fingerprint is **structural** (per-node sha256 over the
hash-consed term DAG), not ``id``-based, so keys are stable across
processes and interpreter runs and can address an on-disk store.

Two tiers:

* an in-memory LRU (:class:`ResultCache`), always on when the solver is
  given a cache;
* an optional on-disk store (JSON files under ``~/.cache/repro`` by
  default, overridable via ``REPRO_CACHE_DIR``) shared between runs.

Only definitive answers (SAT with a decoded assignment, UNSAT) are
cached; UNKNOWN depends on the budget that produced it and is never
stored.  SAT hits are re-validated against the query's own terms by the
solver before being trusted, so a corrupted disk entry degrades to a
miss, never to a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from ..obs import METRICS
from ..smt.intervals import BoundsEnv
from ..smt.terms import Term, iter_dag

Assignment = Mapping[str, Union[bool, int]]


def _term_digests(root: Term, memo: dict[int, bytes]) -> bytes:
    """Structural sha256 digest of every node under ``root`` (memoized)."""
    for node in iter_dag(root):
        if id(node) in memo:
            continue
        h = hashlib.sha256()
        h.update(node.op.value.encode())
        h.update(b"\x00")
        h.update(node.sort.value.encode())
        h.update(b"\x00")
        if node.payload is not None:
            # repr() distinguishes True from 1 and "x" from x.
            h.update(repr(node.payload).encode())
        h.update(b"\x00")
        for arg in node.args:
            h.update(memo[id(arg)])
        memo[id(node)] = h.digest()
    return memo[id(root)]


def formula_fingerprint(
    formulas: Sequence[Term], bounds: BoundsEnv,
    memo: Optional[dict[int, bytes]] = None,
) -> str:
    """Canonical hex key for a query: formulas + the bounds that matter.

    Formula digests are sorted, so assertion order does not split cache
    entries.  Bounds contribute only the intervals of integer variables
    free in the formulas (plus the default interval, which governs any
    undeclared variable) — changing an irrelevant bound does not miss,
    while changing a relevant one always does.
    """
    if memo is None:
        memo = {}
    digests = sorted(_term_digests(f, memo) for f in formulas)
    names = sorted(
        {
            node.name
            for f in formulas
            for node in iter_dag(f)
            if node.is_var
        }
    )
    h = hashlib.sha256()
    for d in digests:
        h.update(d)
    h.update(b"|bounds|")
    default = bounds.default
    h.update(f"default:{default.lo}:{default.hi}".encode())
    for name in names:
        iv = bounds.get(name)
        h.update(f"|{name}:{iv.lo}:{iv.hi}".encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced in :class:`ResourceReport`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    invalid: int = 0  # disk entries that failed to parse / validate
    corrupt_entries: int = 0  # checksum mismatches / truncated JSON
    io_errors: int = 0  # disk writes/reads that failed (real or injected)


@dataclass
class CacheEntry:
    """A definitive answer: verdict plus the decoded assignment (SAT)."""

    verdict: str  # "sat" | "unsat"
    assignment: Optional[dict[str, Union[bool, int]]] = None
    cnf_vars: int = 0
    cnf_clauses: int = 0


class ResultCache:
    """In-memory LRU + optional on-disk store of query results.

    Thread-compatible for the repo's single-threaded solvers; disk
    writes are atomic (temp file + rename) so concurrent CI shards can
    share one directory.  Disk entries carry a sha256 checksum over the
    canonical payload; any mismatch, truncation or parse failure is a
    miss — the bad file is deleted so it cannot keep costing a read.
    """

    # Chaos hook: repro.runtime.chaos.inject_faults installs a monkey
    # here so tests can corrupt entries at write time.
    _chaos = None

    def __init__(self, capacity: int = 1024,
                 disk_dir: Optional[Union[str, Path]] = None):
        self.capacity = max(1, capacity)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()
        self._lru: OrderedDict[str, CacheEntry] = OrderedDict()

    # ----- lookup -----------------------------------------------------------

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self._lru.get(key)
        if entry is not None:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            if METRICS.enabled:
                METRICS.counter_inc("repro_cache_hits_total", tier="memory")
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            if METRICS.enabled:
                METRICS.counter_inc("repro_cache_hits_total", tier="disk")
            self._remember(key, entry)
            return entry
        self.stats.misses += 1
        if METRICS.enabled:
            METRICS.counter_inc("repro_cache_misses_total")
        return None

    def put(self, key: str, entry: CacheEntry) -> None:
        if entry.verdict not in ("sat", "unsat"):
            raise ValueError("only definitive verdicts are cacheable")
        self.stats.stores += 1
        if METRICS.enabled:
            METRICS.counter_inc("repro_cache_stores_total")
        self._remember(key, entry)
        self._disk_put(key, entry)

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def _remember(self, key: str, entry: CacheEntry) -> None:
        self._lru[key] = entry
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.stats.evictions += 1

    # ----- disk tier --------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / key[:2] / f"{key}.json"

    @staticmethod
    def _payload_checksum(payload: dict) -> str:
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _disk_get(self, key: str) -> Optional[CacheEntry]:
        if self.disk_dir is None:
            return None
        path = self._disk_path(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.invalid += 1
            self.stats.io_errors += 1
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", where="cache")
            return None
        try:
            data = json.loads(raw)
            stored = data.pop("sha256")
            if stored != self._payload_checksum(data):
                raise ValueError("checksum mismatch")
            verdict = data["verdict"]
            if verdict not in ("sat", "unsat"):
                raise ValueError(verdict)
            assignment = data.get("assignment")
            if assignment is not None and not isinstance(assignment, dict):
                raise ValueError("bad assignment")
            return CacheEntry(
                verdict=verdict,
                assignment=assignment,
                cnf_vars=int(data.get("cnf_vars", 0)),
                cnf_clauses=int(data.get("cnf_clauses", 0)),
            )
        except (json.JSONDecodeError, ValueError, KeyError,
                AttributeError, TypeError):
            # Truncated, tampered or legacy (pre-checksum) entry: treat
            # as corrupt, drop it from disk, report a miss.
            self.stats.invalid += 1
            self.stats.corrupt_entries += 1
            if METRICS.enabled:
                METRICS.counter_inc("repro_cache_corrupt_entries_total")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, entry: CacheEntry) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = {
            "verdict": entry.verdict,
            "assignment": entry.assignment,
            "cnf_vars": entry.cnf_vars,
            "cnf_clauses": entry.cnf_clauses,
        }
        payload["sha256"] = self._payload_checksum(payload)
        text = json.dumps(payload)
        monkey = ResultCache._chaos
        if monkey is not None:
            text = monkey.corrupt_cache_text(text)
        try:
            if monkey is not None:
                monkey.maybe_io_error("cache")
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(text)
            tmp.replace(path)
        except OSError:
            # Best-effort: a read-only or full disk must not fail a solve.
            self.stats.io_errors += 1
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_persist_io_errors_total", where="cache")
            try:
                tmp.unlink()
            except OSError:
                pass


DEFAULT_DISK_DIR = Path.home() / ".cache" / "repro"

_default_cache: Optional[ResultCache] = None
_default_key: Optional[tuple] = None


def resolve_cache(setting) -> Optional[ResultCache]:
    """Map a cache knob (None / bool / ResultCache) to an effective cache.

    ``False`` disables caching outright; ``None``/``True`` defer to the
    environment-configured :func:`default_cache`; a :class:`ResultCache`
    instance is used as-is.
    """
    if setting is False:
        return None
    if setting is None or setting is True:
        return default_cache()
    return setting


def default_cache() -> Optional[ResultCache]:
    """The process-wide cache configured by environment variables.

    Caching is opt-in: ``REPRO_CACHE=1`` enables a process-wide
    in-memory LRU, ``REPRO_CACHE=disk`` additionally persists under
    ``~/.cache/repro``, and ``REPRO_CACHE_DIR=DIR`` persists under DIR.
    With none of these set (or ``REPRO_CACHE=0``) there is no ambient
    cache — solvers only cache when handed one explicitly.
    """
    global _default_cache, _default_key
    mode = os.environ.get("REPRO_CACHE", "").strip().lower()
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    key = (mode, cache_dir)
    if key == _default_key:
        return _default_cache
    if mode in ("", "0", "off", "none", "false") and not cache_dir:
        _default_cache, _default_key = None, key
        return None
    disk: Optional[Path] = Path(cache_dir) if cache_dir else None
    if disk is None and mode == "disk":
        disk = DEFAULT_DISK_DIR
    _default_cache, _default_key = ResultCache(disk_dir=disk), key
    return _default_cache
