"""Process-parallel CDCL portfolio.

The sequential :class:`~repro.runtime.portfolio.EscalationPolicy`
ladder tries one CDCL configuration after another.  With ``jobs > 1``
the same ladder races **concurrently**: every configuration solves the
identical (picklable) CNF in its own worker process, the first
definitive SAT/UNSAT answer wins and the losers are cancelled
cooperatively.  Because every configuration is a complete decision
procedure, the winning *verdict* is deterministic regardless of which
worker reports first — only the model and the timing can vary.

Design notes:

* Workers are **persistent** — the pool is shared across queries (one
  fork/spawn per worker per process lifetime, not per check), fed by
  per-worker task queues and drained through one shared result queue.
* Cancellation is a shared monotonically increasing *generation*
  counter: the parent bumps it to the current task id when a winner
  lands, and each worker's budget treats ``generation >= my task id``
  as :attr:`ExhaustionReason.CANCELLED` at its normal safepoints.
  Stale results from cancelled tasks are filtered by task id.
* Budget deadlines are shipped as *remaining seconds* and re-anchored
  on the worker's own monotonic clock, so the pool never depends on
  clocks being shared across processes.
* The module is spawn-safe: the worker entrypoint is a top-level
  function and every payload (clause lists, config kwargs, assumption
  literals) is picklable.  On platforms offering ``fork`` we prefer it
  for its near-zero startup cost.
* The pool is **supervised**: every worker carries a shared heartbeat
  cell it refreshes at its budget safepoints, and the parent's result
  loop periodically sweeps for dead (``is_alive``) or hung (stale
  heartbeat) workers.  Any loss rebuilds the whole transport — workers
  *and* shared queues, since an abrupt death can leave the result
  pipe's write lock held forever — with exponential backoff, and the
  in-flight queries are re-dispatched; a query that kills two workers
  in a row is *quarantined* — it resolves to a typed
  ``UNKNOWN(reason="quarantined")`` instead of hanging the run or
  crashing the pool.  The deterministic ``worker_crash`` chaos hook
  (``REPRO_CHAOS_WORKER_CRASH``) exercises all of this in tests.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing as mp
import os
import queue as queue_mod
import random
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..obs import BEACON, METRICS, TRACER
from ..runtime.budget import Budget, BudgetExhausted, ExhaustionReason
from ..smt.cnf import CNF
from ..smt.sat.cdcl import CDCLConfig, CDCLSolver, SatResult, SatStats
from ..trust.proof import ProofLog


def default_jobs() -> int:
    """Parallelism from the ``REPRO_JOBS`` environment variable (>= 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


class _WorkerBudget(Budget):
    """A worker-side budget that also honors the shared cancel generation.

    Doubles as the worker's *heartbeat* source: ``exhausted()`` runs at
    every CDCL conflict and 256-decision safepoint, so refreshing the
    shared heartbeat cell here gives the parent's supervisor a liveness
    signal exactly as often as cooperative cancellation is possible.
    Wall-clock (``time.time``) because the cell is compared across
    processes.
    """

    def __init__(self, cancel_cell, task_id: int, heartbeat=None, **kwargs):
        super().__init__(**kwargs)
        self._cancel_cell = cancel_cell
        self._task_id = task_id
        self._heartbeat = heartbeat

    def exhausted(self) -> Optional[ExhaustionReason]:
        if self._heartbeat is not None:
            self._heartbeat.value = time.time()
        if (
            self._cancel_cell is not None
            and self._cancel_cell.value >= self._task_id
        ):
            return ExhaustionReason.CANCELLED
        return super().exhausted()


def _chaos_should_crash(chaos, task_id: int, slot: int, attempt: int) -> bool:
    """Deterministic worker-crash draw for the ``worker_crash`` hook.

    ``chaos`` is ``(rate, seed, max_crashes)``.  The draw is keyed on
    (seed, task, slot, attempt) — not on a shared RNG stream — so the
    same schedule replays regardless of worker interleaving, and a
    retried dispatch (higher ``attempt``) past ``max_crashes`` is
    guaranteed to survive.
    """
    rate, seed, max_crashes = chaos
    if attempt >= max_crashes:
        return False
    draw = random.Random(
        seed * 1000003 + task_id * 8191 + slot * 131 + attempt
    ).random()
    return draw < rate


def _stats_tuple(stats: SatStats) -> tuple:
    # Positional wire form; SatStats owns the field order so new
    # counters cannot silently desynchronize the two ends.
    return stats.to_tuple()


def _worker_telemetry_begin(enabled: bool,
                            traceparent: Optional[str] = None) -> None:
    """Arm (or disarm) this worker's local tracer/registry for one task.

    With ``fork`` the worker inherits the parent's singletons, including
    any records the parent had at fork time — so the state is reset
    explicitly per task and re-enabled only when the parent asked for
    telemetry, making each result's delta attributable to that task.
    Adopting the dispatcher's ``traceparent`` makes this task's root
    spans children of the dispatching portfolio span, so the merged
    trace stitches across the process boundary.
    """
    TRACER.clear()
    METRICS.clear()
    TRACER.enabled = enabled
    METRICS.enabled = enabled
    if enabled:
        TRACER.metrics = METRICS
        METRICS.proc = "worker"
        TRACER.adopt(traceparent)


def _worker_telemetry_capture(enabled: bool):
    """The span/metric delta shipped back with a result (None if off)."""
    BEACON.disable()
    if not enabled:
        return None
    METRICS.counter_inc("repro_parallel_tasks_total", proc="worker")
    blob = {
        "spans": TRACER.export_records(),
        "metrics": METRICS.snapshot(),
    }
    TRACER.clear()
    METRICS.clear()
    return blob


def _portfolio_worker(task_queue, result_queue, cancel_cell,
                      heartbeat) -> None:
    """Worker loop: solve (CNF, config, assumptions) tasks until poisoned.

    Result messages are ``(task_id, slot, verdict, model, reason,
    stats, telemetry, extra)`` where ``verdict`` is "sat"/"unsat"/
    "unknown"/"error", ``model`` is a 1-indexed bool list for SAT,
    ``reason`` the exhaustion reason value for UNKNOWN, ``stats`` a
    SatStats tuple, ``telemetry`` the worker's span/metric delta (or
    None when the parent ran without telemetry), and ``extra`` is
    ``(proof_steps, unsat_assumptions)`` on a certified UNSAT, else
    None.  Live-progress samples travel on the same queue as
    ``("progress", task_id, sample)`` messages, re-emitted by the
    dispatching process's beacon.
    """
    while True:
        task = task_queue.get()
        if task is None:
            return
        (task_id, slot, attempt, num_vars, clauses, config_kwargs,
         assumptions, deadline, max_conflicts, max_learned, telemetry,
         certify, chaos, traceparent, progress_ctx) = task
        if heartbeat is not None:
            heartbeat.value = time.time()
        if chaos is not None and _chaos_should_crash(
            chaos, task_id, slot, attempt
        ):
            # Simulated hard crash (OOM-kill, segfault): no result, no
            # cleanup — the parent's supervisor must recover the query.
            os._exit(3)
        if cancel_cell is not None and cancel_cell.value >= task_id:
            result_queue.put(
                (task_id, slot, "unknown", None, "cancelled",
                 _stats_tuple(SatStats()), None, None)
            )
            continue
        _worker_telemetry_begin(telemetry, traceparent)
        if progress_ctx is not None:
            progress_ctx = dict(progress_ctx)
            phase = dict(progress_ctx.get("phase") or {})
            phase["slot"] = slot
            progress_ctx["phase"] = phase
        BEACON.configure_remote(
            progress_ctx,
            lambda sample, _tid=task_id: result_queue.put(
                ("progress", _tid, sample)),
        )
        budget = _WorkerBudget(
            cancel_cell, task_id, heartbeat,
            deadline_seconds=deadline,
            max_conflicts=max_conflicts,
            max_learned_clauses=max_learned,
        )
        budget.start()
        solver = CDCLSolver(
            num_vars, CDCLConfig(**config_kwargs), budget=budget,
            proof=ProofLog() if certify else None,
        )
        try:
            with TRACER.span("portfolio-rung", slot=slot,
                             mode="parallel") as span:
                cnf = CNF(
                    num_vars=num_vars, clauses=[list(c) for c in clauses]
                )
                ok = solver.add_cnf(cnf)
                with TRACER.span("cdcl", slot=slot):
                    result = (
                        solver.solve(assumptions=assumptions) if ok
                        else SatResult.UNSAT
                    )
                span.set("result", result.value)
        except BudgetExhausted as exc:
            result_queue.put(
                (task_id, slot, "unknown", None, exc.report.reason.value,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry), None)
            )
            continue
        except Exception as exc:  # never kill the worker loop
            result_queue.put(
                (task_id, slot, "error", repr(exc), None,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry), None)
            )
            continue
        if result is SatResult.SAT:
            result_queue.put(
                (task_id, slot, "sat", solver.model(), None,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry), None)
            )
        elif result is SatResult.UNSAT:
            extra = None
            if certify and solver.proof is not None:
                extra = (
                    list(solver.proof.steps), solver.unsat_assumptions()
                )
            result_queue.put(
                (task_id, slot, "unsat", None, None,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry), extra)
            )
        else:
            reason = (
                solver.exhaust_report.reason.value
                if solver.exhaust_report is not None else None
            )
            result_queue.put(
                (task_id, slot, "unknown", None, reason,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry), None)
            )


@dataclass
class SlotResult:
    """Outcome of one portfolio slot (one config or one assumption set)."""

    verdict: SatResult
    model: Optional[list[bool]] = None
    reason: Optional[str] = None  # ExhaustionReason.value for UNKNOWN
    stats: SatStats = dataclasses.field(default_factory=SatStats)
    error: Optional[str] = None
    # Certified UNSAT answers: the worker's DRAT proof steps and (for
    # assumption slots) the unsat assumption core.
    proof: Optional[list] = None
    core: tuple = ()


class _Worker:
    """One pool worker: process, its task queue, its heartbeat cell."""

    __slots__ = ("proc", "queue", "heartbeat")

    def __init__(self, proc, queue, heartbeat):
        self.proc = proc
        self.queue = queue
        self.heartbeat = heartbeat


class PoolUnavailable(RuntimeError):
    """The pool cannot run (worker startup failed, workers died, ...)."""


class PortfolioPool:
    """A persistent pool of CDCL worker processes shared across queries."""

    def __init__(self, jobs: int, start_method: Optional[str] = None,
                 hang_seconds: Optional[float] = None):
        self.jobs = max(1, jobs)
        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START") or None
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        # lock=False: the cell is written only by this parent and read
        # by workers.  A synchronized Value's lock would be taken by
        # every reader, and a worker dying abruptly mid-read would
        # leave it held forever, wedging the parent's cancel writes.
        self._cancel = self._ctx.Value("q", 0, lock=False)
        self._results = self._ctx.Queue()
        self._task_id = 0
        self._workers: list[_Worker] = []
        self._closed = False
        # Slots cooperatively cancelled during the most recent _run();
        # surfaced via ResourceReport.cancelled_slots on timeouts.
        self.last_cancelled = 0
        # Supervision: a worker with in-flight work whose heartbeat is
        # older than hang_seconds is presumed wedged and replaced.  A
        # query is quarantined after quarantine_after worker losses.
        if hang_seconds is None:
            try:
                hang_seconds = float(os.environ.get("REPRO_HANG_SECONDS", "30"))
            except ValueError:
                hang_seconds = 30.0
        self.hang_seconds = hang_seconds
        self.quarantine_after = 2
        self.respawn_base_seconds = 0.01
        self._consecutive_respawns = 0
        # Lifetime counters and per-run snapshots (read by SmtSolver
        # into ResourceReport after each parallel solve).
        self.workers_respawned = 0
        self.queries_quarantined = 0
        self.last_respawned = 0
        self.last_quarantined = 0
        # Pool-level chaos from the environment (CI smoke jobs):
        # REPRO_CHAOS_WORKER_CRASH=<rate> with optional REPRO_CHAOS_SEED
        # and REPRO_CHAOS_MAX_CRASHES (default: crash any query once).
        self.worker_chaos: Optional[tuple] = None
        try:
            rate = float(os.environ.get("REPRO_CHAOS_WORKER_CRASH", "0"))
            if rate > 0:
                self.worker_chaos = (
                    rate,
                    int(os.environ.get("REPRO_CHAOS_SEED", "0")),
                    int(os.environ.get("REPRO_CHAOS_MAX_CRASHES", "1")),
                )
        except ValueError:
            self.worker_chaos = None
        for _ in range(self.jobs):
            self._spawn_worker()

    # ----- lifecycle --------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        task_queue = self._ctx.Queue()
        heartbeat = self._ctx.Value("d", time.time(), lock=False)
        proc = self._ctx.Process(
            target=_portfolio_worker,
            args=(task_queue, self._results, self._cancel, heartbeat),
            daemon=True,
        )
        proc.start()
        worker = _Worker(proc, task_queue, heartbeat)
        self._workers.append(worker)
        return worker

    def _rebuild_transport(self, replaced: int = 0) -> None:
        """Tear down every worker AND the shared queues; start fresh.

        Called after any abrupt worker loss.  A worker that dies
        without cleanup (OOM-kill, segfault, the ``worker_crash``
        chaos hook's ``os._exit``) may die holding the shared result
        pipe's *write lock* — its queue feeder thread takes that lock
        for every message, and death can strike between ``send_bytes``
        and the release.  The lock then stays held forever and every
        surviving worker's answers block behind it, so the parent sees
        only silence and would mis-quarantine innocent queries.  The
        parent cannot observe whether the lock died held; after any
        abrupt loss the whole transport is presumed poisoned (the same
        call ``concurrent.futures`` makes with ``BrokenProcessPool``)
        and replaced: workers, task queues and result queue alike.
        In-flight answers still in the old pipe are recomputed.
        """
        if self._consecutive_respawns:
            time.sleep(min(
                0.25,
                self.respawn_base_seconds * (2 ** self._consecutive_respawns),
            ))
        self._consecutive_respawns += 1
        for worker in self._workers:
            worker.proc.terminate()
        for worker in self._workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
            # A parent-side feeder blocked on a full pipe to a dead
            # worker must not hang interpreter shutdown.
            worker.queue.cancel_join_thread()
            worker.queue.close()
        self._workers = []
        self._results.close()
        self._results = self._ctx.Queue()
        self.workers_respawned += replaced
        self.last_respawned += replaced
        if METRICS.enabled and replaced:
            METRICS.counter_inc(
                "repro_engine_workers_respawned_total", replaced
            )
        for _ in range(self.jobs):
            self._spawn_worker()

    def _revive(self) -> None:
        """Replace dead workers so one crash doesn't shrink the pool."""
        if any(not w.proc.is_alive() for w in self._workers):
            # A worker that died between runs may have poisoned the
            # shared queues (see _rebuild_transport): replace them all.
            self._rebuild_transport()
        while len(self._workers) < self.jobs:
            self._spawn_worker()

    def alive(self) -> bool:
        return (
            not self._closed
            and any(w.proc.is_alive() for w in self._workers)
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._cancel.value = self._task_id + 1
        for worker in self._workers:
            try:
                worker.queue.put_nowait(None)
            except Exception:
                pass
        for worker in self._workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
        self._workers = []

    # ----- solving ----------------------------------------------------------

    def solve_portfolio(
        self,
        cnf: CNF,
        configs: Sequence[Optional[CDCLConfig]],
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
        certify: bool = False,
        chaos: Optional[tuple] = None,
    ) -> tuple[SlotResult, int]:
        """Race ``configs`` on one CNF; first SAT/UNSAT wins.

        Returns ``(winner-or-summary, slots_dispatched)``.  When every
        slot answers UNKNOWN the summary carries the first *hard*
        exhaustion reason (or None for the retryable per-call conflict
        cap) and the maximum per-slot spend.
        """
        tasks = [
            (list(assumptions), config if config is not None else CDCLConfig())
            for config in configs
        ]
        results = self._run(
            cnf, tasks, budget, first_wins=True, certify=certify, chaos=chaos
        )
        definitive = next(
            (
                r for r in results
                if r is not None
                and r.verdict in (SatResult.SAT, SatResult.UNSAT)
            ),
            None,
        )
        if definitive is not None:
            return definitive, len(tasks)
        # All UNKNOWN (or dead): summarize.
        summary = SlotResult(verdict=SatResult.UNKNOWN, stats=SatStats())
        hard = None
        for r in results:
            if r is None:
                continue
            summary.stats.conflicts = max(
                summary.stats.conflicts, r.stats.conflicts
            )
            summary.stats.learned = max(summary.stats.learned, r.stats.learned)
            summary.stats.decisions = max(
                summary.stats.decisions, r.stats.decisions
            )
            if r.reason is not None and r.reason != "cancelled" and hard is None:
                hard = r.reason
        summary.reason = hard
        return summary, len(tasks)

    def solve_many(
        self,
        cnf: CNF,
        assumption_sets: Sequence[Sequence[int]],
        config: Optional[CDCLConfig] = None,
        budget: Optional[Budget] = None,
        certify: bool = False,
        chaos: Optional[tuple] = None,
    ) -> list[Optional[SlotResult]]:
        """Solve one CNF under several assumption sets concurrently.

        The data-parallel mode used by :class:`DafnyBackend` to
        discharge independent VCs across the pool.  Every slot runs to
        completion (no first-wins cancellation); a slot is None only if
        its worker died and could not be replaced.
        """
        config = config or CDCLConfig()
        tasks = [(list(a), config) for a in assumption_sets]
        return self._run(
            cnf, tasks, budget, first_wins=False, certify=certify, chaos=chaos
        )

    def _run(
        self,
        cnf: CNF,
        tasks: Sequence[tuple[list[int], CDCLConfig]],
        budget: Optional[Budget],
        first_wins: bool,
        certify: bool = False,
        chaos: Optional[tuple] = None,
    ) -> list[Optional[SlotResult]]:
        if self._closed:
            raise PoolUnavailable("pool is closed")
        self._revive()
        if not self._workers:
            raise PoolUnavailable("no live workers")
        if chaos is None:
            chaos = self.worker_chaos
        self._task_id += 1
        task_id = self._task_id
        self.last_respawned = 0
        self.last_quarantined = 0
        self._consecutive_respawns = 0
        deadline = budget.remaining_seconds() if budget is not None else None
        max_conflicts = max_learned = None
        if budget is not None:
            if budget.max_conflicts is not None:
                max_conflicts = max(
                    1, budget.max_conflicts - budget.conflicts
                )
            if budget.max_learned_clauses is not None:
                max_learned = max(
                    1, budget.max_learned_clauses - budget.learned_clauses
                )
        telemetry = TRACER.enabled or METRICS.enabled
        # Context shipped to workers: the current traceparent (worker
        # root spans re-parent under the dispatching span) and the
        # beacon snapshot (job id + phase for live-progress samples).
        traceparent = TRACER.traceparent() if telemetry else None
        progress_ctx = BEACON.ship()
        slots: list[Optional[SlotResult]] = [None] * len(tasks)
        # Per-slot dispatch state, kept so the supervisor can requeue a
        # lost worker's in-flight queries on a replacement.
        payloads: list[tuple] = []
        attempts = [0] * len(tasks)
        assigned: dict[int, _Worker] = {}
        dispatched_at: dict[int, float] = {}

        def dispatch(slot: int, worker: _Worker) -> None:
            worker.queue.put(
                (task_id, slot, attempts[slot]) + payloads[slot]
            )
            assigned[slot] = worker
            dispatched_at[slot] = time.time()

        for slot, (assumptions, config) in enumerate(tasks):
            payloads.append((
                cnf.num_vars, cnf.clauses, dataclasses.asdict(config),
                assumptions, deadline, max_conflicts, max_learned,
                telemetry, certify, chaos, traceparent, progress_ctx,
            ))
            dispatch(slot, self._workers[slot % len(self._workers)])
        pending = len(tasks)
        winner_seen = False
        while pending > 0:
            try:
                msg = self._results.get(timeout=0.05)
            except queue_mod.Empty:
                if budget is not None and budget.exhausted() is not None:
                    # Parent budget ran out (e.g. cancel() from outside):
                    # tell the workers and stop waiting for stragglers.
                    self._cancel.value = task_id
                    break
                pending = self._supervise(
                    slots, attempts, assigned, dispatched_at,
                    dispatch, pending, winner_seen,
                )
                continue
            if msg[0] == "progress":
                # A worker's live-progress sample: re-emit through this
                # process's beacon (stale generations are dropped).
                if msg[1] == task_id:
                    BEACON.forward(msg[2])
                continue
            (msg_task_id, slot, verdict, payload, reason, stats_t, telem,
             extra) = msg
            if msg_task_id != task_id or slots[slot] is not None:
                # Stale generation, or a duplicate from a worker that was
                # presumed hung after its slot was already resolved.
                continue
            pending -= 1
            assigned.pop(slot, None)
            dispatched_at.pop(slot, None)
            self._consecutive_respawns = 0
            if telem is not None:
                # Fold the worker's span/metric delta into this process.
                TRACER.merge(telem["spans"])
                METRICS.merge(telem["metrics"])
            stats = SatStats.from_tuple(stats_t)
            if verdict == "sat":
                slots[slot] = SlotResult(SatResult.SAT, payload, None, stats)
            elif verdict == "unsat":
                proof, core = extra if extra is not None else (None, ())
                slots[slot] = SlotResult(
                    SatResult.UNSAT, None, None, stats,
                    proof=proof, core=tuple(core),
                )
            elif verdict == "error":
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, "fault", stats, error=payload
                )
            else:
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, reason, stats
                )
            if (
                first_wins
                and not winner_seen
                and verdict in ("sat", "unsat")
            ):
                winner_seen = True
                self._cancel.value = task_id
                # Keep draining so the queue stays clean, but losers are
                # now cancelled and report quickly.
        if first_wins and not winner_seen:
            self._cancel.value = task_id
        self.last_cancelled = sum(
            1 for s in slots if s is not None and s.reason == "cancelled"
        )
        if METRICS.enabled:
            METRICS.counter_inc("repro_parallel_tasks_total", len(tasks))
            METRICS.counter_inc(
                "repro_parallel_cancelled_total", self.last_cancelled
            )
        if budget is not None:
            # Charge the critical-path spend (max across slots), not the
            # aggregate: budgets govern wall-clock-equivalent work.
            done = [s for s in slots if s is not None]
            if done:
                budget.charge_conflicts(max(s.stats.conflicts for s in done))
                budget.charge_learned(max(s.stats.learned for s in done))
        return slots

    def _supervise(self, slots, attempts, assigned, dispatched_at,
                   dispatch, pending: int, winner_seen: bool) -> int:
        """Sweep for dead or hung workers; recover or quarantine their slots.

        Called from the result loop whenever the queue is briefly idle.
        A worker counts as *hung* when neither its heartbeat nor any of
        its dispatch timestamps moved within ``hang_seconds`` (a fresh
        dispatch resets the clock, so a worker is never flagged while a
        task is still in its queue's grace window).  Returns the updated
        pending-slot count.

        Any loss poisons the shared transport (a dead worker may hold
        the result pipe's write lock — see :meth:`_rebuild_transport`),
        so the sweep replaces the entire pool and re-dispatches every
        unresolved in-flight query on it.  Only slots whose own worker
        was lost count toward quarantine; innocent queries whose worker
        was sacrificed in the rebuild retry without penalty.
        """
        now = time.time()
        lost: set[_Worker] = set()
        for worker in set(assigned.values()):
            if not worker.proc.is_alive():
                lost.add(worker)
                continue
            latest = max(
                [worker.heartbeat.value]
                + [t for s, t in dispatched_at.items()
                   if assigned.get(s) is worker]
            )
            if now - latest > self.hang_seconds:
                lost.add(worker)
        if not lost:
            return pending
        lost_slots = sorted(s for s, w in assigned.items() if w in lost)
        innocent_slots = sorted(
            s for s, w in assigned.items() if w not in lost
        )
        assigned.clear()
        dispatched_at.clear()
        rebuild_error: Optional[str] = None
        try:
            self._rebuild_transport(replaced=len(lost))
        except Exception as exc:
            rebuild_error = repr(exc)
        requeue: list[int] = []
        for slot in lost_slots:
            if winner_seen:
                # The race is decided; don't redo a loser's work.
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, "cancelled", SatStats()
                )
                pending -= 1
                continue
            attempts[slot] += 1
            if attempts[slot] >= self.quarantine_after:
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, "quarantined", SatStats()
                )
                pending -= 1
                self.queries_quarantined += 1
                self.last_quarantined += 1
                if METRICS.enabled:
                    METRICS.counter_inc(
                        "repro_engine_quarantined_total")
                continue
            requeue.append(slot)
        for slot in innocent_slots:
            if winner_seen:
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, "cancelled", SatStats()
                )
                pending -= 1
                continue
            requeue.append(slot)
        for slot in requeue:
            if rebuild_error is not None or not self._workers:
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, "fault", SatStats(),
                    error=f"worker respawn failed: {rebuild_error}",
                )
                pending -= 1
                continue
            if METRICS.enabled:
                METRICS.counter_inc("repro_engine_requeued_total")
            dispatch(slot, self._workers[slot % len(self._workers)])
        return pending


_shared_pool: Optional[PortfolioPool] = None


def get_pool(jobs: int) -> PortfolioPool:
    """The process-wide pool, grown (never shrunk) to ``jobs`` workers."""
    global _shared_pool
    if (
        _shared_pool is None
        or _shared_pool.jobs < jobs
        or not _shared_pool.alive()
    ):
        if _shared_pool is not None:
            _shared_pool.close()
        _shared_pool = PortfolioPool(jobs)
    return _shared_pool


def shutdown_pool() -> None:
    global _shared_pool
    if _shared_pool is not None:
        _shared_pool.close()
        _shared_pool = None


atexit.register(shutdown_pool)
