"""Process-parallel CDCL portfolio.

The sequential :class:`~repro.runtime.portfolio.EscalationPolicy`
ladder tries one CDCL configuration after another.  With ``jobs > 1``
the same ladder races **concurrently**: every configuration solves the
identical (picklable) CNF in its own worker process, the first
definitive SAT/UNSAT answer wins and the losers are cancelled
cooperatively.  Because every configuration is a complete decision
procedure, the winning *verdict* is deterministic regardless of which
worker reports first — only the model and the timing can vary.

Design notes:

* Workers are **persistent** — the pool is shared across queries (one
  fork/spawn per worker per process lifetime, not per check), fed by
  per-worker task queues and drained through one shared result queue.
* Cancellation is a shared monotonically increasing *generation*
  counter: the parent bumps it to the current task id when a winner
  lands, and each worker's budget treats ``generation >= my task id``
  as :attr:`ExhaustionReason.CANCELLED` at its normal safepoints.
  Stale results from cancelled tasks are filtered by task id.
* Budget deadlines are shipped as *remaining seconds* and re-anchored
  on the worker's own monotonic clock, so the pool never depends on
  clocks being shared across processes.
* The module is spawn-safe: the worker entrypoint is a top-level
  function and every payload (clause lists, config kwargs, assumption
  literals) is picklable.  On platforms offering ``fork`` we prefer it
  for its near-zero startup cost.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing as mp
import os
import queue as queue_mod
from dataclasses import dataclass
from typing import Optional, Sequence

from ..obs import METRICS, TRACER
from ..runtime.budget import Budget, BudgetExhausted, ExhaustionReason
from ..smt.cnf import CNF
from ..smt.sat.cdcl import CDCLConfig, CDCLSolver, SatResult, SatStats


def default_jobs() -> int:
    """Parallelism from the ``REPRO_JOBS`` environment variable (>= 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


class _WorkerBudget(Budget):
    """A worker-side budget that also honors the shared cancel generation."""

    def __init__(self, cancel_cell, task_id: int, **kwargs):
        super().__init__(**kwargs)
        self._cancel_cell = cancel_cell
        self._task_id = task_id

    def exhausted(self) -> Optional[ExhaustionReason]:
        if (
            self._cancel_cell is not None
            and self._cancel_cell.value >= self._task_id
        ):
            return ExhaustionReason.CANCELLED
        return super().exhausted()


def _stats_tuple(stats: SatStats) -> tuple:
    return (
        stats.decisions,
        stats.conflicts,
        stats.propagations,
        stats.restarts,
        stats.learned,
        stats.deleted,
        stats.minimized_lits,
    )


def _worker_telemetry_begin(enabled: bool) -> None:
    """Arm (or disarm) this worker's local tracer/registry for one task.

    With ``fork`` the worker inherits the parent's singletons, including
    any records the parent had at fork time — so the state is reset
    explicitly per task and re-enabled only when the parent asked for
    telemetry, making each result's delta attributable to that task.
    """
    TRACER.clear()
    METRICS.clear()
    TRACER.enabled = enabled
    METRICS.enabled = enabled
    if enabled:
        TRACER.metrics = METRICS
        METRICS.proc = "worker"


def _worker_telemetry_capture(enabled: bool):
    """The span/metric delta shipped back with a result (None if off)."""
    if not enabled:
        return None
    METRICS.counter_inc("repro_parallel_tasks_total", proc="worker")
    blob = {
        "spans": TRACER.export_records(),
        "metrics": METRICS.snapshot(),
    }
    TRACER.clear()
    METRICS.clear()
    return blob


def _portfolio_worker(task_queue, result_queue, cancel_cell) -> None:
    """Worker loop: solve (CNF, config, assumptions) tasks until poisoned.

    Result messages are ``(task_id, slot, verdict, model, reason,
    stats, telemetry)`` where ``verdict`` is "sat"/"unsat"/"unknown"/
    "error", ``model`` is a 1-indexed bool list for SAT, ``reason`` the
    exhaustion reason value for UNKNOWN, ``stats`` a SatStats tuple,
    and ``telemetry`` the worker's span/metric delta (or None when the
    parent ran without telemetry).
    """
    while True:
        task = task_queue.get()
        if task is None:
            return
        (task_id, slot, num_vars, clauses, config_kwargs, assumptions,
         deadline, max_conflicts, max_learned, telemetry) = task
        if cancel_cell is not None and cancel_cell.value >= task_id:
            result_queue.put(
                (task_id, slot, "unknown", None, "cancelled",
                 _stats_tuple(SatStats()), None)
            )
            continue
        _worker_telemetry_begin(telemetry)
        budget = _WorkerBudget(
            cancel_cell, task_id,
            deadline_seconds=deadline,
            max_conflicts=max_conflicts,
            max_learned_clauses=max_learned,
        )
        budget.start()
        solver = CDCLSolver(
            num_vars, CDCLConfig(**config_kwargs), budget=budget
        )
        try:
            with TRACER.span("portfolio-rung", slot=slot,
                             mode="parallel") as span:
                cnf = CNF(
                    num_vars=num_vars, clauses=[list(c) for c in clauses]
                )
                ok = solver.add_cnf(cnf)
                with TRACER.span("cdcl", slot=slot):
                    result = (
                        solver.solve(assumptions=assumptions) if ok
                        else SatResult.UNSAT
                    )
                span.set("result", result.value)
        except BudgetExhausted as exc:
            result_queue.put(
                (task_id, slot, "unknown", None, exc.report.reason.value,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry))
            )
            continue
        except Exception as exc:  # never kill the worker loop
            result_queue.put(
                (task_id, slot, "error", repr(exc), None,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry))
            )
            continue
        if result is SatResult.SAT:
            result_queue.put(
                (task_id, slot, "sat", solver.model(), None,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry))
            )
        elif result is SatResult.UNSAT:
            result_queue.put(
                (task_id, slot, "unsat", None, None,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry))
            )
        else:
            reason = (
                solver.exhaust_report.reason.value
                if solver.exhaust_report is not None else None
            )
            result_queue.put(
                (task_id, slot, "unknown", None, reason,
                 _stats_tuple(solver.stats),
                 _worker_telemetry_capture(telemetry))
            )


@dataclass
class SlotResult:
    """Outcome of one portfolio slot (one config or one assumption set)."""

    verdict: SatResult
    model: Optional[list[bool]] = None
    reason: Optional[str] = None  # ExhaustionReason.value for UNKNOWN
    stats: SatStats = dataclasses.field(default_factory=SatStats)
    error: Optional[str] = None


class PoolUnavailable(RuntimeError):
    """The pool cannot run (worker startup failed, workers died, ...)."""


class PortfolioPool:
    """A persistent pool of CDCL worker processes shared across queries."""

    def __init__(self, jobs: int, start_method: Optional[str] = None):
        self.jobs = max(1, jobs)
        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START") or None
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._cancel = self._ctx.Value("q", 0)
        self._results = self._ctx.Queue()
        self._task_id = 0
        self._workers: list[tuple] = []  # (process, task_queue)
        self._closed = False
        # Slots cooperatively cancelled during the most recent _run();
        # surfaced via ResourceReport.cancelled_slots on timeouts.
        self.last_cancelled = 0
        for _ in range(self.jobs):
            self._spawn_worker()

    # ----- lifecycle --------------------------------------------------------

    def _spawn_worker(self) -> None:
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_portfolio_worker,
            args=(task_queue, self._results, self._cancel),
            daemon=True,
        )
        proc.start()
        self._workers.append((proc, task_queue))

    def _revive(self) -> None:
        """Replace dead workers so one crash doesn't shrink the pool."""
        alive = [(p, q) for p, q in self._workers if p.is_alive()]
        self._workers = alive
        while len(self._workers) < self.jobs:
            self._spawn_worker()

    def alive(self) -> bool:
        return not self._closed and any(p.is_alive() for p, _ in self._workers)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._cancel.value = self._task_id + 1
        for proc, task_queue in self._workers:
            try:
                task_queue.put_nowait(None)
            except Exception:
                pass
        for proc, _ in self._workers:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._workers = []

    # ----- solving ----------------------------------------------------------

    def solve_portfolio(
        self,
        cnf: CNF,
        configs: Sequence[Optional[CDCLConfig]],
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> tuple[SlotResult, int]:
        """Race ``configs`` on one CNF; first SAT/UNSAT wins.

        Returns ``(winner-or-summary, slots_dispatched)``.  When every
        slot answers UNKNOWN the summary carries the first *hard*
        exhaustion reason (or None for the retryable per-call conflict
        cap) and the maximum per-slot spend.
        """
        tasks = [
            (list(assumptions), config if config is not None else CDCLConfig())
            for config in configs
        ]
        results = self._run(cnf, tasks, budget, first_wins=True)
        definitive = next(
            (
                r for r in results
                if r is not None
                and r.verdict in (SatResult.SAT, SatResult.UNSAT)
            ),
            None,
        )
        if definitive is not None:
            return definitive, len(tasks)
        # All UNKNOWN (or dead): summarize.
        summary = SlotResult(verdict=SatResult.UNKNOWN, stats=SatStats())
        hard = None
        for r in results:
            if r is None:
                continue
            summary.stats.conflicts = max(
                summary.stats.conflicts, r.stats.conflicts
            )
            summary.stats.learned = max(summary.stats.learned, r.stats.learned)
            summary.stats.decisions = max(
                summary.stats.decisions, r.stats.decisions
            )
            if r.reason is not None and r.reason != "cancelled" and hard is None:
                hard = r.reason
        summary.reason = hard
        return summary, len(tasks)

    def solve_many(
        self,
        cnf: CNF,
        assumption_sets: Sequence[Sequence[int]],
        config: Optional[CDCLConfig] = None,
        budget: Optional[Budget] = None,
    ) -> list[Optional[SlotResult]]:
        """Solve one CNF under several assumption sets concurrently.

        The data-parallel mode used by :class:`DafnyBackend` to
        discharge independent VCs across the pool.  Every slot runs to
        completion (no first-wins cancellation); a slot is None only if
        its worker died.
        """
        config = config or CDCLConfig()
        tasks = [(list(a), config) for a in assumption_sets]
        return self._run(cnf, tasks, budget, first_wins=False)

    def _run(
        self,
        cnf: CNF,
        tasks: Sequence[tuple[list[int], CDCLConfig]],
        budget: Optional[Budget],
        first_wins: bool,
    ) -> list[Optional[SlotResult]]:
        if self._closed:
            raise PoolUnavailable("pool is closed")
        self._revive()
        if not self._workers:
            raise PoolUnavailable("no live workers")
        self._task_id += 1
        task_id = self._task_id
        deadline = budget.remaining_seconds() if budget is not None else None
        max_conflicts = max_learned = None
        if budget is not None:
            if budget.max_conflicts is not None:
                max_conflicts = max(
                    1, budget.max_conflicts - budget.conflicts
                )
            if budget.max_learned_clauses is not None:
                max_learned = max(
                    1, budget.max_learned_clauses - budget.learned_clauses
                )
        telemetry = TRACER.enabled or METRICS.enabled
        slots: list[Optional[SlotResult]] = [None] * len(tasks)
        assigned_workers: list = []
        for slot, (assumptions, config) in enumerate(tasks):
            proc, task_queue = self._workers[slot % len(self._workers)]
            task_queue.put((
                task_id, slot, cnf.num_vars, cnf.clauses,
                dataclasses.asdict(config), assumptions,
                deadline, max_conflicts, max_learned, telemetry,
            ))
            assigned_workers.append(proc)
        pending = len(tasks)
        winner_seen = False
        while pending > 0:
            try:
                msg = self._results.get(timeout=0.05)
            except queue_mod.Empty:
                if budget is not None and budget.exhausted() is not None:
                    # Parent budget ran out (e.g. cancel() from outside):
                    # tell the workers and stop waiting for stragglers.
                    self._cancel.value = task_id
                    break
                if not any(p.is_alive() for p in assigned_workers):
                    break  # every worker with our tasks died
                continue
            msg_task_id, slot, verdict, payload, reason, stats_t, telem = msg
            if msg_task_id != task_id:
                continue  # stale result from a cancelled generation
            pending -= 1
            if telem is not None:
                # Fold the worker's span/metric delta into this process.
                TRACER.merge(telem["spans"])
                METRICS.merge(telem["metrics"])
            stats = SatStats(*stats_t)
            if verdict == "sat":
                slots[slot] = SlotResult(SatResult.SAT, payload, None, stats)
            elif verdict == "unsat":
                slots[slot] = SlotResult(SatResult.UNSAT, None, None, stats)
            elif verdict == "error":
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, "fault", stats, error=payload
                )
            else:
                slots[slot] = SlotResult(
                    SatResult.UNKNOWN, None, reason, stats
                )
            if (
                first_wins
                and not winner_seen
                and verdict in ("sat", "unsat")
            ):
                winner_seen = True
                self._cancel.value = task_id
                # Keep draining so the queue stays clean, but losers are
                # now cancelled and report quickly.
        if first_wins and not winner_seen:
            self._cancel.value = task_id
        self.last_cancelled = sum(
            1 for s in slots if s is not None and s.reason == "cancelled"
        )
        if METRICS.enabled:
            METRICS.counter_inc("repro_parallel_tasks_total", len(tasks))
            METRICS.counter_inc(
                "repro_parallel_cancelled_total", self.last_cancelled
            )
        if budget is not None:
            # Charge the critical-path spend (max across slots), not the
            # aggregate: budgets govern wall-clock-equivalent work.
            done = [s for s in slots if s is not None]
            if done:
                budget.charge_conflicts(max(s.stats.conflicts for s in done))
                budget.charge_learned(max(s.stats.learned for s in done))
        return slots


_shared_pool: Optional[PortfolioPool] = None


def get_pool(jobs: int) -> PortfolioPool:
    """The process-wide pool, grown (never shrunk) to ``jobs`` workers."""
    global _shared_pool
    if (
        _shared_pool is None
        or _shared_pool.jobs < jobs
        or not _shared_pool.alive()
    ):
        if _shared_pool is not None:
            _shared_pool.close()
        _shared_pool = PortfolioPool(jobs)
    return _shared_pool


def shutdown_pool() -> None:
    global _shared_pool
    if _shared_pool is not None:
        _shared_pool.close()
        _shared_pool = None


atexit.register(shutdown_pool)
