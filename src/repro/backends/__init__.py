"""Analysis back ends over the shared symbolic-execution IR (§4)."""

from .base import AnalysisBackend
from .dafny import DafnyBackend, DafnyReport, StateView, VCResult, VCStatus
from .fperf import FPerfBackend, SynthesisResult
from .houdini import Candidate, HoudiniResult, HoudiniSynthesizer, default_grammar
from .mc import MCResult, MCStatus, ModelChecker, to_chc
from .network import NetworkBackend
from .smt_backend import (
    CounterexampleTrace,
    SmtBackend,
    Status,
    VerificationResult,
)

__all__ = [
    "AnalysisBackend",
    "Candidate", "CounterexampleTrace", "DafnyBackend", "DafnyReport",
    "FPerfBackend", "HoudiniResult", "HoudiniSynthesizer",
    "MCResult", "MCStatus", "ModelChecker", "NetworkBackend", "SmtBackend",
    "Status", "StateView", "SynthesisResult", "VCResult", "VCStatus",
    "VerificationResult", "default_grammar", "to_chc",
]
