"""Dafny-style back end: an annotation checker over Buffy programs (§4/§6).

Dafny verifies an imperative program by discharging one verification
condition (VC) per assertion, given user-supplied annotations (loop
invariants, requires/ensures).  This module reproduces that workflow
on top of our SMT substrate, in the two regimes the paper's case
studies contrast:

* **Monolithic** (:meth:`DafnyBackend.verify_monolithic`) — the §6.1
  regime: no invariants are available, so the per-step program is
  *inlined* and the timestep loop *unrolled* to horizon ``T``; every
  assert becomes its own VC over the full unrolling.  Figure 6 shows —
  and the bench ``bench_fig6_dafny_scaling.py`` reproduces — that
  verification time grows exponentially in ``T``.

* **Modular** (:meth:`DafnyBackend.verify_modular`) — the §6.2/§5
  regime: the user supplies an *interface specification* (an inductive
  invariant over the program's persistent state).  Verification then
  needs only three T-independent VCs: initiation, consecution (one
  symbolic step from a havocked state assumed to satisfy the
  invariant — the paper's "structured havoc"), and the property check.

Procedure contracts (``requires`` / ``ensures``) are checked by
:meth:`DafnyBackend.verify_procedure`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..buffers.symbolic import SymbolicList
from ..compiler.symexec import EncodeConfig, SymbolicMachine, _Executor
from ..lang.ast import Procedure
from ..lang.checker import CheckedProgram
from ..lang.types import ArrayType, BoolType, BufferType, IntType, ListType
from ..runtime.budget import Budget, BudgetExhausted, ResourceReport
from ..smt.sat.cdcl import CDCLConfig
from ..smt.solver import CheckResult, SmtSolver, governed_check
from ..smt.terms import TRUE, Term, mk_and, mk_not


class VCStatus(enum.Enum):
    VERIFIED = "verified"
    FAILED = "failed"      # a model violating the VC exists
    UNKNOWN = "unknown"


@dataclass
class VCResult:
    """One discharged verification condition."""

    name: str
    status: VCStatus
    elapsed_seconds: float
    cnf_vars: int = 0
    cnf_clauses: int = 0
    resource_report: Optional[ResourceReport] = None


@dataclass
class DafnyReport:
    """Aggregate result of a verification run.

    Under a :class:`repro.runtime.Budget` individual VCs may come back
    UNKNOWN (with :attr:`VCResult.resource_report` populated) while the
    rest of the run keeps going — per-VC failure isolation.  ``ok`` is
    then False and :attr:`complete` distinguishes "a VC failed" from
    "a VC was not decided".
    """

    vcs: list[VCResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(vc.status is VCStatus.VERIFIED for vc in self.vcs)

    @property
    def complete(self) -> bool:
        """True when every VC was actually decided (no UNKNOWNs)."""
        return all(vc.status is not VCStatus.UNKNOWN for vc in self.vcs)

    @property
    def elapsed_seconds(self) -> float:
        return sum(vc.elapsed_seconds for vc in self.vcs)

    def failed(self) -> list[VCResult]:
        return [vc for vc in self.vcs if vc.status is not VCStatus.VERIFIED]

    def unknown(self) -> list[VCResult]:
        return [vc for vc in self.vcs if vc.status is VCStatus.UNKNOWN]


class StateView:
    """Convenience accessors for writing invariants/queries over a machine."""

    def __init__(self, machine: SymbolicMachine):
        self._machine = machine

    def global_(self, name: str):
        return self._machine.globals_[name]

    def list_(self, name: str) -> SymbolicList:
        value = self._machine.globals_[name]
        if not isinstance(value, SymbolicList):
            raise TypeError(f"{name!r} is not a list")
        return value

    def _buf(self, label: str):
        return self._machine._buffer_by_label(label)

    def backlog_p(self, label: str) -> Term:
        return self._buf(label).backlog_p()

    def deq_p(self, label: str) -> Term:
        return self._buf(label).stats.deq_p

    def enq_p(self, label: str) -> Term:
        return self._buf(label).stats.enq_p

    def drop_p(self, label: str) -> Term:
        return self._buf(label).stats.drop_p

    def buffer_labels(self) -> list[str]:
        return self._machine._all_buffer_labels()


Invariant = Callable[[StateView], Term]
Query = Callable[[StateView], Term]


class DafnyBackend:
    """Annotation-checker verification of a Buffy program."""

    def __init__(
        self,
        checked: CheckedProgram,
        config: Optional[EncodeConfig] = None,
        sat_config: Optional[CDCLConfig] = None,
        budget: Optional[Budget] = None,
        escalation=None,
    ):
        self.checked = checked
        self.config = config or EncodeConfig()
        self.sat_config = sat_config
        self.budget = budget
        self.escalation = escalation

    # ----- VC discharge -----------------------------------------------------

    def _discharge(self, name: str, machine: SymbolicMachine,
                   goal: Term) -> VCResult:
        """Check ``assumptions => goal``; a model of the negation fails it.

        A budget exhaustion or solver fault marks *this* VC UNKNOWN and
        the caller continues with the remaining VCs (an already-spent
        budget makes those refuse quickly rather than hang).
        """
        t0 = time.perf_counter()
        solver = SmtSolver(
            sat_config=self.sat_config,
            budget=self.budget, escalation=self.escalation,
        )
        for var, (lo, hi) in machine.bounds.items():
            solver.set_bounds(var, lo, hi)
        for assumption in machine.assumptions:
            solver.add(assumption)
        solver.add(mk_not(goal))
        result, report = governed_check(solver)
        elapsed = time.perf_counter() - t0
        status = {
            CheckResult.UNSAT: VCStatus.VERIFIED,
            CheckResult.SAT: VCStatus.FAILED,
            CheckResult.UNKNOWN: VCStatus.UNKNOWN,
        }[result]
        return VCResult(
            name,
            status,
            elapsed,
            cnf_vars=solver.stats.cnf_vars,
            cnf_clauses=solver.stats.cnf_clauses,
            resource_report=report,
        )

    def _exhausted_vc(self, name: str, exc: BudgetExhausted) -> VCResult:
        """A VC whose *encoding* (symbolic unrolling) ran out of budget."""
        return VCResult(
            name, VCStatus.UNKNOWN, 0.0, resource_report=exc.report
        )

    # ----- monolithic (unroll + inline) regime ------------------------------------

    def verify_monolithic(
        self,
        horizon: int,
        queries: Sequence[tuple[str, Query]] = (),
        include_asserts: bool = True,
    ) -> DafnyReport:
        """Unroll ``horizon`` steps and discharge one VC per obligation.

        Without loop invariants an annotation checker must see the loop
        bodies unrolled and the scheduler method inlined — this is the
        transformation §6.1 describes, and the per-VC formulas grow
        with the horizon.
        """
        machine = SymbolicMachine(self.checked, self.config,
                                  budget=self.budget)
        report = DafnyReport()
        try:
            for _ in range(horizon):
                machine.exec_step()
        except BudgetExhausted as exc:
            # Could not even finish encoding: report one UNKNOWN VC so
            # callers see a structured partial result, not an exception.
            report.vcs.append(self._exhausted_vc("unroll", exc))
            return report
        if include_asserts:
            for ob in machine.obligations:
                report.vcs.append(
                    self._discharge(ob.describe(), machine, ob.formula)
                )
        view = StateView(machine)
        for name, query in queries:
            report.vcs.append(self._discharge(name, machine, query(view)))
        return report

    # ----- modular (invariant-annotated) regime --------------------------------------

    def verify_modular(
        self,
        invariant: Invariant,
        queries: Sequence[tuple[str, Query]] = (),
        value_range: tuple[int, int] = (-1, 63),
        stat_bound: int = 1 << 10,
    ) -> DafnyReport:
        """Check that ``invariant`` is inductive and implies the queries.

        Three T-independent VCs (the §5 modular-analysis workflow):

        1. ``init``      — the initial state satisfies the invariant;
        2. ``preserve``  — one arbitrary step from any invariant state
                           re-establishes the invariant (structured havoc);
        3. one VC per query — the invariant implies it.
        """
        report = DafnyReport()

        # (1) initiation: the freshly initialized machine has no
        # variables in its state, so the invariant must be valid as-is.
        init_machine = SymbolicMachine(self.checked, self.config)
        init_goal = invariant(StateView(init_machine))
        report.vcs.append(self._discharge("init", init_machine, init_goal))

        # (2) consecution: havoc state, assume the invariant, run one step.
        step_machine = SymbolicMachine(self.checked, self.config,
                                       budget=self.budget)
        step_machine.havoc_state(value_range=value_range, stat_bound=stat_bound)
        step_machine.assumptions.append(invariant(StateView(step_machine)))
        try:
            step_machine.exec_step()
        except BudgetExhausted as exc:
            report.vcs.append(self._exhausted_vc("preserve", exc))
            return report
        post = invariant(StateView(step_machine))
        report.vcs.append(self._discharge("preserve", step_machine, post))

        # (3) property: invariant implies each query at the boundary.
        for name, query in queries:
            query_machine = SymbolicMachine(self.checked, self.config)
            query_machine.havoc_state(
                value_range=value_range, stat_bound=stat_bound
            )
            view = StateView(query_machine)
            query_machine.assumptions.append(invariant(view))
            report.vcs.append(
                self._discharge(f"query:{name}", query_machine, query(view))
            )
        return report

    # ----- procedure contracts ---------------------------------------------------------

    def verify_procedure(
        self,
        name: str,
        value_range: tuple[int, int] = (-1, 63),
        stat_bound: int = 1 << 10,
    ) -> DafnyReport:
        """Check a procedure's body against its requires/ensures contract."""
        proc = self._find_procedure(name)
        machine = SymbolicMachine(self.checked, self.config)
        machine.havoc_state(value_range=value_range, stat_bound=stat_bound)
        env = self._havoc_params(machine, proc, value_range)
        executor = _Executor(machine, env)
        for pre in proc.requires:
            machine.assumptions.append(executor.eval(pre))
        executor.exec_cmd(proc.body, TRUE)
        report = DafnyReport()
        for ob in machine.obligations:
            report.vcs.append(self._discharge(ob.describe(), machine, ob.formula))
        for i, post in enumerate(proc.ensures):
            goal = executor.eval(post)
            report.vcs.append(
                self._discharge(f"{name}.ensures[{i}]", machine, goal)
            )
        return report

    def _find_procedure(self, name: str) -> Procedure:
        for proc in self.checked.program.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no procedure {name!r} in {self.checked.name}")

    def _havoc_params(self, machine: SymbolicMachine, proc: Procedure,
                      value_range: tuple[int, int]) -> dict:
        from ..smt.terms import mk_bool_var, mk_int_var

        env: dict = {}
        for i, param in enumerate(proc.params):
            label = f"{machine.prefix}.{proc.name}.arg.{param.name}"
            if isinstance(param.type, IntType):
                var = mk_int_var(label)
                machine.bounds[var.name] = value_range
                env[param.name] = var
            elif isinstance(param.type, BoolType):
                env[param.name] = mk_bool_var(label)
            elif isinstance(param.type, (ListType, BufferType, ArrayType)):
                value = machine._default_value(param.type, label)
                value = machine._havoc_value(value, label, value_range)
                if isinstance(value, SymbolicList):
                    pass  # already havocked in place by _havoc_value
                env[param.name] = value
            else:  # pragma: no cover - checker prevents
                raise TypeError(f"unsupported parameter type {param.type}")
        return env
