"""Dafny-style back end: an annotation checker over Buffy programs (§4/§6).

Dafny verifies an imperative program by discharging one verification
condition (VC) per assertion, given user-supplied annotations (loop
invariants, requires/ensures).  This module reproduces that workflow
on top of our SMT substrate, in the two regimes the paper's case
studies contrast:

* **Monolithic** (:meth:`DafnyBackend.verify_monolithic`) — the §6.1
  regime: no invariants are available, so the per-step program is
  *inlined* and the timestep loop *unrolled* to horizon ``T``; every
  assert becomes its own VC over the full unrolling.  Figure 6 shows —
  and the bench ``bench_fig6_dafny_scaling.py`` reproduces — that
  verification time grows exponentially in ``T``.

* **Modular** (:meth:`DafnyBackend.verify_modular`) — the §6.2/§5
  regime: the user supplies an *interface specification* (an inductive
  invariant over the program's persistent state).  Verification then
  needs only three T-independent VCs: initiation, consecution (one
  symbolic step from a havocked state assumed to satisfy the
  invariant — the paper's "structured havoc"), and the property check.

Procedure contracts (``requires`` / ``ensures``) are checked by
:meth:`DafnyBackend.verify_procedure`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..buffers.symbolic import SymbolicList
from ..compiler.symexec import EncodeConfig, SymbolicMachine, _Executor
from ..lang.ast import Procedure
from ..lang.checker import CheckedProgram
from ..lang.types import ArrayType, BoolType, BufferType, IntType, ListType
from ..obs import METRICS, TRACER
from ..runtime.budget import (
    Budget,
    BudgetExhausted,
    ExhaustionReason,
    ResourceReport,
)
from ..smt.sat.cdcl import CDCLConfig, SatResult
from ..smt.solver import CheckResult, SmtSolver, governed_check
from ..smt.terms import TRUE, Term, mk_and, mk_not
from .base import AnalysisBackend, resolve_legacy_names


class VCStatus(enum.Enum):
    VERIFIED = "verified"
    FAILED = "failed"      # a model violating the VC exists
    UNKNOWN = "unknown"


@dataclass
class VCResult:
    """One discharged verification condition."""

    name: str
    status: VCStatus
    elapsed_seconds: float
    cnf_vars: int = 0
    cnf_clauses: int = 0
    resource_report: Optional[ResourceReport] = None


@dataclass
class DafnyReport:
    """Aggregate result of a verification run.

    Under a :class:`repro.runtime.Budget` individual VCs may come back
    UNKNOWN (with :attr:`VCResult.resource_report` populated) while the
    rest of the run keeps going — per-VC failure isolation.  ``ok`` is
    then False and :attr:`complete` distinguishes "a VC failed" from
    "a VC was not decided".
    """

    vcs: list[VCResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(vc.status is VCStatus.VERIFIED for vc in self.vcs)

    @property
    def complete(self) -> bool:
        """True when every VC was actually decided (no UNKNOWNs)."""
        return all(vc.status is not VCStatus.UNKNOWN for vc in self.vcs)

    @property
    def elapsed_seconds(self) -> float:
        return sum(vc.elapsed_seconds for vc in self.vcs)

    def failed(self) -> list[VCResult]:
        return [vc for vc in self.vcs if vc.status is not VCStatus.VERIFIED]

    def unknown(self) -> list[VCResult]:
        return [vc for vc in self.vcs if vc.status is VCStatus.UNKNOWN]

    def outcome(self):
        """Convert to the uniform :class:`repro.analysis.result.AnalysisOutcome`."""
        from ..analysis.result import AnalysisOutcome, Verdict, verdict_for_unknown

        failed = [vc for vc in self.vcs if vc.status is VCStatus.FAILED]
        unknown = self.unknown()
        if failed:
            verdict = Verdict.VIOLATED
        elif unknown:
            verdict = verdict_for_unknown(unknown[0].resource_report)
        else:
            verdict = Verdict.PROVED
        report = unknown[0].resource_report if unknown else None
        return AnalysisOutcome(
            verdict=verdict,
            witness=[vc.name for vc in failed] or None,
            report=report,
            stats={
                "vcs": len(self.vcs),
                "failed": len(failed),
                "unknown": len(unknown),
                "elapsed_seconds": self.elapsed_seconds,
            },
        )


class StateView:
    """Convenience accessors for writing invariants/queries over a machine."""

    def __init__(self, machine: SymbolicMachine):
        self._machine = machine

    def global_(self, name: str):
        return self._machine.globals_[name]

    def list_(self, name: str) -> SymbolicList:
        value = self._machine.globals_[name]
        if not isinstance(value, SymbolicList):
            raise TypeError(f"{name!r} is not a list")
        return value

    def _buf(self, label: str):
        return self._machine._buffer_by_label(label)

    def backlog_p(self, label: str) -> Term:
        return self._buf(label).backlog_p()

    def deq_p(self, label: str) -> Term:
        return self._buf(label).stats.deq_p

    def enq_p(self, label: str) -> Term:
        return self._buf(label).stats.enq_p

    def drop_p(self, label: str) -> Term:
        return self._buf(label).stats.drop_p

    def buffer_labels(self) -> list[str]:
        return self._machine._all_buffer_labels()


Invariant = Callable[[StateView], Term]
Query = Callable[[StateView], Term]


class DafnyBackend(AnalysisBackend):
    """Annotation-checker verification of a Buffy program.

    Normalized constructor: ``DafnyBackend(program, *, budget=...,
    chaos=..., solver_factory=..., jobs=..., cache=...)``; the legacy
    ``checked=`` keyword remains for one release and emits a
    ``DeprecationWarning``.  All VCs sharing one
    symbolic machine are discharged against **one** incremental solver
    (the machine is bit-blasted once, each negated goal rides as a
    check-time assumption), and with ``jobs > 1`` independent VCs of a
    machine are additionally farmed out across the worker pool.
    """

    def __init__(
        self,
        program: Optional[CheckedProgram] = None,
        config: Optional[EncodeConfig] = None,
        sat_config: Optional[CDCLConfig] = None,
        budget: Optional[Budget] = None,
        escalation=None,
        *,
        validate_models: bool = True,
        chaos=None,
        solver_factory=None,
        jobs: Optional[int] = None,
        cache=None,
        incremental: Optional[bool] = None,
        certify: Optional[bool] = None,
        checked: Optional[CheckedProgram] = None,
    ):
        program, _ = resolve_legacy_names(program, None, checked, None,
                                          "DafnyBackend")
        if program is None:
            raise TypeError("DafnyBackend requires a program")
        super().__init__(
            program,
            sat_config=sat_config, validate_models=validate_models,
            budget=budget, escalation=escalation, chaos=chaos,
            solver_factory=solver_factory, jobs=jobs, cache=cache,
            incremental=incremental, certify=certify,
        )
        self.config = config or EncodeConfig()

    def _default_incremental(self) -> bool:
        # Many VCs share one machine encoding — reuse it by default.
        return True

    # ----- VC discharge -----------------------------------------------------

    def _discharge(self, name: str, target, goal: Term) -> VCResult:
        """Check ``assumptions => goal``; a model of the negation fails it.

        ``target`` is a prepared solver (shared across a machine's VCs)
        or, for the legacy spelling, a :class:`SymbolicMachine`.  A
        budget exhaustion or solver fault marks *this* VC UNKNOWN and
        the caller continues with the remaining VCs (an already-spent
        budget makes those refuse quickly rather than hang).
        """
        t0 = time.perf_counter()
        if isinstance(target, SymbolicMachine):
            solver = self._machine_solver(target)
        else:
            solver = target
        # The negated goal is a check-time assumption, not an assertion,
        # so the shared incremental encoding stays goal-free.
        with TRACER.span("vc", vc=name, backend="dafny") as sp:
            result, report = governed_check(solver, mk_not(goal))
            sp.set("result", result.value)
        elapsed = time.perf_counter() - t0
        status = {
            CheckResult.UNSAT: VCStatus.VERIFIED,
            CheckResult.SAT: VCStatus.FAILED,
            CheckResult.UNKNOWN: VCStatus.UNKNOWN,
        }[result]
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_vcs_total", backend="dafny", status=status.value)
        return VCResult(
            name,
            status,
            elapsed,
            cnf_vars=solver.stats.cnf_vars,
            cnf_clauses=solver.stats.cnf_clauses,
            resource_report=report,
        )

    def _discharge_all(
        self, machine: SymbolicMachine,
        named_goals: Sequence[tuple[str, Term]],
    ) -> list[VCResult]:
        """Discharge every VC of one machine against one shared encoding.

        With ``jobs > 1`` (and no chaos/custom factory intercepting the
        solver) the independent VCs are solved concurrently on the
        worker pool — the CNF ships once, each worker checks a
        different negated goal under assumptions.
        """
        named_goals = list(named_goals)
        if not named_goals:
            return []
        jobs = self._effective_jobs()
        if (
            len(named_goals) > 1 and jobs > 1
            and self.solver_factory is None and not self._chaos_active()
        ):
            results = self._discharge_parallel(machine, named_goals, jobs)
            if results is not None:
                return results
        solver = self._machine_solver(machine)
        return [
            self._discharge(name, solver, goal) for name, goal in named_goals
        ]

    def _effective_jobs(self) -> int:
        if self.jobs is not None:
            return max(1, self.jobs)
        from ..engine.parallel import default_jobs

        return default_jobs()

    def _discharge_parallel(
        self, machine: SymbolicMachine,
        named_goals: list[tuple[str, Term]], jobs: int,
    ) -> Optional[list[VCResult]]:
        """Batch-discharge independent VCs across the process pool.

        Each VC is first looked up in the result cache (keyed on the
        machine's assumptions + the negated goal + bounds); only misses
        are bit-blasted and shipped to the pool.  Returns None (caller
        falls back to the shared sequential path) when the pool is
        unavailable or a model fails validation.
        """
        from ..engine.cache import (
            CacheEntry,
            formula_fingerprint,
            resolve_cache,
        )
        from ..engine.parallel import PoolUnavailable, get_pool
        from ..smt.bitblast import BitBlaster
        from ..smt.intervals import BoundsEnv
        from ..smt.model import Model

        t0 = time.perf_counter()
        bounds = BoundsEnv()
        for var, (lo, hi) in machine.bounds.items():
            bounds.set(var, lo, hi)
        cache = resolve_cache(self.cache)
        certify = self._effective_certify()
        keys: list[Optional[str]] = [None] * len(named_goals)
        done: dict[int, VCResult] = {}
        if cache is not None:
            memo: dict[int, bytes] = {}
            base = list(machine.assumptions)
            for idx, (name, goal) in enumerate(named_goals):
                key = formula_fingerprint(base + [mk_not(goal)], bounds, memo)
                keys[idx] = key
                hit = cache.get(key)
                if hit is None:
                    continue
                if hit.verdict == "unsat":
                    if certify:
                        # A cached VERIFIED carries no proof; a certified
                        # run must re-derive (and re-check) it.
                        continue
                    done[idx] = VCResult(
                        name, VCStatus.VERIFIED, 0.0,
                        cnf_vars=hit.cnf_vars, cnf_clauses=hit.cnf_clauses,
                    )
                elif hit.assignment is not None:
                    # A SAT hit is trusted only after its assignment
                    # re-validates against this VC's own terms.
                    model = Model(dict(hit.assignment))
                    if model.eval(mk_not(goal)) is True and all(
                        model.eval(a) is True for a in machine.assumptions
                    ):
                        done[idx] = VCResult(
                            name, VCStatus.FAILED, 0.0,
                            cnf_vars=hit.cnf_vars,
                            cnf_clauses=hit.cnf_clauses,
                        )
        misses = [i for i in range(len(named_goals)) if i not in done]
        if not misses:
            return [done[i] for i in range(len(named_goals))]
        blaster = BitBlaster(bounds=bounds, budget=self.budget)
        try:
            for assumption in machine.assumptions:
                blaster.assert_formula(assumption)
            goal_lits = [
                blaster.literal_for(mk_not(named_goals[i][1]))
                for i in misses
            ]
        except BudgetExhausted as exc:
            return [
                done.get(i) or VCResult(
                    named_goals[i][0], VCStatus.UNKNOWN, 0.0,
                    resource_report=exc.report,
                )
                for i in range(len(named_goals))
            ]
        if self.budget is not None:
            for _ in misses:
                self.budget.charge_solver_call()
        try:
            pool = get_pool(jobs)
            with TRACER.span("vc-batch", backend="dafny",
                             vcs=len(misses), jobs=jobs):
                slots = pool.solve_many(
                    blaster.cnf, [[lit] for lit in goal_lits],
                    config=self.sat_config, budget=self.budget,
                    certify=certify,
                )
        except PoolUnavailable:
            return None
        elapsed = time.perf_counter() - t0
        per_vc = elapsed / max(1, len(misses))
        for idx, slot in zip(misses, slots):
            name, goal = named_goals[idx]
            if slot is None or slot.error is not None:
                return None  # worker died: redo sequentially
            if slot.verdict is SatResult.SAT:
                assignment = blaster.varmap.decode(slot.model)
                model = Model(assignment)
                if self.validate_models and (
                    model.eval(mk_not(goal)) is not True
                    or any(model.eval(a) is not True
                           for a in machine.assumptions)
                ):
                    return None  # refuse an unvalidated parallel model
                status = VCStatus.FAILED
                report = None
            elif slot.verdict is SatResult.UNSAT:
                report = (
                    self._certify_slot(blaster, slot, name) if certify
                    else None
                )
                status = (
                    VCStatus.UNKNOWN if report is not None
                    else VCStatus.VERIFIED
                )
            else:
                status = VCStatus.UNKNOWN
                report = self._slot_report(slot)
            if cache is not None and keys[idx] is not None and (
                status is not VCStatus.UNKNOWN
            ):
                cache.put(keys[idx], CacheEntry(
                    verdict="unsat" if status is VCStatus.VERIFIED else "sat",
                    assignment=dict(assignment)
                    if status is VCStatus.FAILED else None,
                    cnf_vars=blaster.cnf.num_vars,
                    cnf_clauses=len(blaster.cnf.clauses),
                ))
            done[idx] = VCResult(
                name, status, per_vc,
                cnf_vars=blaster.cnf.num_vars,
                cnf_clauses=len(blaster.cnf.clauses),
                resource_report=report,
            )
        results = [done[i] for i in range(len(named_goals))]
        if METRICS.enabled:
            for vc in results:
                METRICS.counter_inc(
                    "repro_vcs_total", backend="dafny",
                    status=vc.status.value)
        return results

    def _certify_slot(self, blaster, slot, name: str) -> Optional[ResourceReport]:
        """Check one parallel UNSAT slot's DRAT certificate.

        Returns None when the certificate checks; otherwise a
        CERTIFICATION_FAILED report — the caller downgrades the VC to
        UNKNOWN rather than report an unverified VERIFIED.
        """
        from ..trust import Certificate

        cert = Certificate(
            num_vars=blaster.cnf.num_vars,
            clauses=list(blaster.cnf.clauses),
            steps=list(slot.proof or []),
            core=tuple(slot.core or ()),
        )
        with TRACER.span("proof-check", vc=name, steps=len(cert.steps)):
            ok = cert.verify()
        if METRICS.enabled:
            METRICS.counter_inc("repro_trust_proofs_checked_total")
        if ok:
            return None
        if METRICS.enabled:
            METRICS.counter_inc("repro_trust_proofs_failed_total")
        return ResourceReport(
            reason=ExhaustionReason.CERTIFICATION_FAILED,
            message=f"VC {name!r}: UNSAT answer failed proof check:"
                    f" {cert.error}",
        )

    def explain_vc(self, machine: SymbolicMachine, goal: Term) -> list[Term]:
        """Which of ``machine``'s assumptions a verified ``goal`` uses.

        Discharges ``assumptions => goal`` on one incremental solver
        with every machine assumption passed as a *check-time
        assumption* rather than an assertion; on UNSAT (VC verified)
        the solver's unsat core names exactly the assumptions the
        refutation touched.  An empty list means the goal is valid on
        its own.  Raises :class:`ValueError` when the VC is not
        verified (SAT: a counterexample exists; UNKNOWN: undecided).
        """
        solver = self._new_solver(incremental=True)
        for var, (lo, hi) in machine.bounds.items():
            solver.set_bounds(var, lo, hi)
        solver.add(mk_not(goal))
        result = solver.check(*machine.assumptions)
        if result is not CheckResult.UNSAT:
            raise ValueError(
                f"VC is not verified (check() answered {result.value});"
                " no unsat core exists"
            )
        return solver.unsat_core()

    def _slot_report(self, slot) -> Optional[ResourceReport]:
        from ..runtime.budget import ExhaustionReason

        if slot.reason is None:
            return None
        reason = ExhaustionReason(slot.reason)
        if self.budget is not None:
            return self.budget.report(reason, "parallel VC discharge")
        return ResourceReport(reason=reason, message="parallel VC discharge")

    def _exhausted_vc(self, name: str, exc: BudgetExhausted) -> VCResult:
        """A VC whose *encoding* (symbolic unrolling) ran out of budget."""
        return VCResult(
            name, VCStatus.UNKNOWN, 0.0, resource_report=exc.report
        )

    # ----- monolithic (unroll + inline) regime ------------------------------------

    def verify_monolithic(
        self,
        horizon: int,
        queries: Sequence[tuple[str, Query]] = (),
        include_asserts: bool = True,
    ) -> DafnyReport:
        """Unroll ``horizon`` steps and discharge one VC per obligation.

        Without loop invariants an annotation checker must see the loop
        bodies unrolled and the scheduler method inlined — this is the
        transformation §6.1 describes, and the per-VC formulas grow
        with the horizon.
        """
        machine = SymbolicMachine(self.program, self.config,
                                  budget=self.budget)
        report = DafnyReport()
        try:
            for _ in range(horizon):
                machine.exec_step()
        except BudgetExhausted as exc:
            # Could not even finish encoding: report one UNKNOWN VC so
            # callers see a structured partial result, not an exception.
            report.vcs.append(self._exhausted_vc("unroll", exc))
            return report
        named_goals: list[tuple[str, Term]] = []
        if include_asserts:
            for ob in machine.obligations:
                named_goals.append((ob.describe(), ob.formula))
        view = StateView(machine)
        for name, query in queries:
            named_goals.append((name, query(view)))
        report.vcs.extend(self._discharge_all(machine, named_goals))
        return report

    # ----- modular (invariant-annotated) regime --------------------------------------

    def verify_modular(
        self,
        invariant: Invariant,
        queries: Sequence[tuple[str, Query]] = (),
        value_range: tuple[int, int] = (-1, 63),
        stat_bound: int = 1 << 10,
    ) -> DafnyReport:
        """Check that ``invariant`` is inductive and implies the queries.

        Three T-independent VCs (the §5 modular-analysis workflow):

        1. ``init``      — the initial state satisfies the invariant;
        2. ``preserve``  — one arbitrary step from any invariant state
                           re-establishes the invariant (structured havoc);
        3. one VC per query — the invariant implies it.
        """
        report = DafnyReport()

        # (1) initiation: the freshly initialized machine has no
        # variables in its state, so the invariant must be valid as-is.
        init_machine = SymbolicMachine(self.program, self.config)
        init_goal = invariant(StateView(init_machine))
        report.vcs.append(self._discharge("init", init_machine, init_goal))

        # (2) consecution: havoc state, assume the invariant, run one step.
        step_machine = SymbolicMachine(self.program, self.config,
                                       budget=self.budget)
        step_machine.havoc_state(value_range=value_range, stat_bound=stat_bound)
        step_machine.assumptions.append(invariant(StateView(step_machine)))
        try:
            step_machine.exec_step()
        except BudgetExhausted as exc:
            report.vcs.append(self._exhausted_vc("preserve", exc))
            return report
        post = invariant(StateView(step_machine))
        report.vcs.append(self._discharge("preserve", step_machine, post))

        # (3) property: invariant implies each query at the boundary.
        for name, query in queries:
            query_machine = SymbolicMachine(self.program, self.config)
            query_machine.havoc_state(
                value_range=value_range, stat_bound=stat_bound
            )
            view = StateView(query_machine)
            query_machine.assumptions.append(invariant(view))
            report.vcs.append(
                self._discharge(f"query:{name}", query_machine, query(view))
            )
        return report

    # ----- procedure contracts ---------------------------------------------------------

    def verify_procedure(
        self,
        name: str,
        value_range: tuple[int, int] = (-1, 63),
        stat_bound: int = 1 << 10,
    ) -> DafnyReport:
        """Check a procedure's body against its requires/ensures contract."""
        proc = self._find_procedure(name)
        machine = SymbolicMachine(self.program, self.config)
        machine.havoc_state(value_range=value_range, stat_bound=stat_bound)
        env = self._havoc_params(machine, proc, value_range)
        executor = _Executor(machine, env)
        for pre in proc.requires:
            machine.assumptions.append(executor.eval(pre))
        executor.exec_cmd(proc.body, TRUE)
        report = DafnyReport()
        named_goals = [(ob.describe(), ob.formula) for ob in machine.obligations]
        named_goals += [
            (f"{name}.ensures[{i}]", executor.eval(post))
            for i, post in enumerate(proc.ensures)
        ]
        report.vcs.extend(self._discharge_all(machine, named_goals))
        return report

    def _find_procedure(self, name: str) -> Procedure:
        for proc in self.program.program.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no procedure {name!r} in {self.program.name}")

    def _havoc_params(self, machine: SymbolicMachine, proc: Procedure,
                      value_range: tuple[int, int]) -> dict:
        from ..smt.terms import mk_bool_var, mk_int_var

        env: dict = {}
        for i, param in enumerate(proc.params):
            label = f"{machine.prefix}.{proc.name}.arg.{param.name}"
            if isinstance(param.type, IntType):
                var = mk_int_var(label)
                machine.bounds[var.name] = value_range
                env[param.name] = var
            elif isinstance(param.type, BoolType):
                env[param.name] = mk_bool_var(label)
            elif isinstance(param.type, (ListType, BufferType, ArrayType)):
                value = machine._default_value(param.type, label)
                value = machine._havoc_value(value, label, value_range)
                if isinstance(value, SymbolicList):
                    pass  # already havocked in place by _havoc_value
                env[param.name] = value
            else:  # pragma: no cover - checker prevents
                raise TypeError(f"unsupported parameter type {param.type}")
        return env
