"""SMT analysis of composed program networks.

The composition analogue of :class:`repro.backends.smt_backend.SmtBackend`:
unrolls a :class:`~repro.compiler.composition.SymbolicNetwork` for a
bounded horizon and offers the same check / find-trace / decode
interface over the union of all member programs' constraints.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..buffers.packets import Packet
from ..compiler.composition import Connection, SymbolicNetwork
from ..compiler.symexec import EncodeConfig
from ..lang.checker import CheckedProgram
from ..runtime.budget import Budget, BudgetExhausted, ResourceReport
from ..smt.model import Model
from ..smt.sat.cdcl import CDCLConfig
from ..smt.solver import CheckResult, SmtSolver, governed_check
from ..smt.terms import Term, mk_not, mk_or
from .base import AnalysisBackend, resolve_legacy_names
from .smt_backend import CounterexampleTrace, Status, VerificationResult


class NetworkBackend(AnalysisBackend):
    """Bounded symbolic analysis of a composed network of Buffy programs.

    Carries the same normalized keyword tail as the other back ends
    (``budget`` / ``chaos`` / ``solver_factory`` / ``jobs`` / ``cache``
    / ``incremental``); the legacy ``horizon=`` keyword remains for
    one release and emits a ``DeprecationWarning``.
    """

    def __init__(
        self,
        programs: dict[str, CheckedProgram] = None,
        connections: Sequence[Connection] = (),
        steps: Optional[int] = None,
        configs: Optional[dict[str, EncodeConfig]] = None,
        default_config: Optional[EncodeConfig] = None,
        sat_config: Optional[CDCLConfig] = None,
        validate_models: bool = True,
        budget: Optional[Budget] = None,
        escalation=None,
        *,
        chaos=None,
        solver_factory=None,
        jobs: Optional[int] = None,
        cache=None,
        incremental: Optional[bool] = None,
        horizon: Optional[int] = None,
    ):
        _, steps = resolve_legacy_names(None, steps, None, horizon,
                                        "NetworkBackend")
        if steps is None or steps <= 0:
            raise ValueError("horizon must be positive")
        super().__init__(
            programs, steps,
            sat_config=sat_config, validate_models=validate_models,
            budget=budget, escalation=escalation, chaos=chaos,
            solver_factory=solver_factory, jobs=jobs, cache=cache,
            incremental=incremental,
        )
        self.horizon = steps
        self._shared_solver: Optional[SmtSolver] = None
        self.network = SymbolicNetwork(
            programs, connections, configs=configs, default_config=default_config
        )
        for machine in self.network.machines.values():
            machine.budget = budget
        # As in SmtBackend: exhaustion during unrolling is remembered,
        # and every later query answers UNKNOWN with this report.
        self._unroll_report: Optional[ResourceReport] = None
        try:
            for _ in range(steps):
                self.network.exec_step()
        except BudgetExhausted as exc:
            self._unroll_report = exc.report

    # ----- query helpers -----------------------------------------------------

    def deq_count(self, program: str, label: str, step: int = -1) -> Term:
        return self.network.machine(program).snapshots[step].deq_p[label]

    def drop_count(self, program: str, label: str, step: int = -1) -> Term:
        return self.network.machine(program).snapshots[step].drop_p[label]

    def enq_count(self, program: str, label: str, step: int = -1) -> Term:
        return self.network.machine(program).snapshots[step].enq_p[label]

    def backlog(self, program: str, label: str, step: int = -1) -> Term:
        return self.network.machine(program).snapshots[step].backlog_p[label]

    def monitor(self, program: str, name: str, step: int = -1):
        return self.network.machine(program).snapshots[step].monitors[name]

    # ----- solving ------------------------------------------------------------------

    def _solver(self) -> SmtSolver:
        if self._incremental() and self._shared_solver is not None:
            return self._shared_solver
        solver = self._new_solver()
        for name, (lo, hi) in self.network.bounds.items():
            solver.set_bounds(name, lo, hi)
        for assumption in self.network.assumptions:
            solver.add(assumption)
        if self._incremental():
            self._shared_solver = solver
        return solver

    def _exhausted_result(
        self, report: Optional[ResourceReport], elapsed: float,
        solver: Optional[SmtSolver] = None,
    ) -> VerificationResult:
        return VerificationResult(
            Status.UNKNOWN, self.horizon,
            solver_stats=solver.stats if solver else None,
            elapsed_seconds=elapsed, resource_report=report,
        )

    def check_assertions(
        self, extra_assumptions: Sequence[Term] = ()
    ) -> VerificationResult:
        t0 = time.perf_counter()
        if self._unroll_report is not None:
            return self._exhausted_result(self._unroll_report, 0.0)
        obligations = self.network.obligations
        if not obligations:
            return VerificationResult(Status.PROVED, self.horizon)
        solver = self._solver()
        goal = mk_or(*[mk_not(ob.formula) for ob in obligations])
        result, report = governed_check(solver, *extra_assumptions, goal)
        elapsed = time.perf_counter() - t0
        if result is CheckResult.UNKNOWN:
            return self._exhausted_result(report, elapsed, solver)
        if result is CheckResult.UNSAT:
            return VerificationResult(Status.PROVED, self.horizon,
                                      solver_stats=solver.stats,
                                      elapsed_seconds=elapsed)
        trace = self.decode_trace(solver.model())
        trace.violated = [
            ob.describe() for ob in obligations
            if solver.model().eval(ob.formula) is False
        ]
        return VerificationResult(Status.VIOLATED, self.horizon,
                                  counterexample=trace,
                                  solver_stats=solver.stats,
                                  elapsed_seconds=elapsed)

    def find_trace(
        self, query: Term, extra_assumptions: Sequence[Term] = ()
    ) -> VerificationResult:
        t0 = time.perf_counter()
        if self._unroll_report is not None:
            return self._exhausted_result(self._unroll_report, 0.0)
        solver = self._solver()
        result, report = governed_check(solver, *extra_assumptions, query)
        elapsed = time.perf_counter() - t0
        if result is CheckResult.UNKNOWN:
            return self._exhausted_result(report, elapsed, solver)
        if result is CheckResult.UNSAT:
            return VerificationResult(Status.UNSATISFIABLE, self.horizon,
                                      solver_stats=solver.stats,
                                      elapsed_seconds=elapsed)
        return VerificationResult(Status.SATISFIED, self.horizon,
                                  counterexample=self.decode_trace(solver.model()),
                                  solver_stats=solver.stats,
                                  elapsed_seconds=elapsed)

    def prove(self, query: Term,
              extra_assumptions: Sequence[Term] = ()) -> VerificationResult:
        result = self.find_trace(mk_not(query), extra_assumptions)
        mapping = {
            Status.SATISFIED: Status.VIOLATED,
            Status.UNSATISFIABLE: Status.PROVED,
            Status.UNKNOWN: Status.UNKNOWN,
        }
        return VerificationResult(
            mapping[result.status], self.horizon,
            counterexample=result.counterexample,
            solver_stats=result.solver_stats,
            elapsed_seconds=result.elapsed_seconds,
            resource_report=result.resource_report,
        )

    # ----- decoding -------------------------------------------------------------------

    def decode_trace(self, model: Model) -> CounterexampleTrace:
        """Decode external arrivals per (program, buffer) and havocs."""
        arrivals: list[dict[str, list[Packet]]] = [
            {} for _ in range(self.horizon)
        ]
        for name, machine in self.network.machines.items():
            for av in machine.arrival_vars:
                if not model.eval(av.present):
                    continue
                packet = Packet(
                    flow=int(model.eval(av.flow)),
                    size=int(model.eval(av.size)),
                )
                key = f"{name}.{av.buffer}"
                arrivals[av.step].setdefault(key, []).append(packet)
        havocs = {}
        for name, machine in self.network.machines.items():
            for hv in machine.havoc_vars:
                havocs[(name, hv.step, hv.name, hv.occurrence)] = model.eval(hv.var)
        return CounterexampleTrace(
            horizon=self.horizon, arrivals=arrivals, havocs=havocs, model=model
        )
