"""FPerf-style back end: workload synthesis for performance queries.

FPerf "synthesizes a set of conditions on the input traffic, a.k.a.
workload, that will satisfy the query" (§6.1).  This back end
reproduces that capability over the Buffy pipeline with two search
strategies:

* :meth:`FPerfBackend.synthesize_by_generalization` — find a concrete
  witness trace with the SMT back end, take its exact workload
  characterization, then greedily *generalize* (drop or loosen atoms)
  while the sufficiency check ``W ∧ ¬query UNSAT`` keeps passing.
  Each loosening costs one solver call; the result is a local minimum
  of the condition set.

* :meth:`FPerfBackend.synthesize_by_enumeration` — guess-and-check
  (the SyGuS-style loop of §5): enumerate small conjunctions from the
  atom grammar in cost order, prune candidates against cached
  counterexample traces, and verify survivors with the solver.

A synthesized workload ``W`` satisfies, over the bounded horizon:

* *feasibility* — some admissible trace satisfies ``W``;
* *sufficiency* — every admissible trace satisfying ``W`` satisfies
  the query.
"""

from __future__ import annotations

import itertools
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..analysis.workloads import (
    Atom,
    BurstGE,
    BurstLE,
    RateGE,
    RateLE,
    Workload,
    exact_characterization,
)
from ..backends.base import resolve_legacy_names
from ..backends.smt_backend import SmtBackend, Status
from ..buffers.packets import Packet
from ..compiler.symexec import EncodeConfig
from ..lang.checker import CheckedProgram
from ..obs import METRICS, TRACER
from ..runtime.budget import Budget, ResourceReport
from ..smt.sat.cdcl import CDCLConfig
from ..smt.terms import Term, mk_not


@dataclass
class SynthesisStats:
    candidates_tried: int = 0
    solver_calls: int = 0
    pruned_by_examples: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SynthesisResult:
    workload: Optional[Workload]
    witness: Optional[list[dict[str, list[Packet]]]]
    stats: SynthesisStats = field(default_factory=SynthesisStats)
    # False when the search stopped early on budget exhaustion; the
    # workload (if any) is then a best-so-far: still *sufficient* —
    # every returned workload passed that check — just not maximally
    # generalized.
    complete: bool = True
    resource_report: Optional[ResourceReport] = None

    @property
    def ok(self) -> bool:
        return self.workload is not None

    def outcome(self):
        """Convert to the uniform :class:`repro.analysis.result.AnalysisOutcome`."""
        from ..analysis.result import AnalysisOutcome, Verdict, verdict_for_unknown

        if self.workload is not None:
            verdict = Verdict.PROVED
        elif not self.complete:
            verdict = verdict_for_unknown(self.resource_report)
        else:
            # The search space was exhausted without a sufficient
            # workload: a definitive negative within the grammar.
            verdict = Verdict.VIOLATED
        return AnalysisOutcome(
            verdict=verdict,
            witness=self.workload,
            report=self.resource_report,
            stats={
                "candidates_tried": self.stats.candidates_tried,
                "solver_calls": self.stats.solver_calls,
                "pruned_by_examples": self.stats.pruned_by_examples,
                "elapsed_seconds": self.stats.elapsed_seconds,
            },
        )


class FPerfBackend:
    """Workload synthesis for a Buffy program and a query.

    A thin strategy layer over :class:`SmtBackend`; the normalized
    keyword tail (``chaos`` / ``solver_factory`` / ``jobs`` / ``cache``
    / ``incremental``) is forwarded to it.  Synthesis issues dozens to
    thousands of queries against the *same* unrolled machine, so the
    inner back end runs incrementally by default: one shared encoding,
    every query as check-time assumptions.
    """

    def __init__(
        self,
        program: Optional[CheckedProgram] = None,
        steps: Optional[int] = None,
        config: Optional[EncodeConfig] = None,
        sat_config: Optional[CDCLConfig] = None,
        budget: Optional[Budget] = None,
        escalation=None,
        *,
        validate_models: bool = True,
        chaos=None,
        solver_factory=None,
        jobs: Optional[int] = None,
        cache=None,
        incremental: Optional[bool] = None,
        certify: Optional[bool] = None,
        checked: Optional[CheckedProgram] = None,
        horizon: Optional[int] = None,
    ):
        self.budget = budget
        program, steps = resolve_legacy_names(program, steps, checked,
                                              horizon, "FPerfBackend")
        self.backend = SmtBackend(
            program, steps, config=config, sat_config=sat_config,
            validate_models=validate_models, budget=budget,
            escalation=escalation, chaos=chaos,
            solver_factory=solver_factory, jobs=jobs, cache=cache,
            incremental=True if incremental is None else incremental,
            certify=certify,
        )
        self.program = self.backend.program
        self.horizon = self.backend.horizon
        self.machine = self.backend.machine
        self.labels = self.machine.input_buffer_labels()
        # Report from the most recent UNKNOWN solver answer (if any).
        self._last_report: Optional[ResourceReport] = None

    # Legacy attribute alias (one release of compatibility).
    @property
    def checked(self) -> CheckedProgram:
        warnings.warn(
            "FPerfBackend.checked is deprecated; use .program instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.program

    # ----- budget plumbing ------------------------------------------------------

    def _budget_report(self, where: str) -> Optional[ResourceReport]:
        """A report when the budget is spent, else None (loop-top check)."""
        if self.budget is None:
            return None
        reason = self.budget.exhausted()
        if reason is None:
            return None
        return self.budget.report(reason, where)

    # ----- solver-side checks --------------------------------------------------

    def _feasible(self, workload: Workload, stats: SynthesisStats) -> bool:
        stats.solver_calls += 1
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_vcs_total", backend="fperf", status="feasible")
        encoded = workload.encode(self.machine, self.horizon)
        with TRACER.span("cegis-iter", kind="feasible",
                         atoms=len(workload.atoms)):
            result = self.backend.find_trace(encoded)
        if result.status is Status.UNKNOWN:
            # Undecided is not feasible-for-sure; remember why.
            self._last_report = result.resource_report
            return False
        self._last_report = None
        return result.status is Status.SATISFIED

    def _sufficient(self, workload: Workload, query: Term,
                    stats: SynthesisStats):
        """UNSAT(W ∧ ¬query) ⇒ sufficient.  Returns (ok, counterexample).

        An UNKNOWN answer is treated conservatively as "not proven
        sufficient" (with ``self._last_report`` set), never as a
        refutation — so budget exhaustion can only shrink the result,
        not corrupt it.
        """
        stats.solver_calls += 1
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_vcs_total", backend="fperf", status="sufficient")
        encoded = workload.encode(self.machine, self.horizon)
        with TRACER.span("cegis-iter", kind="sufficient",
                         atoms=len(workload.atoms)):
            result = self.backend.find_trace(
                mk_not(query), extra_assumptions=[encoded]
            )
        if result.status is Status.UNKNOWN:
            self._last_report = result.resource_report
            return False, None
        self._last_report = None
        if result.status is Status.UNSATISFIABLE:
            return True, None
        return False, result.counterexample

    # ----- strategy 1: generalize from a witness ------------------------------------

    def synthesize_by_generalization(
        self, query: Term, loosen_rates: bool = True
    ) -> SynthesisResult:
        """Witness → exact characterization → greedy generalization."""
        t0 = time.perf_counter()
        stats = SynthesisStats()

        stats.solver_calls += 1
        witness_result = self.backend.find_trace(query)
        if witness_result.status is Status.UNKNOWN:
            stats.elapsed_seconds = time.perf_counter() - t0
            return SynthesisResult(
                None, None, stats, complete=False,
                resource_report=witness_result.resource_report,
            )
        if witness_result.status is not Status.SATISFIED:
            stats.elapsed_seconds = time.perf_counter() - t0
            return SynthesisResult(None, None, stats)
        witness = witness_result.counterexample.workload()

        workload = exact_characterization(witness, self.labels)
        ok, _ = self._sufficient(workload, query, stats)
        if not ok:
            stats.elapsed_seconds = time.perf_counter() - t0
            if self._last_report is not None:
                # Undecided, not refuted: a partial result with the
                # witness but no proven workload.
                return SynthesisResult(
                    None, witness, stats, complete=False,
                    resource_report=self._last_report,
                )
            # The exact characterization fixes arrival counts but not
            # e.g. havoc choices; if the query can still fail, no
            # arrival-count workload can be sufficient.
            return SynthesisResult(None, witness, stats)

        # Greedily drop atoms while sufficiency holds.  On budget
        # exhaustion the best-so-far workload — already proven
        # sufficient — is returned with ``complete=False``.
        atoms = list(workload.atoms)
        for atom in list(atoms):
            report = self._budget_report("FPerf generalization loop")
            if report is not None:
                stats.elapsed_seconds = time.perf_counter() - t0
                return SynthesisResult(
                    Workload(tuple(atoms)), witness, stats,
                    complete=False, resource_report=report,
                )
            candidate = Workload(tuple(a for a in atoms if a is not atom))
            stats.candidates_tried += 1
            ok, _ = self._sufficient(candidate, query, stats)
            if ok:
                atoms = list(candidate.atoms)
        workload = Workload(tuple(atoms))

        if loosen_rates:
            workload = self._fold_rates(workload, query, stats)
            report = self._budget_report("FPerf rate folding")
            if report is not None:
                stats.elapsed_seconds = time.perf_counter() - t0
                return SynthesisResult(
                    workload, witness, stats,
                    complete=False, resource_report=report,
                )

        stats.elapsed_seconds = time.perf_counter() - t0
        return SynthesisResult(workload, witness, stats)

    def _fold_rates(self, workload: Workload, query: Term,
                    stats: SynthesisStats) -> Workload:
        """Replace runs of per-step burst atoms with rate atoms when valid."""
        by_label: dict[tuple, list] = {}
        for atom in workload.atoms:
            if isinstance(atom, (BurstGE, BurstLE)):
                key = (atom.label, isinstance(atom, BurstGE))
                by_label.setdefault(key, []).append(atom)
        current = workload
        for (label, is_ge), atoms in by_label.items():
            if self._budget_report("FPerf rate folding") is not None:
                return current
            if len(atoms) < 2:
                continue
            start = min(a.step for a in atoms)
            bound = (
                min(a.count for a in atoms) if is_ge
                else max(a.count for a in atoms)
            )
            rate_atom: Atom = (
                RateGE(label, bound, start) if is_ge else RateLE(label, bound, start)
            )
            folded = tuple(
                a for a in current.atoms if a not in atoms
            ) + (rate_atom,)
            candidate = Workload(folded)
            stats.candidates_tried += 1
            ok, _ = self._sufficient(candidate, query, stats)
            if ok:
                current = candidate
        return current

    # ----- strategy 2: enumerative guess-and-check ---------------------------------------

    def atom_grammar(self, max_rate: Optional[int] = None) -> list[Atom]:
        """All atoms in the bounded grammar (the SyGuS search space)."""
        max_rate = max_rate or self.machine.config.arrivals_per_step
        atoms: list[Atom] = []
        for label in self.labels:
            for rate in range(0, max_rate + 1):
                for start in (0, 1):
                    atoms.append(RateGE(label, rate, start))
                    atoms.append(RateLE(label, rate, start))
            for step in range(self.horizon):
                for count in range(0, max_rate + 1):
                    atoms.append(BurstGE(label, step, count))
                    atoms.append(BurstLE(label, step, count))
        return atoms

    def synthesize_by_enumeration(
        self,
        query: Term,
        max_atoms: int = 2,
        max_candidates: int = 5000,
        grammar: Optional[Sequence[Atom]] = None,
    ) -> SynthesisResult:
        """Enumerate small conjunctions; prune with cached bad examples."""
        t0 = time.perf_counter()
        stats = SynthesisStats()
        atoms = list(grammar) if grammar is not None else self.atom_grammar()
        bad_examples: list[list[dict[str, list[Packet]]]] = []

        candidates: Iterable[Workload] = (
            Workload(combo)
            for size in range(1, max_atoms + 1)
            for combo in itertools.combinations(atoms, size)
        )
        for workload in itertools.islice(candidates, max_candidates):
            report = self._budget_report("FPerf enumeration loop")
            if report is not None:
                stats.elapsed_seconds = time.perf_counter() - t0
                return SynthesisResult(
                    None, None, stats, complete=False, resource_report=report
                )
            stats.candidates_tried += 1
            # A candidate consistent with a known bad trace cannot be
            # sufficient; skip it without a solver call.
            if any(workload.holds(example) for example in bad_examples):
                stats.pruned_by_examples += 1
                continue
            ok, counterexample = self._sufficient(workload, query, stats)
            if not ok:
                if counterexample is not None:
                    bad_examples.append(counterexample.workload())
                continue
            if self._feasible(workload, stats):
                stats.elapsed_seconds = time.perf_counter() - t0
                return SynthesisResult(workload, None, stats)
        stats.elapsed_seconds = time.perf_counter() - t0
        return SynthesisResult(None, None, stats)
