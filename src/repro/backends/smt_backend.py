"""SMT back end: bounded verification and trace synthesis (§4, "Back-end
for Z3 and FPerf").

Given a checked Buffy program and a time horizon ``T``, the back end
unrolls the program ``T`` steps through the symbolic executor and asks
the SMT substrate either

* :meth:`SmtBackend.check_assertions` — do all ``assert``s hold on
  every admissible trace? (a violation yields a decoded, replayable
  counterexample), or
* :meth:`SmtBackend.find_trace` — synthesize concrete input traffic
  satisfying an arbitrary query over monitors/buffer statistics (the
  FPerf-style usage), or
* :meth:`SmtBackend.prove` — validity of a query on all traces.

Counterexamples decode into per-step packet arrivals plus havoc values,
which :mod:`repro.analysis.traces` can replay through the concrete
interpreter — every symbolic result is cross-checked executably.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..buffers.packets import Packet
from ..compiler.symexec import EncodeConfig, Obligation, SymbolicMachine
from ..lang.checker import CheckedProgram
from ..obs import METRICS, TRACER, phase_scope
from ..runtime.budget import Budget, BudgetExhausted, ResourceReport
from ..smt.model import Model
from ..smt.sat.cdcl import CDCLConfig
from ..smt.solver import CheckResult, SmtSolver, SolverStats, governed_check
from ..smt.terms import TRUE, Term, mk_and, mk_not, mk_or
from .base import AnalysisBackend, resolve_legacy_names


class Status(enum.Enum):
    PROVED = "proved"          # no admissible trace violates the property
    VIOLATED = "violated"      # a counterexample trace exists
    SATISFIED = "satisfied"    # find_trace: a witness trace exists
    UNSATISFIABLE = "unsat"    # find_trace: no admissible trace matches
    UNKNOWN = "unknown"


@dataclass
class CounterexampleTrace:
    """A decoded trace: per-step arrivals plus havoc choices."""

    horizon: int
    arrivals: list[dict[str, list[Packet]]]
    havocs: dict[tuple, object] = field(default_factory=dict)
    violated: list[str] = field(default_factory=list)
    model: Optional[Model] = None

    def workload(self) -> list[dict[str, list[Packet]]]:
        """Arrivals in the shape ``Interpreter.run`` expects."""
        return self.arrivals

    def total_arrivals(self, label: Optional[str] = None) -> int:
        total = 0
        for step in self.arrivals:
            for key, packets in step.items():
                if label is None or key == label:
                    total += len(packets)
        return total

    def describe(self) -> str:
        lines = [f"counterexample over {self.horizon} steps"]
        for t, step in enumerate(self.arrivals):
            parts = [
                f"{key}+{len(packets)}"
                for key, packets in sorted(step.items())
                if packets
            ]
            lines.append(f"  t={t}: " + (", ".join(parts) if parts else "(idle)"))
        for name in self.violated:
            lines.append(f"  violates: {name}")
        return "\n".join(lines)


@dataclass
class VerificationResult:
    status: Status
    horizon: int
    counterexample: Optional[CounterexampleTrace] = None
    solver_stats: Optional[SolverStats] = None
    elapsed_seconds: float = 0.0
    resource_report: Optional[ResourceReport] = None

    @property
    def ok(self) -> bool:
        return self.status is Status.PROVED

    @property
    def complete(self) -> bool:
        """False when the analysis stopped early (budget/fault)."""
        return self.status is not Status.UNKNOWN

    def outcome(self):
        """Convert to the uniform :class:`repro.analysis.result.AnalysisOutcome`."""
        # Lazy import: repro.analysis imports the back ends at package
        # init, so the reverse edge must not run at module import time.
        from ..analysis.result import AnalysisOutcome, Verdict, verdict_for_unknown

        if self.status is Status.UNKNOWN:
            verdict = verdict_for_unknown(self.resource_report)
        else:
            verdict = {
                Status.PROVED: Verdict.PROVED,
                Status.VIOLATED: Verdict.VIOLATED,
                # find_trace: the requested witness exists / provably cannot.
                Status.SATISFIED: Verdict.PROVED,
                Status.UNSATISFIABLE: Verdict.VIOLATED,
            }[self.status]
        stats: dict[str, object] = {
            "horizon": self.horizon,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.solver_stats is not None:
            # The unified flat schema from repro.smt.stats — the same
            # names the metrics families and `repro stats` report.
            stats.update(self.solver_stats.as_dict())
        return AnalysisOutcome(
            verdict=verdict,
            witness=self.counterexample,
            report=self.resource_report,
            stats=stats,
        )


class SmtBackend(AnalysisBackend):
    """Bounded (unrolled) symbolic analysis of one Buffy program.

    Normalized constructor: ``SmtBackend(program, steps, *, budget=...,
    chaos=..., solver_factory=..., jobs=..., cache=..., incremental=...)``.
    The legacy ``checked=`` / ``horizon=`` keyword spellings remain as
    deprecated shims.  With ``incremental=True`` one solver (and one
    bit-blasted encoding of the unrolled machine) is shared across all
    queries; each query's formulas are passed as check-time assumptions
    so the shared encoding is never polluted.
    """

    def __init__(
        self,
        program: Optional[CheckedProgram] = None,
        steps: Optional[int] = None,
        config: Optional[EncodeConfig] = None,
        sat_config: Optional[CDCLConfig] = None,
        validate_models: bool = True,
        budget: Optional[Budget] = None,
        escalation=None,
        *,
        chaos=None,
        solver_factory=None,
        jobs: Optional[int] = None,
        cache=None,
        incremental: Optional[bool] = None,
        certify: Optional[bool] = None,
        checked: Optional[CheckedProgram] = None,
        horizon: Optional[int] = None,
    ):
        program, steps = resolve_legacy_names(
            program, steps, checked, horizon, "SmtBackend"
        )
        if program is None or steps is None:
            raise TypeError("SmtBackend requires a program and a horizon")
        if steps <= 0:
            raise ValueError("horizon must be positive")
        super().__init__(
            program, steps,
            sat_config=sat_config, validate_models=validate_models,
            budget=budget, escalation=escalation, chaos=chaos,
            solver_factory=solver_factory, jobs=jobs, cache=cache,
            incremental=incremental, certify=certify,
        )
        self.horizon = steps
        self.config = config or EncodeConfig()
        self.machine = SymbolicMachine(program, self.config, budget=budget)
        self._shared_solver: Optional[SmtSolver] = None
        # Budget exhaustion during unrolling is remembered, not raised:
        # every later query then answers UNKNOWN with this report.
        self._unroll_report: Optional[ResourceReport] = None
        try:
            for _ in range(steps):
                self.machine.exec_step()
        except BudgetExhausted as exc:
            self._unroll_report = exc.report

    # ----- query helpers ----------------------------------------------------

    def deq_count(self, label: str, step: int = -1) -> Term:
        """Cumulative packets dequeued from buffer ``label`` by end of ``step``."""
        return self.machine.snapshots[step].deq_p[label]

    def drop_count(self, label: str, step: int = -1) -> Term:
        return self.machine.snapshots[step].drop_p[label]

    def enq_count(self, label: str, step: int = -1) -> Term:
        return self.machine.snapshots[step].enq_p[label]

    def backlog(self, label: str, step: int = -1) -> Term:
        return self.machine.snapshots[step].backlog_p[label]

    def monitor(self, name: str, step: int = -1):
        return self.machine.snapshots[step].monitors[name]

    def assertion_conjunction(self) -> Term:
        return mk_and(*[ob.formula for ob in self.machine.obligations]) \
            if self.machine.obligations else TRUE

    # ----- solving -----------------------------------------------------------------

    def _solver(self) -> SmtSolver:
        if self._incremental():
            if self._shared_solver is None:
                self._shared_solver = self._machine_solver(self.machine)
            return self._shared_solver
        return self._machine_solver(self.machine)

    def _exhausted_result(
        self, report: Optional[ResourceReport], elapsed: float,
        solver: Optional[SmtSolver] = None,
    ) -> VerificationResult:
        return VerificationResult(
            Status.UNKNOWN, self.horizon,
            solver_stats=solver.stats if solver else None,
            elapsed_seconds=elapsed, resource_report=report,
        )

    def check_assertions(
        self, extra_assumptions: Sequence[Term] = ()
    ) -> VerificationResult:
        """Do the program's ``assert``s hold on every admissible trace?"""
        t0 = time.perf_counter()
        if self._unroll_report is not None:
            return self._exhausted_result(self._unroll_report, 0.0)
        obligations = self.machine.obligations
        if not obligations:
            return VerificationResult(Status.PROVED, self.horizon)
        solver = self._solver()
        # Query formulas ride as check-time assumptions (conjoined for
        # this one call) so a shared incremental solver stays clean.
        goal = mk_or(*[mk_not(ob.formula) for ob in obligations])
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_vcs_total", backend="smt", status="asserts")
        with TRACER.span("vc", vc="asserts", backend="smt",
                         obligations=len(obligations)) as sp, \
                phase_scope(vc="asserts"):
            result, report = governed_check(solver, *extra_assumptions, goal)
            sp.set("result", result.value)
        elapsed = time.perf_counter() - t0
        if result is CheckResult.UNKNOWN:
            return self._exhausted_result(report, elapsed, solver)
        if result is CheckResult.UNSAT:
            return VerificationResult(
                Status.PROVED, self.horizon,
                solver_stats=solver.stats, elapsed_seconds=elapsed,
            )
        trace = self.decode_trace(solver.model())
        trace.violated = [
            ob.describe()
            for ob in obligations
            if solver.model().eval(ob.formula) is False
        ]
        return VerificationResult(
            Status.VIOLATED, self.horizon, counterexample=trace,
            solver_stats=solver.stats, elapsed_seconds=elapsed,
        )

    def find_trace(
        self,
        query: Term,
        extra_assumptions: Sequence[Term] = (),
    ) -> VerificationResult:
        """Synthesize input traffic satisfying ``query`` (FPerf-style)."""
        t0 = time.perf_counter()
        if self._unroll_report is not None:
            return self._exhausted_result(self._unroll_report, 0.0)
        solver = self._solver()
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_vcs_total", backend="smt", status="trace-query")
        with TRACER.span("vc", vc="find-trace", backend="smt") as sp, \
                phase_scope(vc="find-trace"):
            result, report = governed_check(solver, *extra_assumptions, query)
            sp.set("result", result.value)
        elapsed = time.perf_counter() - t0
        if result is CheckResult.UNKNOWN:
            return self._exhausted_result(report, elapsed, solver)
        if result is CheckResult.UNSAT:
            return VerificationResult(
                Status.UNSATISFIABLE, self.horizon,
                solver_stats=solver.stats, elapsed_seconds=elapsed,
            )
        trace = self.decode_trace(solver.model())
        return VerificationResult(
            Status.SATISFIED, self.horizon, counterexample=trace,
            solver_stats=solver.stats, elapsed_seconds=elapsed,
        )

    def prove(self, query: Term,
              extra_assumptions: Sequence[Term] = ()) -> VerificationResult:
        """Is ``query`` valid on every admissible trace?"""
        result = self.find_trace(mk_not(query), extra_assumptions)
        mapping = {
            Status.SATISFIED: Status.VIOLATED,
            Status.UNSATISFIABLE: Status.PROVED,
            Status.UNKNOWN: Status.UNKNOWN,
        }
        return VerificationResult(
            mapping[result.status],
            self.horizon,
            counterexample=result.counterexample,
            solver_stats=result.solver_stats,
            elapsed_seconds=result.elapsed_seconds,
            resource_report=result.resource_report,
        )

    # ----- decoding --------------------------------------------------------------------

    def decode_trace(self, model: Model) -> CounterexampleTrace:
        arrivals: list[dict[str, list[Packet]]] = [
            {} for _ in range(self.horizon)
        ]
        for av in self.machine.arrival_vars:
            present = model.eval(av.present)
            if not present:
                continue
            packet = Packet(
                flow=int(model.eval(av.flow)),
                size=int(model.eval(av.size)),
            )
            arrivals[av.step].setdefault(av.buffer, []).append(packet)
        havocs = {
            (hv.step, hv.name, hv.occurrence): model.eval(hv.var)
            for hv in self.machine.havoc_vars
        }
        return CounterexampleTrace(
            horizon=self.horizon,
            arrivals=arrivals,
            havocs=havocs,
            model=model,
        )
