"""Houdini-style inference of interface specifications (§5 future work).

The paper: "we plan to explore techniques to synthesize interface
specifications at the boundary of Buffy programs [...] We will use
guess-and-check techniques [...] Specifically, we would like to use the
Houdini algorithm with Dafny to iteratively refine guesses of interface
specifications."

This module implements that plan over our Dafny-style back end:

1. a *grammar* generates candidate invariant conjuncts over the
   program's persistent state — buffer-statistic conservation laws,
   monotonicity and sign facts, capacity bounds, list-length bounds,
   and bound templates for integer globals;
2. candidates falsified by the *initial* state are dropped (the
   initial machine is ground, so this is plain evaluation);
3. the **Houdini loop**: assume the conjunction of all surviving
   candidates over a havocked pre-state, execute one symbolic step,
   and ask the solver for a state where some candidate fails to
   re-establish itself.  Each counterexample *evaluates* every
   candidate's post-state term and removes the falsified ones; the
   loop repeats until the conjunction is inductive (UNSAT).

The result is the unique maximal inductive subset of the candidates —
an automatically synthesized interface specification usable with
:meth:`repro.backends.dafny.DafnyBackend.verify_modular` and with
k-induction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..buffers.symbolic import SymbolicList
from ..compiler.symexec import EncodeConfig, SymbolicMachine
from ..lang.checker import CheckedProgram
from ..obs import METRICS, TRACER
from ..runtime.budget import (
    Budget,
    BudgetExhausted,
    ExhaustionReason,
    ResourceReport,
)
from ..smt.sat.cdcl import CDCLConfig
from ..smt.solver import CheckResult, SmtSolver, governed_check
from ..smt.terms import Term, evaluate, free_vars, mk_and, mk_int, mk_le, mk_not
from .base import AnalysisBackend, resolve_legacy_names
from .dafny import StateView


@dataclass(frozen=True)
class Candidate:
    """A named invariant conjunct, as a generator over a state view."""

    name: str
    build: Callable[[StateView], Term]


@dataclass
class HoudiniResult:
    invariant: list[Candidate]
    dropped: list[tuple[str, str]]  # (name, reason)
    iterations: int = 0
    solver_calls: int = 0
    elapsed_seconds: float = 0.0
    # False when the loop stopped on budget exhaustion: the invariant
    # set is then an over-approximation (not yet proven inductive) and
    # ``resource_report`` says what ran out.  The same partial result
    # rides on the raised :class:`BudgetExhausted` as ``exc.partial``.
    complete: bool = True
    resource_report: Optional[ResourceReport] = None

    def names(self) -> list[str]:
        return [c.name for c in self.invariant]

    def outcome(self):
        """Convert to the uniform :class:`repro.analysis.result.AnalysisOutcome`."""
        from ..analysis.result import AnalysisOutcome, Verdict, verdict_for_unknown

        if not self.complete:
            verdict = verdict_for_unknown(self.resource_report)
        elif self.invariant:
            verdict = Verdict.PROVED
        else:
            # Every candidate was falsified: no invariant exists in
            # the grammar, a definitive negative answer.
            verdict = Verdict.VIOLATED
        return AnalysisOutcome(
            verdict=verdict,
            witness=self.as_invariant() if self.invariant else None,
            report=self.resource_report,
            stats={
                "invariants": len(self.invariant),
                "dropped": len(self.dropped),
                "iterations": self.iterations,
                "solver_calls": self.solver_calls,
                "elapsed_seconds": self.elapsed_seconds,
            },
        )

    def as_invariant(self) -> Callable[[StateView], Term]:
        """The synthesized conjunction, usable with verify_modular."""
        candidates = list(self.invariant)

        def invariant(view: StateView) -> Term:
            if not candidates:
                return mk_and()
            return mk_and(*[c.build(view) for c in candidates])

        return invariant


def default_grammar(
    machine: SymbolicMachine,
    int_global_bounds: Sequence[int] = (0, 1, 2, 4, 8),
) -> list[Candidate]:
    """Candidate conjuncts for a program's persistent state.

    Mirrors the paper's "grammars with suitably expressive predicates
    on buffers that can capture interface specifications of interest
    for performance analysis".
    """
    candidates: list[Candidate] = []
    for label in machine._all_buffer_labels():
        candidates.append(Candidate(
            f"conserve[{label}]",
            lambda v, l=label: (v.deq_p(l) + v.backlog_p(l)).eq(v.enq_p(l)),
        ))
        candidates.append(Candidate(
            f"deq_le_enq[{label}]",
            lambda v, l=label: mk_le(v.deq_p(l), v.enq_p(l)),
        ))
        candidates.append(Candidate(
            f"deq_nonneg[{label}]",
            lambda v, l=label: mk_le(mk_int(0), v.deq_p(l)),
        ))
        candidates.append(Candidate(
            f"drop_nonneg[{label}]",
            lambda v, l=label: mk_le(mk_int(0), v.drop_p(l)),
        ))
        capacity = machine.config.buffer_capacity
        candidates.append(Candidate(
            f"backlog_le_cap[{label}]",
            lambda v, l=label, c=capacity: mk_le(v.backlog_p(l), mk_int(c)),
        ))
        # A deliberately-false candidate family Houdini must reject:
        candidates.append(Candidate(
            f"never_dequeues[{label}]",
            lambda v, l=label: v.deq_p(l).eq(mk_int(0)),
        ))
    for name, value in machine.globals_.items():
        if isinstance(value, SymbolicList):
            candidates.append(Candidate(
                f"listlen_le_cap[{name}]",
                lambda v, n=name: mk_le(v.list_(n).len_term(),
                                        mk_int(v.list_(n).capacity)),
            ))
            candidates.append(Candidate(
                f"listlen_nonneg[{name}]",
                lambda v, n=name: mk_le(mk_int(0), v.list_(n).len_term()),
            ))
            continue
        if isinstance(value, Term) and value.sort.value == "Int":
            for bound in int_global_bounds:
                candidates.append(Candidate(
                    f"{name}_ge_0",
                    lambda v, n=name: mk_le(mk_int(0), v.global_(n)),
                ))
                candidates.append(Candidate(
                    f"{name}_le_{bound}",
                    lambda v, n=name, b=bound: mk_le(v.global_(n), mk_int(b)),
                ))
    # Deduplicate by name (the bound loop above repeats the >=0 fact).
    seen: set[str] = set()
    unique: list[Candidate] = []
    for cand in candidates:
        if cand.name not in seen:
            seen.add(cand.name)
            unique.append(cand)
    return unique


class HoudiniSynthesizer(AnalysisBackend):
    """Infers the maximal inductive subset of candidate invariants.

    Normalized constructor: ``HoudiniSynthesizer(program, *,
    budget=..., chaos=..., solver_factory=..., jobs=..., cache=...)``;
    the legacy ``checked=`` keyword remains as a shim.  Every Houdini
    round re-queries the *same* one-step transition system, so by
    default all rounds share one incremental solver: the machine is
    bit-blasted once and each round's candidate conjunction rides as
    check-time assumptions.
    """

    def __init__(
        self,
        program: Optional[CheckedProgram] = None,
        config: Optional[EncodeConfig] = None,
        sat_config: Optional[CDCLConfig] = None,
        value_range: tuple[int, int] = (-1, 63),
        stat_bound: int = 1 << 10,
        budget: Optional[Budget] = None,
        escalation=None,
        *,
        validate_models: bool = True,
        chaos=None,
        solver_factory=None,
        jobs: Optional[int] = None,
        cache=None,
        incremental: Optional[bool] = None,
        certify: Optional[bool] = None,
        checked: Optional[CheckedProgram] = None,
    ):
        program, _ = resolve_legacy_names(program, None, checked, None,
                                          "HoudiniSynthesizer")
        if program is None:
            raise TypeError("HoudiniSynthesizer requires a program")
        super().__init__(
            program,
            sat_config=sat_config, validate_models=validate_models,
            budget=budget, escalation=escalation, chaos=chaos,
            solver_factory=solver_factory, jobs=jobs, cache=cache,
            incremental=incremental, certify=certify,
        )
        self.config = config or EncodeConfig()
        self.value_range = value_range
        self.stat_bound = stat_bound

    def _default_incremental(self) -> bool:
        # Every round re-queries the same one-step transition system.
        return True

    def synthesize(
        self,
        candidates: Optional[Sequence[Candidate]] = None,
        max_iterations: int = 64,
    ) -> HoudiniResult:
        """Run the Houdini loop to the maximal inductive subset.

        Raises :class:`BudgetExhausted` when the budget runs out
        mid-loop; the exception's ``partial`` attribute carries a
        ``HoudiniResult`` with ``complete=False`` whose invariant set is
        the surviving (not yet proven inductive) candidates.
        """
        t0 = time.perf_counter()
        dropped: list[tuple[str, str]] = []

        # ---- stage 0: build the one-step transition with pre/post terms.
        machine = SymbolicMachine(self.program, self.config,
                                  budget=self.budget)
        if candidates is None:
            candidates = default_grammar(machine)
        machine.havoc_state(
            value_range=self.value_range, stat_bound=self.stat_bound
        )
        pre_view = StateView(machine)
        pre_terms = {c.name: c.build(pre_view) for c in candidates}
        try:
            machine.exec_step()
        except BudgetExhausted as exc:
            raise self._exhausted(
                exc.report, list(candidates), dropped, 0, 0, t0
            ) from None
        post_view = StateView(machine)
        post_terms = {c.name: c.build(post_view) for c in candidates}

        # ---- stage 1: drop candidates false in the (ground) initial state.
        init_machine = SymbolicMachine(self.program, self.config)
        init_view = StateView(init_machine)
        surviving: list[Candidate] = []
        for cand in candidates:
            term = cand.build(init_view)
            values = {
                v.name: (False if v.sort.value == "Bool" else 0)
                for v in free_vars(term)
            }
            if evaluate(term, values) is True:
                surviving.append(cand)
            else:
                dropped.append((cand.name, "false at init"))

        # ---- stage 2: the Houdini loop.
        iterations = 0
        solver_calls = 0
        # With the (default) incremental engine the machine is encoded
        # once and every round's candidate conjunction rides as
        # check-time assumptions on the same solver.
        shared = self._machine_solver(machine) if self._incremental() else None
        while surviving and iterations < max_iterations:
            iterations += 1
            solver = shared or self._machine_solver(machine)
            pre = mk_and(*[pre_terms[c.name] for c in surviving])
            neg_post = mk_not(
                mk_and(*[post_terms[c.name] for c in surviving])
            )
            solver_calls += 1
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_vcs_total", backend="houdini", status="round")
            with TRACER.span("houdini-round", round=iterations,
                             candidates=len(surviving)) as sp:
                result, report = governed_check(solver, pre, neg_post)
                sp.set("result", result.value)
            if result is CheckResult.UNSAT:
                break  # inductive!
            if result is CheckResult.UNKNOWN:
                if report is None:
                    report = ResourceReport(
                        reason=ExhaustionReason.FAULT,
                        message="solver returned UNKNOWN during Houdini",
                    )
                raise self._exhausted(
                    report, surviving, dropped,
                    iterations, solver_calls, t0,
                )
            model = solver.model()
            still: list[Candidate] = []
            for cand in surviving:
                if model.eval(post_terms[cand.name]) is True:
                    still.append(cand)
                else:
                    dropped.append((cand.name, f"falsified (iter {iterations})"))
            assert len(still) < len(surviving), "Houdini must make progress"
            surviving = still

        return HoudiniResult(
            invariant=surviving,
            dropped=dropped,
            iterations=iterations,
            solver_calls=solver_calls,
            elapsed_seconds=time.perf_counter() - t0,
        )

    def _exhausted(
        self,
        report: ResourceReport,
        surviving: list[Candidate],
        dropped: list[tuple[str, str]],
        iterations: int,
        solver_calls: int,
        t0: float,
    ) -> BudgetExhausted:
        """A typed exhaustion exception carrying the partial result."""
        partial = HoudiniResult(
            invariant=list(surviving),
            dropped=list(dropped),
            iterations=iterations,
            solver_calls=solver_calls,
            elapsed_seconds=time.perf_counter() - t0,
            complete=False,
            resource_report=report,
        )
        return BudgetExhausted(report, partial=partial)
