"""Shared constructor convention and solver plumbing for back ends.

Every back end historically grew its own constructor (``checked`` vs
``programs``, ``horizon`` vs per-call ``steps``) and its own inline
``SmtSolver(...)`` wiring.  :class:`AnalysisBackend` normalizes both:

* one keyword signature — ``(program, steps, *, budget=None,
  chaos=None, solver_factory=None, ...)`` — with thin shims so the
  legacy ``checked=`` / ``horizon=`` spellings keep working;
* one :meth:`_new_solver` factory that threads the engine knobs
  (``jobs`` for the parallel portfolio, ``cache`` for the result
  cache, ``incremental`` for push/pop CNF reuse) plus backend-scoped
  chaos injection and a caller-supplied ``solver_factory`` override
  into every solver the back end builds.

The back ends stay thin: they describe *what* to solve; the engine
underneath (:mod:`repro.engine`) decides *how*.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from ..runtime.budget import Budget
from ..runtime.chaos import ChaosConfig, ChaosMonkey
from ..smt.solver import SmtSolver

if TYPE_CHECKING:
    from ..compiler.symexec import SymbolicMachine
    from ..engine.cache import ResultCache


def resolve_legacy_names(
    program: Any,
    steps: Optional[int],
    checked: Any,
    horizon: Optional[int],
    owner: str,
) -> tuple[Any, Optional[int]]:
    """Merge the normalized (``program``/``steps``) and legacy
    (``checked``/``horizon``) constructor spellings.

    Either spelling may be used, not both.  The legacy keywords emit a
    :class:`DeprecationWarning` and will be removed one release after
    the normalized surface shipped (see DESIGN.md, "Constructor
    normalization").
    """
    if checked is not None:
        if program is not None:
            raise TypeError(
                f"{owner}: pass either 'program' or legacy 'checked', not both"
            )
        warnings.warn(
            f"{owner}: the 'checked=' keyword is deprecated; "
            "pass 'program=' (or positionally) instead",
            DeprecationWarning, stacklevel=3,
        )
        program = checked
    if horizon is not None:
        if steps is not None:
            raise TypeError(
                f"{owner}: pass either 'steps' or legacy 'horizon', not both"
            )
        warnings.warn(
            f"{owner}: the 'horizon=' keyword is deprecated; "
            "pass 'steps=' instead",
            DeprecationWarning, stacklevel=3,
        )
        steps = horizon
    return program, steps


class AnalysisBackend:
    """Base class giving every back end the normalized keyword tail.

    Subclasses call ``super().__init__(program, steps, ...)`` and then
    use :meth:`_new_solver` / :meth:`_machine_solver` instead of
    constructing :class:`SmtSolver` inline.  ``chaos`` accepts either a
    :class:`ChaosMonkey` or a :class:`ChaosConfig` and scopes fault
    injection to this back end's solvers (unlike the process-global
    :func:`repro.runtime.chaos.inject_faults`).  ``solver_factory``
    replaces the :class:`SmtSolver` constructor wholesale — it receives
    the same keyword arguments and must return an object with the
    ``SmtSolver`` query surface.
    """

    def __init__(
        self,
        program: Any = None,
        steps: Optional[int] = None,
        *,
        sat_config=None,
        validate_models: bool = True,
        budget: Optional[Budget] = None,
        escalation=None,
        chaos: Union[ChaosMonkey, ChaosConfig, None] = None,
        solver_factory: Optional[Callable[..., SmtSolver]] = None,
        jobs: Optional[int] = None,
        cache: Union["ResultCache", bool, None] = None,
        incremental: Optional[bool] = None,
        certify: Optional[bool] = None,
    ):
        self.program = program
        self.steps = steps
        self.sat_config = sat_config
        self.validate_models = validate_models
        self.budget = budget
        self.escalation = escalation
        if isinstance(chaos, ChaosConfig):
            chaos = ChaosMonkey(chaos)
        self.chaos = chaos
        self.solver_factory = solver_factory
        self.jobs = jobs
        self.cache = cache
        self.incremental = incremental
        self.certify = certify

    # ``checked`` stays readable/writable for one release (legacy
    # attribute alias of ``program``); both directions warn.
    @property
    def checked(self) -> Any:
        warnings.warn(
            f"{type(self).__name__}.checked is deprecated; "
            "use .program instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.program

    @checked.setter
    def checked(self, value: Any) -> None:
        warnings.warn(
            f"{type(self).__name__}.checked is deprecated; "
            "use .program instead",
            DeprecationWarning, stacklevel=2,
        )
        self.program = value

    # ----- engine-aware solver construction ---------------------------------

    def _default_incremental(self) -> bool:
        """Whether this back end shares one encoding across queries.

        Subclasses that batch many related queries against one machine
        (Dafny VCs, Houdini rounds, BMC steps) override this to True;
        ``incremental=...`` in the constructor always wins.
        """
        return False

    def _incremental(self) -> bool:
        if self.incremental is None:
            return self._default_incremental()
        return self.incremental

    def _effective_certify(self) -> bool:
        """Whether this back end's UNSAT answers must carry checked proofs."""
        if self.certify is None:
            from ..trust import certify_default

            return certify_default()
        return self.certify

    def _new_solver(self, **overrides) -> SmtSolver:
        """Build one solver with the back end's knobs threaded through."""
        kwargs: dict[str, Any] = dict(
            sat_config=self.sat_config,
            validate_models=self.validate_models,
            budget=self.budget,
            escalation=self.escalation,
            parallelism=self.jobs,
            cache=self.cache,
            incremental=self._incremental(),
            certify=self.certify,
        )
        kwargs.update(overrides)
        factory = self.solver_factory or SmtSolver
        solver = factory(**kwargs)
        if self.chaos is not None:
            # Instance-level hook: scoped to this back end's solvers,
            # read by SmtSolver.check() through ``self._chaos``.
            solver._chaos = self.chaos
        return solver

    def _machine_solver(self, machine: "SymbolicMachine", **overrides) -> SmtSolver:
        """A solver pre-loaded with one machine's bounds and assumptions."""
        solver = self._new_solver(**overrides)
        for name, (lo, hi) in machine.bounds.items():
            solver.set_bounds(name, lo, hi)
        for assumption in machine.assumptions:
            solver.add(assumption)
        return solver

    def _chaos_active(self) -> bool:
        """True when any chaos monkey could intercept this back end's calls."""
        return self.chaos is not None or SmtSolver._chaos is not None
