"""Model-checking back end: transition-system IR, BMC and k-induction.

§4 of the paper: "To use a symbolic model checker, Buffy can transform
the program into a transition system as the IR [...] we plan to
translate a program into a system of Constrained Horn Clauses (CHC)".

This module provides:

* :class:`TransitionSystem` — one Buffy time step as a symbolic
  transition relation over the program's persistent state (built with
  the structured-havoc machinery);
* :meth:`ModelChecker.bmc` — bounded model checking of a state
  property: search for a violation within ``k`` steps from the initial
  state;
* :meth:`ModelChecker.k_induction` — unbounded proof attempts: if the
  property holds in the first ``k`` states (base) and ``k`` consecutive
  property states are always followed by a property state (step), the
  property holds at *every* horizon — strictly stronger than the
  paper's bounded analyses;
* :func:`to_chc` — export the init/trans/property encoding as
  SMT-LIB2 Horn clauses for an external Spacer-style engine.

The safety property is a function over :class:`~repro.backends.dafny.StateView`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..backends.dafny import StateView
from ..compiler.symexec import EncodeConfig, SymbolicMachine
from ..lang.checker import CheckedProgram
from ..obs import METRICS, TRACER, phase_scope
from ..runtime.budget import Budget, BudgetExhausted, ResourceReport
from ..smt.sat.cdcl import CDCLConfig
from ..smt.smtlib import term_to_smtlib
from ..smt.solver import CheckResult, SmtSolver, governed_check
from ..smt.terms import Term, free_vars, mk_and, mk_not
from .base import AnalysisBackend, resolve_legacy_names

Property = Callable[[StateView], Term]


class MCStatus(enum.Enum):
    SAFE_BOUNDED = "safe-bounded"    # BMC: no violation within the bound
    PROVED = "proved"                # k-induction: safe at every horizon
    VIOLATED = "violated"
    UNKNOWN = "unknown"


@dataclass
class MCResult:
    status: MCStatus
    bound: int
    violation_step: Optional[int] = None
    elapsed_seconds: float = 0.0
    solver_calls: int = 0
    # BMC under a budget: the deepest step proven violation-free before
    # the run stopped — the partial result of an exhausted search.
    safe_until: Optional[int] = None
    resource_report: Optional[ResourceReport] = None

    @property
    def ok(self) -> bool:
        return self.status in (MCStatus.SAFE_BOUNDED, MCStatus.PROVED)

    @property
    def complete(self) -> bool:
        return self.status is not MCStatus.UNKNOWN

    def outcome(self):
        """Convert to the uniform :class:`repro.analysis.result.AnalysisOutcome`."""
        from ..analysis.result import AnalysisOutcome, Verdict, verdict_for_unknown

        if self.status is MCStatus.UNKNOWN:
            verdict = verdict_for_unknown(self.resource_report)
        elif self.status is MCStatus.VIOLATED:
            verdict = Verdict.VIOLATED
        else:  # SAFE_BOUNDED / PROVED both answer the asked query positively
            verdict = Verdict.PROVED
        return AnalysisOutcome(
            verdict=verdict,
            witness=self.violation_step,
            report=self.resource_report,
            stats={
                "bound": self.bound,
                "solver_calls": self.solver_calls,
                "safe_until": self.safe_until,
                "elapsed_seconds": self.elapsed_seconds,
            },
        )


class _BmcSession:
    """One incremental solver tracking a monotonically growing machine.

    BMC extends the same machine step after step; instead of
    re-encoding the whole unrolling per depth, new bounds and
    assumptions are synced into a shared solver and each depth's goal
    rides as a check-time assumption.
    """

    def __init__(self, solver: SmtSolver, machine: SymbolicMachine):
        self.solver = solver
        self.machine = machine
        self._bounds_seen: set[str] = set()
        self._synced = 0

    def sync(self) -> None:
        for name, (lo, hi) in self.machine.bounds.items():
            if name not in self._bounds_seen:
                self.solver.set_bounds(name, lo, hi)
                self._bounds_seen.add(name)
        for assumption in self.machine.assumptions[self._synced:]:
            self.solver.add(assumption)
        self._synced = len(self.machine.assumptions)


class ModelChecker(AnalysisBackend):
    """BMC and k-induction for a Buffy program's step transition system.

    Normalized constructor: ``ModelChecker(program, *, budget=...,
    chaos=..., solver_factory=..., jobs=..., cache=...)``; the legacy
    ``checked=`` keyword remains as a shim.  BMC shares one incremental
    solver across depths by default (the unrolling is encoded once,
    growing step by step).
    """

    def __init__(
        self,
        program: Optional[CheckedProgram] = None,
        config: Optional[EncodeConfig] = None,
        sat_config: Optional[CDCLConfig] = None,
        value_range: tuple[int, int] = (-1, 63),
        stat_bound: int = 1 << 10,
        budget: Optional[Budget] = None,
        escalation=None,
        *,
        validate_models: bool = True,
        chaos=None,
        solver_factory=None,
        jobs: Optional[int] = None,
        cache=None,
        incremental: Optional[bool] = None,
        certify: Optional[bool] = None,
        checked: Optional[CheckedProgram] = None,
    ):
        program, _ = resolve_legacy_names(program, None, checked, None,
                                          "ModelChecker")
        if program is None:
            raise TypeError("ModelChecker requires a program")
        super().__init__(
            program,
            sat_config=sat_config, validate_models=validate_models,
            budget=budget, escalation=escalation, chaos=chaos,
            solver_factory=solver_factory, jobs=jobs, cache=cache,
            incremental=incremental, certify=certify,
        )
        self.config = config or EncodeConfig()
        self.value_range = value_range
        self.stat_bound = stat_bound

    def _default_incremental(self) -> bool:
        # BMC grows one unrolling monotonically — encode it once.
        return True

    def _machine(self) -> SymbolicMachine:
        return SymbolicMachine(self.program, self.config, budget=self.budget)

    def _check(
        self, machine: SymbolicMachine, formula: Term,
        session: Optional[_BmcSession] = None,
    ) -> tuple[CheckResult, Optional[ResourceReport]]:
        if session is not None:
            session.sync()
            return governed_check(session.solver, formula)
        return governed_check(self._machine_solver(machine), formula)

    # ----- bounded model checking --------------------------------------------

    def bmc(self, prop: Property, k: int) -> MCResult:
        """Search for a property violation within ``k`` steps of init.

        Under a budget an exhausted run returns UNKNOWN carrying the
        deepest step already proven safe (``safe_until``) — a usable
        partial result — plus the :class:`ResourceReport`.
        """
        t0 = time.perf_counter()
        machine = self._machine()
        session = (
            _BmcSession(self._new_solver(), machine)
            if self._incremental() else None
        )
        calls = 0
        safe_until: Optional[int] = None
        for step in range(k + 1):
            goal = mk_not(prop(StateView(machine)))
            calls += 1
            if METRICS.enabled:
                METRICS.counter_inc(
                    "repro_vcs_total", backend="mc", status="bound")
            with TRACER.span("bmc-bound", bound=step) as sp, \
                    phase_scope(bound=step):
                result, report = self._check(machine, goal, session)
                sp.set("result", result.value)
            if result is CheckResult.SAT:
                return MCResult(
                    MCStatus.VIOLATED, k, violation_step=step,
                    elapsed_seconds=time.perf_counter() - t0,
                    solver_calls=calls, safe_until=safe_until,
                )
            if result is CheckResult.UNKNOWN:
                return MCResult(
                    MCStatus.UNKNOWN, k,
                    elapsed_seconds=time.perf_counter() - t0,
                    solver_calls=calls, safe_until=safe_until,
                    resource_report=report,
                )
            safe_until = step
            if step < k:
                try:
                    machine.exec_step()
                except BudgetExhausted as exc:
                    return MCResult(
                        MCStatus.UNKNOWN, k,
                        elapsed_seconds=time.perf_counter() - t0,
                        solver_calls=calls, safe_until=safe_until,
                        resource_report=exc.report,
                    )
        return MCResult(
            MCStatus.SAFE_BOUNDED, k,
            elapsed_seconds=time.perf_counter() - t0, solver_calls=calls,
            safe_until=safe_until,
        )

    def bound_core(self, prop: Property, k: int) -> list[Term]:
        """Which machine assumptions make depth-``k`` safety non-vacuous.

        Unrolls ``k`` steps and asks for a violation of ``prop`` at the
        final state, passing every machine assumption (arrival bounds,
        havoc constraints) as a *check-time assumption*.  On UNSAT (the
        bound is safe) the solver's unsat core names the assumptions
        the safety argument actually used.  An **empty** core flags a
        vacuous bound: the negated property is unsatisfiable on its own
        (e.g. contradictory variable bounds), so a deeper search could
        never find a violation either.  Raises :class:`ValueError` when
        the depth is not safe (SAT or UNKNOWN).
        """
        machine = self._machine()
        for _ in range(k):
            machine.exec_step()
        solver = self._new_solver(incremental=True)
        for name, (lo, hi) in machine.bounds.items():
            solver.set_bounds(name, lo, hi)
        solver.add(mk_not(prop(StateView(machine))))
        result = solver.check(*machine.assumptions)
        if result is not CheckResult.UNSAT:
            raise ValueError(
                f"depth {k} is not safe (check() answered {result.value});"
                " no unsat core exists"
            )
        return solver.unsat_core()

    # ----- k-induction -----------------------------------------------------------

    def k_induction(self, prop: Property, k: int = 1,
                    bmc_first: bool = True) -> MCResult:
        """Try to prove ``prop`` at every horizon with k-induction."""
        t0 = time.perf_counter()
        calls = 0

        if bmc_first:
            base = self.bmc(prop, k)
            calls += base.solver_calls
            if base.status is not MCStatus.SAFE_BOUNDED:
                base.elapsed_seconds = time.perf_counter() - t0
                base.solver_calls = calls
                return base

        # Inductive step: havoc a state, assume prop for k consecutive
        # states, check prop after one more step.
        machine = self._machine()
        machine.havoc_state(
            value_range=self.value_range, stat_bound=self.stat_bound
        )
        try:
            for _ in range(k):
                machine.assumptions.append(prop(StateView(machine)))
                machine.exec_step()
        except BudgetExhausted as exc:
            return MCResult(
                MCStatus.UNKNOWN, k,
                elapsed_seconds=time.perf_counter() - t0,
                solver_calls=calls, resource_report=exc.report,
            )
        goal = mk_not(prop(StateView(machine)))
        calls += 1
        result, report = self._check(machine, goal)
        elapsed = time.perf_counter() - t0
        if result is CheckResult.UNSAT:
            return MCResult(MCStatus.PROVED, k, elapsed_seconds=elapsed,
                            solver_calls=calls)
        if result is CheckResult.SAT:
            # The induction step failed — inconclusive, not a violation.
            return MCResult(MCStatus.UNKNOWN, k, elapsed_seconds=elapsed,
                            solver_calls=calls)
        return MCResult(MCStatus.UNKNOWN, k, elapsed_seconds=elapsed,
                        solver_calls=calls, resource_report=report)

    def prove_with_increasing_k(self, prop: Property,
                                max_k: int = 4) -> MCResult:
        """Retry k-induction with growing ``k`` until proved or exhausted."""
        last = MCResult(MCStatus.UNKNOWN, 0)
        total = 0.0
        calls = 0
        for k in range(1, max_k + 1):
            result = self.k_induction(prop, k)
            total += result.elapsed_seconds
            calls += result.solver_calls
            if result.status in (MCStatus.PROVED, MCStatus.VIOLATED):
                result.elapsed_seconds = total
                result.solver_calls = calls
                return result
            last = result
            if result.resource_report is not None:
                break  # budget spent: growing k further cannot help
        last.elapsed_seconds = total
        last.solver_calls = calls
        return last


def to_chc(
    checked: CheckedProgram,
    prop: Property,
    config: Optional[EncodeConfig] = None,
    value_range: tuple[int, int] = (-1, 63),
    stat_bound: int = 1 << 10,
) -> str:
    """Emit init/trans/property as SMT-LIB2 Horn clauses (Spacer input).

    The state predicate ``Inv`` ranges over the program's havocked
    persistent state; three rules encode initiation, consecution and
    the property, in the standard CHC safety format.
    """
    # Transition: havoc pre-state, run a step; post-state values are the
    # machine's state terms afterwards.
    machine = SymbolicMachine(checked, config or EncodeConfig())
    machine.havoc_state(value_range=value_range, stat_bound=stat_bound, tag="s")
    pre_terms = _state_terms(machine)
    pre_vars = [v for t in pre_terms for v in free_vars(t)]
    prop_pre = prop(StateView(machine))
    machine.exec_step()
    post_terms = _state_terms(machine)
    side = mk_and(*machine.assumptions) if machine.assumptions else None

    # Fresh-variable names for the step's nondeterminism (arrivals/havocs).
    aux_vars = []
    seen = {id(v) for v in pre_vars}
    for t in post_terms:
        for v in free_vars(t):
            if id(v) not in seen:
                seen.add(id(v))
                aux_vars.append(v)
    if side is not None:
        for v in free_vars(side):
            if id(v) not in seen:
                seen.add(id(v))
                aux_vars.append(v)

    lines = ["(set-logic HORN)"]
    sorts = " ".join(t.sort.value for t in pre_terms)
    lines.append(f"(declare-fun Inv ({sorts}) Bool)")

    def quantify(vars_, body: str) -> str:
        if not vars_:
            return body
        decls = " ".join(
            f"({_safe(v.name)} {v.sort.value})" for v in vars_
        )
        return f"(forall ({decls}) {body})"

    init_machine = SymbolicMachine(checked, config or EncodeConfig())
    init_terms = _state_terms(init_machine)
    init_args = " ".join(term_to_smtlib(t) for t in init_terms)
    lines.append(f"(assert (Inv {init_args}))")

    pre_args = " ".join(term_to_smtlib(t) for t in pre_terms)
    post_args = " ".join(term_to_smtlib(t) for t in post_terms)
    guard = f"(Inv {pre_args})"
    if side is not None:
        guard = f"(and {guard} {term_to_smtlib(side)})"
    rule = f"(=> {guard} (Inv {post_args}))"
    lines.append(
        "(assert "
        + quantify(pre_vars + aux_vars, rule)
        + ")"
    )
    bad = f"(=> (and (Inv {pre_args}) (not {term_to_smtlib(prop_pre)})) false)"
    lines.append("(assert " + quantify(pre_vars, bad) + ")")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


def _safe(name: str) -> str:
    import re

    if re.match(r"^[A-Za-z_][A-Za-z0-9_.!]*$", name) and "." not in name:
        return name
    return "|" + name.replace("|", "_") + "|"


def _state_terms(machine: SymbolicMachine) -> list[Term]:
    """The persistent-state tuple of a machine, as an ordered term list."""
    from ..buffers.symbolic import SymbolicList, SymbolicListBuffer

    out: list[Term] = []
    for label in machine._all_buffer_labels():
        buf = machine._buffer_by_label(label)
        if isinstance(buf, SymbolicListBuffer):
            out.extend(buf.flows)
            out.extend(buf.sizes)
            out.append(buf.length)
        else:
            out.extend(buf.counts)
        stats = buf.stats
        out.extend([stats.enq_p, stats.deq_p, stats.drop_p])

    def add_value(value) -> None:
        if isinstance(value, SymbolicList):
            out.extend(value.elems)
            out.append(value.length)
        elif isinstance(value, list):
            for v in value:
                add_value(v)
        elif isinstance(value, Term):
            out.append(value)

    for name in sorted(machine.globals_):
        add_value(machine.globals_[name])
    return out
