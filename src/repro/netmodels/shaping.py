"""Additional network-function models: DRR and traffic shaping.

§2.1 of the paper describes FQ-CoDel's *quantum* mechanism ("if it has
already sent a quantum of bytes..."); deficit round robin is the
classical scheduler built on that idea, and a token-bucket shaper is
the canonical rate-limiting element (it also underlies CCAC's path
server).  Both are small Buffy programs, exercising arrays of integer
globals (per-queue credits) and the shaper's token arithmetic.
"""

from __future__ import annotations

from ..lang.checker import CheckedProgram, check_program
from ..lang.parser import parse_program

DRR_SRC = """\
drr(in buffer[N] ibs, out buffer ob){
  global int ptr; global int[N] credit;
  local bool dequeued;
  dequeued = false;
  for (k in 0..N) do {
    if (!dequeued) {
      if (backlog-p(ibs[ptr]) > 0) {
        // a fresh visit grants the queue its quantum of credit
        if (credit[ptr] == 0) { credit[ptr] = Q; }
        move-p(ibs[ptr], ob, 1);
        credit[ptr] = credit[ptr] - 1;
        dequeued = true;
        if (credit[ptr] == 0) {
          ptr = ptr + 1; if (ptr == N) { ptr = 0; }
        }
      } else {
        credit[ptr] = 0;
        ptr = ptr + 1; if (ptr == N) { ptr = 0; }
      }
    }
  }
}
"""

SHAPER_SRC = """\
shaper(in buffer ib, out buffer ob){
  global int tokens; global bool started;
  monitor int m_sent;
  if (!started) { tokens = BUCKET; started = true; }
  // refill at RATE, capped at the bucket depth
  tokens = tokens + RATE;
  if (tokens > BUCKET) { tokens = BUCKET; }
  // release as many whole packets as we hold tokens for
  local int before; local int sent;
  before = backlog-p(ib);
  move-p(ib, ob, tokens);
  sent = before - backlog-p(ib);
  tokens = tokens - sent;
  m_sent = m_sent + sent;
}
"""


def drr(n_queues: int = 2, quantum: int = 2) -> CheckedProgram:
    """Deficit round robin: ``quantum`` consecutive packets per visit."""
    return check_program(
        parse_program(DRR_SRC, consts={"N": n_queues, "Q": quantum})
    )


def token_bucket_shaper(rate: int = 1, bucket: int = 3) -> CheckedProgram:
    """A token-bucket traffic shaper: long-term ``rate``, burst ``bucket``."""
    return check_program(
        parse_program(SHAPER_SRC, consts={"RATE": rate, "BUCKET": bucket})
    )
