"""The paper's case-study network models."""

from .schedulers import (
    ALL_SCHEDULERS,
    fq_buggy,
    fq_fixed,
    round_robin,
    strict_priority,
)

__all__ = [
    "ALL_SCHEDULERS", "fq_buggy", "fq_fixed", "round_robin",
    "strict_priority",
]
